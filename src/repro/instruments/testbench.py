"""The Figure-11 prototype testbench, rebuilt in simulation.

Chain: calibrated noise source (hot/cold) -> non-inverting DUT (Av=101)
-> post-amplifier (Av=1156) -> voltage comparator against a 3 kHz sine
reference -> sampled bitstream.

The testbench owns analytical helpers (predicted output RMS, expected NF)
so experiments can pick a reference amplitude inside the 10-40 % window of
figure 10 and compare BIST-measured against analytically-expected noise
figures, exactly like the paper's Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.analog.amplifier import NonInvertingAmplifier
from repro.analog.noise_analysis import expected_noise_figure_db, noise_budget
from repro.analog.noise_source import CalibratedNoiseSource
from repro.analog.opamp import OPAMP_LIBRARY, OpAmpNoiseModel
from repro.constants import T0_KELVIN
from repro.core.bist import BISTMeasurementConfig, OneBitNoiseFigureBIST
from repro.digitizer.digitizer import OneBitDigitizer
from repro.errors import ConfigurationError
from repro.signals.filters import single_pole_magnitude
from repro.signals.random import GeneratorLike, make_rng, spawn_rngs
from repro.signals.sources import SineSource
from repro.signals.waveform import Waveform

#: Default post-amplifier opamp: a quiet device whose noise, referred
#: through the DUT's gain of 101, is negligible (Friis, paper section 6).
POST_AMP_OPAMP = OpAmpNoiseModel(
    name="POSTAMP",
    en_v_per_rthz=3.0e-9,
    in_a_per_rthz=0.4e-12,
    en_corner_hz=2.7,
    in_corner_hz=140.0,
    gbw_hz=4e6,
)


class PrototypeTestbench:
    """Simulation of the paper's experimental setup (figure 11).

    Parameters
    ----------
    noise_source:
        Calibrated hot/cold source (Th=2900 K, Tc=290 K in the paper).
    dut:
        The amplifier under test (Av=101 in the paper).
    post_amplifier:
        Conditioning gain stage (Av=1156 in the paper).
    reference:
        The comparator reference source (3 kHz sine in the paper).
    digitizer:
        The 1-bit digitizer.
    sample_rate_hz / n_samples:
        Acquisition parameters (1e6 samples in the paper).
    """

    def __init__(
        self,
        noise_source: CalibratedNoiseSource,
        dut: NonInvertingAmplifier,
        post_amplifier: NonInvertingAmplifier,
        reference: SineSource,
        digitizer: OneBitDigitizer,
        sample_rate_hz: float,
        n_samples: int,
    ):
        if noise_source.source_resistance_ohm != dut.source_resistance_ohm:
            raise ConfigurationError(
                "noise-source resistance "
                f"({noise_source.source_resistance_ohm} ohm) must equal the "
                f"DUT's source resistance ({dut.source_resistance_ohm} ohm)"
            )
        if sample_rate_hz <= 0:
            raise ConfigurationError(
                f"sample rate must be > 0, got {sample_rate_hz}"
            )
        if n_samples < 2:
            raise ConfigurationError(f"n_samples must be >= 2, got {n_samples}")
        self.noise_source = noise_source
        self.dut = dut
        self.post_amplifier = post_amplifier
        self.reference = reference
        self.digitizer = digitizer
        self.sample_rate_hz = float(sample_rate_hz)
        self.n_samples = int(n_samples)
        self._reference_cache: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Analog simulation
    # ------------------------------------------------------------------
    def analog_output(self, state: str, rng: GeneratorLike = None) -> Waveform:
        """The analog waveform at the post-amplifier output for a state."""
        gen = make_rng(rng)
        src_rng, dut_rng, post_rng = spawn_rngs(gen, 3)
        source = self.noise_source.render(
            state, self.n_samples, self.sample_rate_hz, src_rng
        )
        dut_out = self.dut.process(source, dut_rng)
        return self.post_amplifier.process(dut_out, post_rng)

    def reference_waveform(self) -> Waveform:
        """The comparator reference over the acquisition window.

        The reference is deterministic, so re-rendering it on every
        acquisition only burns time (a 1e6-sample sine is tens of
        milliseconds); the rendered waveform is cached per source
        object and ``(n_samples, sample_rate)``, and re-rendered when
        either changes (``build_prototype_testbench`` reassigns
        ``reference`` once after sizing the amplitude).
        """
        cache = self._reference_cache
        if (
            cache is None
            or cache[0] is not self.reference
            or cache[1] != self.n_samples
            or cache[2] != self.sample_rate_hz
        ):
            wave = self.reference.render(self.n_samples, self.sample_rate_hz)
            cache = (self.reference, self.n_samples, self.sample_rate_hz, wave)
            self._reference_cache = cache
        return cache[3]

    def acquire_bitstream(
        self, state: str, rng: GeneratorLike = None, packed: bool = False
    ) -> Waveform:
        """Capture one state's bitstream (analog chain + digitizer).

        With ``packed`` the capture comes back as a
        :class:`~repro.bitstream.PackedBitstream` (1 bit/sample),
        bit-exact equal to the float waveform when unpacked.
        """
        gen = make_rng(rng)
        analog_rng, dig_rng = spawn_rngs(gen, 2)
        analog = self.analog_output(state, analog_rng)
        return self.digitizer.digitize(
            analog, self.reference_waveform(), dig_rng, packed=packed
        )

    def acquire_analog_batch(self, states, rngs, rng_mode: str = "compat"):
        """Run the analog front-end for a batch of records.

        Returns ``(analog, reference, dig_rngs, sample_rate,
        digitizer)`` — the :class:`~repro.engine.AnalogBatchAcquirer`
        protocol.  Per-record child generators are spawned exactly as
        in :meth:`acquire_bitstream`, and the digitizer generators are
        handed back un-consumed, so any later (possibly cross-device)
        ``digitize_batch`` is bit-exact vs the scalar path.
        ``rng_mode="philox"`` draws every stage's noise (source, both
        amplifiers) from per-record counter streams — the fast mode,
        deterministic per seed but not bit-identical to compat.
        """
        states = list(states)
        rngs = list(rngs)
        if len(states) != len(rngs):
            raise ConfigurationError(
                f"got {len(states)} states but {len(rngs)} generators"
            )
        src_rngs = []
        dut_rngs = []
        post_rngs = []
        dig_rngs = []
        for rng in rngs:
            analog_rng, dig_rng = spawn_rngs(make_rng(rng), 2)
            src_rng, dut_rng, post_rng = spawn_rngs(analog_rng, 3)
            src_rngs.append(src_rng)
            dut_rngs.append(dut_rng)
            post_rngs.append(post_rng)
            dig_rngs.append(dig_rng)
        source = self.noise_source.render_batch(
            states, self.n_samples, self.sample_rate_hz, src_rngs,
            rng_mode=rng_mode,
        )
        dut_out = self.dut.process_batch(
            source, self.sample_rate_hz, dut_rngs, rng_mode=rng_mode
        )
        analog = self.post_amplifier.process_batch(
            dut_out, self.sample_rate_hz, post_rngs, rng_mode=rng_mode
        )
        return (
            analog,
            self.reference_waveform().samples,
            dig_rngs,
            self.sample_rate_hz,
            self.digitizer,
        )

    def acquire_bitstreams(
        self, states, rngs, packed: bool = False, rng_mode: str = "compat"
    ) -> Tuple[np.ndarray, float]:
        """Capture a batch of bitstreams as one stacked record batch.

        ``states`` and ``rngs`` are equal-length sequences; row ``i`` is
        bit-exact equal to ``acquire_bitstream(states[i],
        rngs[i]).samples``.  The whole analog chain — source rendering,
        both amplifiers, the digitizer — runs on stacked arrays with
        per-record child generators spawned exactly as in the scalar
        path.  Returns ``(bitstreams, output_sample_rate)``; with
        ``packed`` the bitstreams are a
        :class:`~repro.bitstream.PackedRecordBatch` (1 bit/sample)
        instead of a float64 stack.  ``rng_mode="philox"`` runs the
        analog chain on counter-based noise fills (fast mode).
        """
        analog, reference, dig_rngs, rate, digitizer = (
            self.acquire_analog_batch(states, rngs, rng_mode=rng_mode)
        )
        bits = digitizer.digitize_batch(
            analog,
            reference,
            rate,
            dig_rngs,
            overwrite_input=not packed,
            packed=packed,
            rng_mode=rng_mode,
        )
        return bits, rate / digitizer.sampler.divider

    # ------------------------------------------------------------------
    # Analytical helpers
    # ------------------------------------------------------------------
    def predicted_output_rms(self, state: str, n_points: int = 4001) -> float:
        """Analytically predicted post-amplifier output noise RMS.

        Integrates the calibrated source density plus both amplifiers'
        noise through the full chain response up to Nyquist.
        """
        freqs = np.linspace(1.0, self.sample_rate_hz / 2.0, n_points)
        t_state = self.noise_source.calibrated_temperature(state)
        src = self.dut.source_noise_density(t_state)
        dut_noise = self.dut.amplifier_noise_density(freqs)
        h_dut = self._chain_magnitude(self.dut, freqs)
        at_post_input = (src + dut_noise) * h_dut**2 * self.dut.gain**2
        post_noise = self.post_amplifier.amplifier_noise_density(freqs)
        h_post = self._chain_magnitude(self.post_amplifier, freqs)
        at_output = (
            (at_post_input + post_noise) * h_post**2 * self.post_amplifier.gain**2
        )
        return float(np.sqrt(np.trapezoid(at_output, freqs)))

    def _chain_magnitude(
        self, amplifier: NonInvertingAmplifier, freqs: np.ndarray
    ) -> np.ndarray:
        """|H| the amplifier's process() actually applies (pole only when
        it falls below Nyquist, matching the time-domain path)."""
        if amplifier.bandwidth_hz < self.sample_rate_hz / 2.0:
            return single_pole_magnitude(freqs, amplifier.bandwidth_hz)
        return np.ones_like(freqs)

    def expected_nf_db(self, f_low_hz: float, f_high_hz: float) -> float:
        """Analytical expected NF of the DUT over the measurement band."""
        return expected_noise_figure_db(self.dut, f_low_hz, f_high_hz)

    def reference_level_ratio(self, state: str) -> float:
        """Reference peak over predicted noise RMS (figure 10 guideline)."""
        rms = self.predicted_output_rms(state)
        if rms <= 0:
            raise ConfigurationError("predicted output RMS is zero")
        return self.reference.amplitude / rms

    # ------------------------------------------------------------------
    def make_config(
        self,
        nperseg: int = 8192,
        noise_band_hz: Tuple[float, float] = (500.0, 1500.0),
        harmonic_kind: str = "all",
    ) -> BISTMeasurementConfig:
        """Build the analysis configuration matching this bench."""
        return BISTMeasurementConfig(
            sample_rate_hz=self.sample_rate_hz,
            n_samples=self.n_samples,
            nperseg=nperseg,
            reference_frequency_hz=self.reference.frequency_hz,
            noise_band_hz=noise_band_hz,
            harmonic_kind=harmonic_kind,
        )

    def make_estimator(
        self,
        nperseg: int = 8192,
        noise_band_hz: Tuple[float, float] = (500.0, 1500.0),
        harmonic_kind: str = "all",
    ) -> OneBitNoiseFigureBIST:
        """Build the 1-bit estimator calibrated to this bench's source."""
        return OneBitNoiseFigureBIST(
            self.make_config(nperseg, noise_band_hz, harmonic_kind),
            t_hot_k=self.noise_source.t_hot_k,
            t_cold_k=self.noise_source.t_cold_k,
        )


def build_prototype_testbench(
    opamp: Union[str, OpAmpNoiseModel] = "OP27",
    source_resistance_ohm: float = 600.0,
    t_hot_k: float = 2900.0,
    t_cold_k: float = T0_KELVIN,
    sample_rate_hz: float = 32768.0,
    n_samples: int = 2**19,
    reference_frequency_hz: float = 3000.0,
    reference_ratio: float = 0.25,
    dut_r_feedback_ohm: float = 10_000.0,
    dut_r_ground_ohm: float = 100.0,
    post_r_feedback_ohm: float = 115_500.0,
    post_r_ground_ohm: float = 100.0,
    hot_level_error: float = 0.0,
    digitizer: Optional[OneBitDigitizer] = None,
) -> PrototypeTestbench:
    """Assemble the paper's figure-11 setup with sensible defaults.

    ``opamp`` may be a library name (``"OP27"``, ``"OP07"``, ``"TL081"``,
    ``"CA3140"``) or a custom :class:`OpAmpNoiseModel`.  The reference
    amplitude is placed at ``reference_ratio`` times the predicted *cold*
    output noise RMS, inside the 10-40 % window figure 10 recommends
    (the paper's absolute 300 mVpp depends on unpublished attenuator
    settings; see DESIGN.md section 6).
    """
    if isinstance(opamp, str):
        try:
            opamp_model = OPAMP_LIBRARY[opamp]
        except KeyError:
            raise ConfigurationError(
                f"unknown opamp {opamp!r}; library has "
                f"{sorted(OPAMP_LIBRARY)}"
            ) from None
    else:
        opamp_model = opamp
    if not 0.0 < reference_ratio < 1.0:
        raise ConfigurationError(
            f"reference ratio must be in (0, 1), got {reference_ratio}"
        )

    noise_source = CalibratedNoiseSource(
        source_resistance_ohm,
        t_hot_k=t_hot_k,
        t_cold_k=t_cold_k,
        hot_level_error=hot_level_error,
    )
    dut = NonInvertingAmplifier(
        opamp_model,
        r_feedback_ohm=dut_r_feedback_ohm,
        r_ground_ohm=dut_r_ground_ohm,
        source_resistance_ohm=source_resistance_ohm,
        name=f"DUT[{opamp_model.name}]",
    )
    post = NonInvertingAmplifier(
        POST_AMP_OPAMP,
        r_feedback_ohm=post_r_feedback_ohm,
        r_ground_ohm=post_r_ground_ohm,
        source_resistance_ohm=100.0,
        name="post-amplifier",
    )
    # Placeholder reference; amplitude is fixed below from the predicted
    # cold output RMS.
    bench = PrototypeTestbench(
        noise_source=noise_source,
        dut=dut,
        post_amplifier=post,
        reference=SineSource(reference_frequency_hz, 1.0),
        digitizer=digitizer if digitizer is not None else OneBitDigitizer(),
        sample_rate_hz=sample_rate_hz,
        n_samples=n_samples,
    )
    cold_rms = bench.predicted_output_rms("cold")
    bench.reference = SineSource(reference_frequency_hz, reference_ratio * cold_rms)
    return bench
