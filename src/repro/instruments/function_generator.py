"""Bench function generator model (HP33120A-like).

Supports the three outputs the prototype needs: sine, square and Gaussian
noise, programmed in peak-to-peak volts like the physical instrument.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.signals.random import GeneratorLike
from repro.signals.sources import (
    GaussianNoiseSource,
    SignalSource,
    SineSource,
    SquareSource,
)
from repro.signals.waveform import Waveform

_WAVEFORM_KINDS = ("sine", "square", "noise")

#: Gaussian crest factor the instrument assumes when mapping a noise
#: output's Vpp setting to an RMS level (HP instruments quote ~3 sigma
#: per side, i.e. Vpp ~ 6 sigma).
NOISE_VPP_PER_RMS = 6.0


class FunctionGenerator:
    """A programmable signal generator.

    Parameters
    ----------
    kind:
        ``"sine"``, ``"square"`` or ``"noise"``.
    frequency_hz:
        Output frequency (ignored for ``"noise"``).
    vpp:
        Peak-to-peak output amplitude in volts.
    offset_v:
        DC offset.
    """

    def __init__(
        self,
        kind: str,
        frequency_hz: float = 0.0,
        vpp: float = 1.0,
        offset_v: float = 0.0,
    ):
        if kind not in _WAVEFORM_KINDS:
            raise ConfigurationError(
                f"kind must be one of {_WAVEFORM_KINDS}, got {kind!r}"
            )
        if vpp < 0:
            raise ConfigurationError(f"vpp must be >= 0, got {vpp}")
        if kind in ("sine", "square") and frequency_hz <= 0:
            raise ConfigurationError(
                f"{kind} output needs a positive frequency, got {frequency_hz}"
            )
        self.kind = kind
        self.frequency_hz = float(frequency_hz)
        self.vpp = float(vpp)
        self.offset_v = float(offset_v)

    # ------------------------------------------------------------------
    @property
    def amplitude(self) -> float:
        """Peak amplitude for deterministic outputs (``vpp / 2``)."""
        return self.vpp / 2.0

    @property
    def noise_rms(self) -> float:
        """RMS level of the noise output implied by the Vpp setting."""
        return self.vpp / NOISE_VPP_PER_RMS

    def as_source(self) -> SignalSource:
        """The generator's output as a reusable SignalSource."""
        if self.kind == "sine":
            return SineSource(self.frequency_hz, self.amplitude, dc=self.offset_v)
        if self.kind == "square":
            return SquareSource(self.frequency_hz, self.amplitude, dc=self.offset_v)
        return GaussianNoiseSource(self.noise_rms, mean=self.offset_v)

    def output(
        self, n_samples: int, sample_rate: float, rng: GeneratorLike = None
    ) -> Waveform:
        """Render the generator output."""
        return self.as_source().render(n_samples, sample_rate, rng)
