"""Exception hierarchy for the nfbist reproduction package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all package-specific errors."""


class ConfigurationError(ReproError):
    """Raised when a component is constructed or used with invalid
    parameters (negative temperatures, zero sample rates, ...)."""


class MeasurementError(ReproError):
    """Raised when a measurement cannot produce a meaningful result
    (reference line not found, non-positive Y factor, ...)."""


class ResourceError(ReproError):
    """Raised by the SoC resource models when a capacity is exceeded
    (memory overflow, processor budget, ...)."""


class ExecutionError(ReproError):
    """Raised when the execution substrate — not the measurement —
    fails unrecoverably: a worker pool that stays broken past its
    respawn budget, a task dead-lettered after exhausting its retries,
    a hung worker that had to be killed."""
