"""Reference-amplitude design study (the paper's figure 10).

Sweeps the reference-to-noise amplitude ratio and prints the power-ratio
estimation error, reproducing the 10-40 % design window the paper
recommends for the on-chip reference generator.

Run:  python examples/reference_amplitude_study.py
"""

from repro.experiments.fig10 import run_fig10
from repro.reporting import render_series


def main() -> None:
    result = run_fig10(seed=2005)
    ok = [p for p in result.points if not p.failed]
    print(
        render_series(
            [100 * p.reference_ratio for p in ok],
            [p.error_pct for p in ok],
            x_label="Vref/Vnoise (%)",
            y_label="power-ratio error (%)",
            title="Power-ratio error vs reference amplitude (figure 10)",
        )
    )
    failed = [p.reference_ratio for p in result.points if p.failed]
    if failed:
        print(f"\nfailed (reference lost in the noise floor): {failed}")
    print(
        "\nmax |error| inside the recommended 10-40% window: "
        f"{result.max_abs_error_in_window_pct():.2f}%"
    )


if __name__ == "__main__":
    main()
