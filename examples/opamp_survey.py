"""Opamp survey: the paper's Table 3 scenario on the full device library.

Measures the noise figure of the same Av=101 non-inverting amplifier
built with each opamp in the library (OP27, OP07, TL081, CA3140) and with
synthetic devices calibrated to the paper's expected column, printing
both the analytical expectation and the BIST measurement.

Run:  python examples/opamp_survey.py
"""

from repro.analog.opamp import OPAMP_LIBRARY, OpAmpNoiseModel
from repro.experiments.table3 import _hot_temperature_for
from repro.instruments import build_prototype_testbench
from repro.reporting import render_table

N_SAMPLES = 2**18
BAND = (500.0, 1500.0)


def survey_datasheet() -> list:
    rows = []
    for seed, name in enumerate(OPAMP_LIBRARY):
        # High-NF devices need a hotter calibration source to keep the Y
        # factor usable (see EXPERIMENTS.md); pick it per device.
        t_hot = _hot_temperature_for(OPAMP_LIBRARY[name], 600.0)
        bench = build_prototype_testbench(
            name, t_hot_k=t_hot, n_samples=N_SAMPLES
        )
        estimator = bench.make_estimator(noise_band_hz=BAND)
        result = estimator.measure(bench.acquire_bitstream, rng=100 + seed)
        expected = bench.expected_nf_db(*BAND)
        rows.append(
            [name, expected, result.noise_figure_db,
             result.noise_figure_db - expected]
        )
    return rows


def survey_paper_calibrated() -> list:
    paper_expected = {"OP27": 3.7, "OP07": 6.5, "TL081": 10.1, "CA3140": 16.2}
    rows = []
    for seed, (name, target) in enumerate(paper_expected.items()):
        model = OpAmpNoiseModel.from_expected_nf(
            target, 600.0, feedback_parallel_ohm=99.0, gbw_hz=8e6,
            name=f"{name}(paper)",
        )
        bench = build_prototype_testbench(model, n_samples=N_SAMPLES)
        estimator = bench.make_estimator(noise_band_hz=BAND)
        result = estimator.measure(bench.acquire_bitstream, rng=200 + seed)
        rows.append(
            [name, target, result.noise_figure_db,
             result.noise_figure_db - target]
        )
    return rows


def main() -> None:
    print(
        render_table(
            ["opamp", "expected NF (dB)", "measured NF (dB)", "error (dB)"],
            survey_datasheet(),
            title="Survey A - typical-datasheet opamp models",
        )
    )
    print()
    print(
        render_table(
            ["opamp", "paper expected NF (dB)", "measured NF (dB)", "error (dB)"],
            survey_paper_calibrated(),
            title="Survey B - devices calibrated to the paper's expected column",
        )
    )


if __name__ == "__main__":
    main()
