"""Frequency response with the same BIST cell (paper section 7 / ref [3]).

The conclusion of the paper stresses that the comparator cell also
measures "frequency related parameters".  This example sweeps a sine
stimulus through a band-limited amplifier and recovers its magnitude
response — including the -3 dB point — from 1-bit captures alone.

Run:  python examples/frequency_response_bist.py
"""

from repro.analog.amplifier import NonInvertingAmplifier
from repro.analog.opamp import OpAmpNoiseModel
from repro.core.frequency_response import FrequencyResponseBIST
from repro.reporting import render_series

FS = 32768.0

#: A deliberately slow opamp: GBW 404 kHz at Av=101 puts the closed-loop
#: pole at 4 kHz, inside the measured span.
SLOW_OPAMP = OpAmpNoiseModel("slow", 5e-9, 0.0, gbw_hz=404e3)


def main() -> None:
    dut = NonInvertingAmplifier(SLOW_OPAMP, 10000.0, 100.0, 600.0)
    print(f"DUT: Av={dut.gain:g}, closed-loop pole at {dut.bandwidth_hz:.0f} Hz")

    # Stimulus sized so the DUT output line sits at ~0.25 of the dither
    # RMS: well above the bitstream floor yet inside the limiter's
    # linear regime (the same 10-40 % window as figure 10).
    bist = FrequencyResponseBIST(
        frequencies_hz=(250.0, 500.0, 1000.0, 2000.0, 4000.0, 8000.0, 12000.0),
        stimulus_amplitude=0.25 / dut.gain,
        dither_rms=1.0,
        n_samples=2**18,
        sample_rate_hz=FS,
        nperseg=8192,
    )

    def process(stimulus, rng):
        return dut.process(stimulus, rng)

    result = bist.measure(process, rng=2005)
    print(
        render_series(
            result.frequencies_hz,
            result.magnitudes_db,
            x_label="frequency (Hz)",
            y_label="relative magnitude (dB)",
            title="Magnitude response measured through the 1-bit digitizer",
        )
    )
    print(f"\nmeasured -3 dB point: {result.minus_3db_frequency():.0f} Hz "
          f"(designed: {dut.bandwidth_hz:.0f} Hz)")


if __name__ == "__main__":
    main()
