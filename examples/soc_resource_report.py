"""SoC resource report: what the measurement costs on-chip.

Runs a full NF measurement through the SoC BIST controller (bit-packed
capture memory + cycle-accounted DSP) and prints the resource budget,
including the comparison against a hypothetical full-ADC capture — the
quantified version of the paper's "low cost" claim.

Run:  python examples/soc_resource_report.py
"""

from repro.experiments.resources import run_resources
from repro.reporting import render_table


def main() -> None:
    result = run_resources(n_samples=2**19, seed=2005)
    report = result.report

    print(
        render_table(
            ["resource", "value"],
            [
                ["measured NF (dB)", result.result.noise_figure_db],
                ["capture memory, 1-bit packed (kB)",
                 result.onebit_memory_bytes / 1024],
                ["capture memory, 12-bit ADC (kB)",
                 result.adc_memory_bytes_12bit / 1024],
                ["memory saving vs 12-bit ADC", result.memory_saving_vs_12bit],
                ["DSP cycles (millions)", report.dsp_cycles / 1e6],
                ["DSP time @ 100 MHz (ms)", report.dsp_time_s * 1e3],
                ["acquisition time (s)", report.acquisition_time_s],
                ["total test time (s)", report.total_test_time_s],
            ],
            title="SoC resource budget for one NF measurement",
        )
    )
    print()
    print(
        render_table(
            ["DSP stage", "cycles"],
            sorted(report.cycles_breakdown.items(), key=lambda kv: -kv[1]),
            title="Cycle breakdown",
        )
    )


if __name__ == "__main__":
    main()
