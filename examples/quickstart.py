"""Quickstart: measure an amplifier's noise figure with the 1-bit BIST.

Builds the paper's figure-11 prototype (calibrated hot/cold noise source,
non-inverting DUT with an OP27, post-amplifier, 3 kHz sine reference,
comparator digitizer), runs the two-state measurement and compares the
result against the analytical expectation.

Run:  python examples/quickstart.py
"""

from repro.instruments import build_prototype_testbench
from repro.reporting import render_table


def main() -> None:
    # 1. Assemble the testbench: OP27 DUT, Av=101, Rs=600 ohm,
    #    Th=2900 K / Tc=290 K source, 2^19-sample acquisitions.
    bench = build_prototype_testbench("OP27", n_samples=2**19)

    # 2. The estimator wraps Welch PSD -> reference-line normalization ->
    #    Y factor -> noise figure (paper eqs 5-9).
    estimator = bench.make_estimator()

    # 3. Acquire the hot and cold bitstreams and estimate.
    result = estimator.measure(bench.acquire_bitstream, rng=2005)

    expected = bench.expected_nf_db(500.0, 1500.0)
    print(
        render_table(
            ["quantity", "value"],
            [
                ["reference level (x cold noise RMS)",
                 bench.reference_level_ratio("cold")],
                ["measured Y factor", result.y],
                ["measured noise factor F", result.noise_factor],
                ["measured noise figure (dB)", result.noise_figure_db],
                ["expected noise figure (dB)", expected],
                ["error (dB)", result.noise_figure_db - expected],
            ],
            title="1-bit BIST noise-figure measurement (OP27 DUT)",
        )
    )


if __name__ == "__main__":
    main()
