"""Simultaneous multi-test-point measurement (the paper's abstract claim).

Two amplifier chains share the same calibrated noise source; each chain's
output has its own permanently-connected 1-bit digitizer and all taps are
captured during the *same* hot/cold states — no analog multiplexer, no
re-run per test point.  The Y-factor math is gain-free, so the two taps
can sit behind different conditioning gains.

Run:  python examples/multipoint_bist.py
"""

import numpy as np

from repro.analog.amplifier import NonInvertingAmplifier
from repro.analog.noise_source import CalibratedNoiseSource
from repro.analog.noise_analysis import expected_noise_figure_db
from repro.analog.opamp import OPAMP_LIBRARY
from repro.core.bist import BISTMeasurementConfig
from repro.core.multipoint import MultiPointBIST, TestPoint
from repro.digitizer.digitizer import OneBitDigitizer
from repro.instruments.testbench import POST_AMP_OPAMP
from repro.reporting import render_table
from repro.signals.random import spawn_rngs
from repro.signals.sources import SineSource

FS = 32768.0
N = 2**18
BAND = (500.0, 1500.0)


def build_chain(opamp_name: str) -> tuple:
    """DUT (Av=101) + post-amplifier (Av=1156) for one test point."""
    dut = NonInvertingAmplifier(
        OPAMP_LIBRARY[opamp_name], 10000.0, 100.0, 600.0,
        name=f"DUT[{opamp_name}]",
    )
    post = NonInvertingAmplifier(
        POST_AMP_OPAMP, 115500.0, 100.0, 100.0, name="post",
    )
    return dut, post


def main() -> None:
    # A 20 dB-ENR source (Th = 29000 K): the shared source must keep the
    # Y factor usable at every tap, including the noisy TL081 chain
    # (Te ~ 13000 K).  See EXPERIMENTS.md on source ENR vs DUT NF.
    source = CalibratedNoiseSource(600.0, t_hot_k=29000.0, t_cold_k=290.0)
    chains = {"chain_OP27": build_chain("OP27"), "chain_TL081": build_chain("TL081")}

    def acquire_state(state, rng):
        """Render each tap's analog output for one shared source state."""
        rngs = spawn_rngs(rng, 2 * len(chains) + 1)
        source_wave = source.render(state, N, FS, rngs[0])
        taps = {}
        for i, (name, (dut, post)) in enumerate(chains.items()):
            dut_out = dut.process(source_wave, rngs[2 * i + 1])
            taps[name] = post.process(dut_out, rngs[2 * i + 2])
        return taps

    # Per-tap reference amplitudes: each BIST cell's local reference DAC
    # is sized to ~25 % of that tap's cold noise RMS (figure 10 window).
    # The amplitude only needs to be constant across hot/cold states.
    cold_probe = acquire_state("cold", 999)
    reference = {
        name: SineSource(3000.0, 0.25 * wave.rms()).render(N, FS)
        for name, wave in cold_probe.items()
    }

    config = BISTMeasurementConfig(
        sample_rate_hz=FS,
        n_samples=N,
        nperseg=8192,
        reference_frequency_hz=3000.0,
        noise_band_hz=BAND,
        harmonic_kind="all",
    )
    multipoint = MultiPointBIST(
        [TestPoint(name, OneBitDigitizer()) for name in chains],
        config,
        t_hot_k=29000.0,
        t_cold_k=290.0,
    )

    results = multipoint.measure(acquire_state, reference, rng=2005)

    rows = []
    for name, (dut, _) in chains.items():
        expected = expected_noise_figure_db(dut, *BAND)
        measured = results[name].noise_figure_db
        rows.append([name, expected, measured, measured - expected])
    print(
        render_table(
            ["test point", "expected NF (dB)", "measured NF (dB)", "error (dB)"],
            rows,
            title="Simultaneous two-point NF measurement (one hot/cold cycle)",
        )
    )


if __name__ == "__main__":
    main()
