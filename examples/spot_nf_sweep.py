"""Spot noise figure vs frequency from a single acquisition pair.

The normalized bitstream spectra carry the whole noise spectrum, so one
hot/cold capture yields NF in every octave band.  A flicker-heavy DUT
shows the expected NF(f) slope; the Van Vleck-corrected path removes the
limiter-distortion bias that appears when the hot and cold spectra have
different shapes (see EXPERIMENTS.md).

Run:  python examples/spot_nf_sweep.py
"""

from repro.experiments.spot_nf import run_spot_nf
from repro.reporting import render_table


def main() -> None:
    result = run_spot_nf(n_samples=2**18, seed=2005)
    print(
        render_table(
            [
                "band (Hz)",
                "expected NF (dB)",
                "linear NF (dB)",
                "Van Vleck NF (dB)",
            ],
            [
                [
                    f"{r.f_low_hz:.0f}-{r.f_high_hz:.0f}",
                    r.expected_nf_db,
                    r.measured_nf_db,
                    r.corrected_nf_db,
                ]
                for r in result.rows
            ],
            title="NF(f) of a flicker-noise DUT, one hot/cold capture",
        )
    )
    print(
        f"\nNF slope across the span: measured {result.slope_db:.2f} dB, "
        f"analytical {result.expected_slope_db:.2f} dB"
    )
    print(
        "worst band error: linear "
        f"{result.max_abs_error_db:.2f} dB, corrected "
        f"{result.max_abs_corrected_error_db:.2f} dB"
    )


if __name__ == "__main__":
    main()
