"""Shared fixtures for the nfbist test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.signals.waveform import Waveform


@pytest.fixture
def rng():
    """A fixed-seed generator for deterministic tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def white_noise(rng):
    """A 1 V-RMS white-noise waveform at 10 kHz."""
    return Waveform(rng.normal(0.0, 1.0, size=20000), 10000.0)


@pytest.fixture
def sine_1k(rng):
    """A unit-amplitude 1 kHz sine at 10 kHz sampling."""
    t = np.arange(20000) / 10000.0
    return Waveform(np.sin(2 * np.pi * 1000.0 * t), 10000.0)
