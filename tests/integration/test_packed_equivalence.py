"""Packed-pipeline equivalence: every packed path matches the float path.

The acceptance bar of the packed-record refactor: PSDs computed from
packed records must match the float64 paths to <= 1e-10 for ``welch``,
``welch_batch``, ``StreamingWelch`` and both engine backends (serial
and process), and the multi-device production batch must reproduce the
per-device sweep exactly.
"""

import numpy as np
import pytest

from repro.bitstream import PackedBitstream, PackedRecordBatch
from repro.digitizer.comparator import Comparator
from repro.digitizer.digitizer import OneBitDigitizer
from repro.digitizer.sampler import SampledLatch
from repro.dsp.psd import welch, welch_batch
from repro.engine import MeasurementEngine, WelchParams, welch_batch_shared
from repro.experiments.matlab_sim import MatlabSimConfig, MatlabSimulation
from repro.experiments.production import run_production
from repro.signals.random import make_rng, spawn_rngs
from repro.signals.waveform import Waveform
from repro.soc.streaming import StreamingWelch

FS = 10000.0
TOL = 1e-10


def random_bitstream(rng, n):
    return np.where(rng.random(n) > 0.5, 1.0, -1.0)


def rel_diff(a, b):
    return float(np.max(np.abs(a - b)) / np.max(np.abs(b)))


class TestWelchEquivalence:
    @pytest.mark.parametrize(
        "n,nperseg,overlap,detrend",
        [
            (100003, 1000, 0.5, True),
            (50000, 999, 0.0, False),
            (20000, 1024, 0.5, False),
            (30001, 500, 0.0, True),
        ],
    )
    def test_welch_packed_matches_float(self, rng, n, nperseg, overlap, detrend):
        x = random_bitstream(rng, n)
        float_psd = welch(
            x, nperseg, sample_rate=FS, overlap=overlap, detrend=detrend
        ).psd
        packed_psd = welch(
            PackedBitstream.pack(x, FS),
            nperseg,
            overlap=overlap,
            detrend=detrend,
        ).psd
        assert rel_diff(packed_psd, float_psd) <= TOL

    @pytest.mark.parametrize("block_segments", [1, 3, 16, 64])
    def test_block_size_irrelevant(self, rng, block_segments):
        x = random_bitstream(rng, 40000)
        reference = welch(x, 2000, sample_rate=FS).psd
        packed = welch(
            PackedBitstream.pack(x, FS), 2000, block_segments=block_segments
        ).psd
        assert rel_diff(packed, reference) <= TOL

    def test_welch_batch_packed_matches_float(self, rng):
        records = np.where(rng.random((6, 30000)) > 0.5, 1.0, -1.0)
        float_batch = welch_batch(records, 1500, sample_rate=FS)
        packed_batch = welch_batch(PackedRecordBatch.pack(records, FS), 1500)
        assert rel_diff(packed_batch.psd, float_batch.psd) <= TOL
        assert np.array_equal(packed_batch.frequencies, float_batch.frequencies)

    def test_welch_batch_rate_mismatch_rejected(self, rng):
        records = PackedRecordBatch.pack(
            np.where(rng.random((2, 5000)) > 0.5, 1.0, -1.0), FS
        )
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            welch_batch(records, 1000, sample_rate=FS / 2)


class TestStreamingEquivalence:
    @pytest.mark.parametrize("overlap", [0.0, 0.5])
    @pytest.mark.parametrize("chunk", [997, 2000, 100000])
    def test_packed_streaming_matches_float_and_batch(self, rng, overlap, chunk):
        x = random_bitstream(rng, 100000)
        batch_psd = welch(x, 2000, sample_rate=FS, overlap=overlap).psd
        packed_streamer = StreamingWelch(2000, FS, overlap=overlap, packed=True)
        float_streamer = StreamingWelch(2000, FS, overlap=overlap)
        for lo in range(0, x.size, chunk):
            piece = x[lo : lo + chunk]
            packed_streamer.push(PackedBitstream.pack(piece, FS))
            float_streamer.push(piece)
        packed_psd = packed_streamer.result().psd
        assert rel_diff(packed_psd, batch_psd) <= TOL
        assert rel_diff(packed_psd, float_streamer.result().psd) <= TOL

    def test_packed_streamer_accepts_waveform_chunks(self, rng):
        x = random_bitstream(rng, 20000)
        streamer = StreamingWelch(1000, FS, packed=True)
        streamer.push(Waveform(x, FS))
        reference = welch(x, 1000, sample_rate=FS).psd
        assert rel_diff(streamer.result().psd, reference) <= TOL

    def test_packed_streamer_rejects_analog_chunks(self, rng):
        from repro.errors import ConfigurationError

        streamer = StreamingWelch(1000, FS, packed=True)
        with pytest.raises(ConfigurationError):
            streamer.push(rng.normal(0.0, 1.0, 500))

    def test_float_streamer_unpacks_packed_chunks(self, rng):
        x = random_bitstream(rng, 20000)
        streamer = StreamingWelch(1000, FS)
        streamer.push(PackedBitstream.pack(x, FS))
        reference = welch(x, 1000, sample_rate=FS).psd
        assert rel_diff(streamer.result().psd, reference) <= TOL


class TestDigitizerPackedEquivalence:
    @pytest.mark.parametrize(
        "digitizer",
        [
            OneBitDigitizer(),
            OneBitDigitizer(Comparator(offset_v=0.02, input_noise_rms=0.05)),
            OneBitDigitizer(Comparator(hysteresis_v=0.1)),
            OneBitDigitizer(sampler=SampledLatch(divider=4)),
            OneBitDigitizer(
                sampler=SampledLatch(divider=3, jitter_rms_samples=0.6)
            ),
        ],
    )
    def test_packed_digitize_bit_exact(self, rng, digitizer):
        n = 8001
        signal = Waveform(rng.normal(0.0, 1.0, n), FS)
        reference = Waveform(
            0.2 * np.sign(np.sin(0.01 * np.arange(n)) + 0.5), FS
        )
        float_wave = digitizer.digitize(signal, reference, rng=11)
        packed = digitizer.digitize(signal, reference, rng=11, packed=True)
        assert np.array_equal(packed.unpack(), float_wave.samples)
        assert packed.sample_rate == float_wave.sample_rate

        signals = rng.normal(0.0, 1.0, (3, n))
        float_batch = digitizer.digitize_batch(
            signals, reference.samples, FS, rngs=[1, 2, 3]
        )
        packed_batch = digitizer.digitize_batch(
            signals, reference.samples, FS, rngs=[1, 2, 3], packed=True
        )
        assert np.array_equal(packed_batch.unpack(), float_batch)

    def test_per_record_reference_rows_match_scalar(self, rng):
        # The 2-D reference form: row i digitized against its own
        # reference, float and packed, equal to the scalar path.
        digitizer = OneBitDigitizer()
        n = 3001
        signals = rng.normal(0.0, 1.0, (3, n))
        references = np.vstack(
            [amp * np.sign(np.sin(0.01 * np.arange(n)) + 0.3)
             for amp in (0.1, 0.2, 0.4)]
        )
        float_batch = digitizer.digitize_batch(
            signals, references, FS, rngs=[1, 2, 3]
        )
        packed_batch = digitizer.digitize_batch(
            signals, references, FS, rngs=[1, 2, 3], packed=True
        )
        assert np.array_equal(packed_batch.unpack(), float_batch)
        for i in range(3):
            scalar = digitizer.digitize(
                Waveform(signals[i], FS), Waveform(references[i], FS), rng=i + 1
            )
            assert np.array_equal(float_batch[i], scalar.samples)

    def test_batch_provenance_replays_the_record(self, rng):
        # The recorded seed identity must re-create the exact record,
        # even when the caller passed rngs=None (OS entropy).
        digitizer = OneBitDigitizer(Comparator(input_noise_rms=0.1))
        n = 4096
        signals = rng.normal(0.0, 1.0, (2, n))
        reference = np.zeros(n)
        first = digitizer.digitize_batch(
            signals, reference, FS, rngs=None, packed=True
        )
        replay_rngs = [
            np.random.default_rng(prov.entropy) for prov in first.provenance
        ]
        replay = digitizer.digitize_batch(
            signals, reference, FS, rngs=replay_rngs, packed=True
        )
        assert np.array_equal(first.words, replay.words)

    def test_packed_compare_batch_requires_sample_rate(self, rng):
        from repro.errors import ConfigurationError

        comparator = Comparator()
        with pytest.raises(ConfigurationError):
            comparator.compare_batch(
                rng.normal(size=(2, 64)), np.zeros(64), packed=True
            )


class TestEngineBackendsEquivalence:
    @pytest.fixture
    def sim(self):
        return MatlabSimulation(MatlabSimConfig(n_samples=50000, nperseg=2000))

    def test_serial_engine_packed_matches_float(self, sim):
        estimator = sim.make_estimator()
        packed_engine = MeasurementEngine(packed=True)
        float_engine = MeasurementEngine(packed=False)
        states = ["hot", "cold", "hot", "cold"]
        packed_records, rate = sim.acquire_bitstreams(
            states, spawn_rngs(make_rng(31), 4), packed=True
        )
        float_records, _ = sim.acquire_bitstreams(
            states, spawn_rngs(make_rng(31), 4)
        )
        assert isinstance(packed_records, PackedRecordBatch)
        assert np.array_equal(packed_records.unpack(), float_records)
        packed_psd = packed_engine.spectra_of(packed_records, rate, estimator)
        float_psd = float_engine.spectra_of(float_records, rate, estimator)
        assert rel_diff(packed_psd.psd, float_psd.psd) <= TOL

    def test_process_engine_packed_matches_float(self, sim):
        estimator = sim.make_estimator()
        states = ["hot", "cold", "hot", "cold"]
        packed_records, rate = sim.acquire_bitstreams(
            states, spawn_rngs(make_rng(77), 4), packed=True
        )
        float_records, _ = sim.acquire_bitstreams(
            states, spawn_rngs(make_rng(77), 4)
        )
        with MeasurementEngine(backend="process", max_workers=2) as process_engine:
            process_psd = process_engine.spectra_of(
                packed_records, rate, estimator
            )
        float_psd = MeasurementEngine(packed=False).spectra_of(
            float_records, rate, estimator
        )
        assert rel_diff(process_psd.psd, float_psd.psd) <= TOL

    def test_run_batch_identical_across_backends_and_packing(self, sim):
        estimator = sim.make_estimator()
        reference = [
            r.noise_figure_db
            for r in MeasurementEngine(packed=False).run_batch(
                sim, estimator, 3, rng=7
            )
        ]
        for engine in (
            MeasurementEngine(),
            MeasurementEngine(backend="process", max_workers=2),
        ):
            with engine:
                values = [
                    r.noise_figure_db
                    for r in engine.run_batch(sim, estimator, 3, rng=7)
                ]
            assert max(
                abs(a - b) for a, b in zip(values, reference)
            ) <= 1e-9

    def test_shared_memory_welch_matches_inprocess(self, sim):
        estimator = sim.make_estimator()
        rngs = spawn_rngs(make_rng(5), 4)
        records, rate = sim.acquire_bitstreams(
            ["hot", "cold", "hot", "cold"], rngs, packed=True
        )
        config = estimator.config
        params = WelchParams(
            nperseg=config.nperseg,
            window=config.window,
            overlap=config.overlap,
            detrend=True,
            block_segments=16,
        )
        shared_psd = welch_batch_shared(records, params, max_workers=2)
        local_psd = welch_batch(records, config.nperseg).psd
        assert rel_diff(shared_psd, local_psd) <= TOL

    def test_process_spectra_rate_mismatch_rejected(self, sim):
        from repro.errors import ConfigurationError

        estimator = sim.make_estimator()
        records, rate = sim.acquire_bitstreams(
            ["hot", "cold"], spawn_rngs(make_rng(5), 2), packed=True
        )
        with MeasurementEngine(backend="process", max_workers=2) as engine:
            with pytest.raises(ConfigurationError):
                engine.spectra_of(records, rate / 2.0, estimator)

    def test_packed_records_are_64x_smaller(self, sim):
        packed_records, _ = sim.acquire_bitstreams(
            ["hot", "cold"], spawn_rngs(make_rng(5), 2), packed=True
        )
        float_records, _ = sim.acquire_bitstreams(
            ["hot", "cold"], spawn_rngs(make_rng(5), 2)
        )
        assert float_records.nbytes / packed_records.nbytes == 64.0


class TestMultiDeviceEquivalence:
    def test_measure_devices_matches_per_device(self):
        from dataclasses import replace

        base = MatlabSimConfig(n_samples=40000, nperseg=2000)
        sims = [
            MatlabSimulation(replace(base, dut_nf_db=nf))
            for nf in (6.0, 10.0, 14.0)
        ]
        estimators = [sim.make_estimator() for sim in sims]
        engine = MeasurementEngine()
        batched = engine.measure_devices(sims, estimators, rng=99)
        rngs = spawn_rngs(make_rng(99), len(sims))
        individual = [
            engine.measure(sim, est, rng=rng)
            for sim, est, rng in zip(sims, estimators, rngs)
        ]
        for a, b in zip(batched, individual):
            assert abs(a.noise_figure_db - b.noise_figure_db) <= 1e-9
            assert abs(a.y - b.y) <= 1e-12

    def test_estimator_config_mismatch_rejected(self):
        from repro.errors import ConfigurationError

        sims = [
            MatlabSimulation(MatlabSimConfig(n_samples=40000, nperseg=n))
            for n in (2000, 1000)
        ]
        estimators = [sim.make_estimator() for sim in sims]
        with pytest.raises(ConfigurationError):
            MeasurementEngine().measure_devices(sims, estimators, rng=1)


class TestProductionSingleBatch:
    def test_batch_screen_identical_to_sweep(self):
        batch = run_production(n_devices=5, n_samples=2**14, seed=2005)
        sweep = run_production(
            n_devices=5, n_samples=2**14, seed=2005, multi_device_batch=False
        )
        assert batch.true_nf_db == sweep.true_nf_db
        for a, b in zip(batch.measured_nf_db, sweep.measured_nf_db):
            assert abs(a - b) <= 1e-9
        for row_a, row_b in zip(batch.rows, sweep.rows):
            assert row_a.outcome == row_b.outcome
