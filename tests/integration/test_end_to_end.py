"""Integration tests: the full pipeline across modules.

These exercise the complete chain (noise source -> amplifiers -> 1-bit
digitizer -> Welch -> normalization -> Y-factor) at reduced record lengths
and check the paper's structural claims.
"""

import numpy as np
import pytest

from repro.analog.opamp import OPAMP_LIBRARY, OpAmpNoiseModel
from repro.core.yfactor import YFactorMethod
from repro.digitizer.comparator import Comparator
from repro.digitizer.digitizer import OneBitDigitizer
from repro.dsp.psd import welch
from repro.instruments.testbench import build_prototype_testbench

N_FAST = 2**17
N_SLOW = 2**18


class TestPrototypeMeasurement:
    def test_bist_tracks_expected_nf_op27(self):
        bench = build_prototype_testbench("OP27", n_samples=N_SLOW)
        est = bench.make_estimator()
        result = est.measure(bench.acquire_bitstream, rng=42)
        expected = bench.expected_nf_db(500.0, 1500.0)
        assert result.noise_figure_db == pytest.approx(expected, abs=1.0)

    def test_bist_and_full_adc_agree(self):
        # The 1-bit estimate must agree with the full-record Y-factor on
        # the same bench (the paper's implicit validation).
        bench = build_prototype_testbench("OP07", n_samples=N_SLOW)
        est = bench.make_estimator()
        onebit = est.measure(bench.acquire_bitstream, rng=11)

        yf = YFactorMethod(2900.0, 290.0)
        hot = bench.analog_output("hot", rng=12)
        cold = bench.analog_output("cold", rng=13)
        spec_h = welch(hot, nperseg=8192)
        spec_c = welch(cold, nperseg=8192)
        adc = yf.from_spectra(spec_h, spec_c, 500.0, 1500.0)
        # Both estimates carry their own statistical scatter at this
        # record length (independent noise realizations).
        assert onebit.noise_figure_db == pytest.approx(
            adc.noise_figure_db, abs=1.5
        )

    def test_nf_ordering_across_opamps(self):
        # Quieter opamps must measure lower NF (paper Table 3 ordering).
        measured = {}
        for name in ("OP27", "CA3140"):
            bench = build_prototype_testbench(name, n_samples=N_FAST)
            est = bench.make_estimator()
            measured[name] = est.measure(
                bench.acquire_bitstream, rng=21
            ).noise_figure_db
        assert measured["OP27"] < measured["CA3140"] - 5.0

    def test_synthesized_target_nf_recovered(self):
        target = 10.0
        model = OpAmpNoiseModel.from_expected_nf(
            target, 600.0, feedback_parallel_ohm=99.0, gbw_hz=8e6
        )
        bench = build_prototype_testbench(model, n_samples=N_SLOW)
        est = bench.make_estimator()
        result = est.measure(bench.acquire_bitstream, rng=31)
        assert result.noise_figure_db == pytest.approx(target, abs=1.0)

    def test_hot_level_bias_shifts_nf_down(self):
        # An actually-hotter source makes the DUT look quieter (eq 8).
        model = OpAmpNoiseModel.from_expected_nf(
            6.0, 600.0, feedback_parallel_ohm=99.0, gbw_hz=8e6
        )
        clean = build_prototype_testbench(model, n_samples=N_FAST)
        biased = build_prototype_testbench(
            model, n_samples=N_FAST, hot_level_error=0.3
        )
        nf_clean = clean.make_estimator().measure(
            clean.acquire_bitstream, rng=5
        ).noise_figure_db
        nf_biased = biased.make_estimator().measure(
            biased.acquire_bitstream, rng=5
        ).noise_figure_db
        assert nf_biased < nf_clean - 0.5


class TestComparatorNonidealities:
    def test_small_offset_tolerated(self):
        model = OpAmpNoiseModel.from_expected_nf(
            6.0, 600.0, feedback_parallel_ohm=99.0, gbw_hz=8e6
        )
        ideal_bench = build_prototype_testbench(model, n_samples=N_SLOW)
        # Offset of 10 % of the cold noise RMS at the comparator.
        offset = 0.1 * ideal_bench.predicted_output_rms("cold")
        offset_bench = build_prototype_testbench(
            model,
            n_samples=N_SLOW,
            digitizer=OneBitDigitizer(comparator=Comparator(offset_v=offset)),
        )
        nf_ideal = ideal_bench.make_estimator().measure(
            ideal_bench.acquire_bitstream, rng=8
        ).noise_figure_db
        nf_offset = offset_bench.make_estimator().measure(
            offset_bench.acquire_bitstream, rng=8
        ).noise_figure_db
        assert nf_offset == pytest.approx(nf_ideal, abs=0.5)

    def test_comparator_noise_tolerated(self):
        # Comparator input noise acts like extra dither; the reference
        # normalization absorbs moderate amounts.
        model = OpAmpNoiseModel.from_expected_nf(
            6.0, 600.0, feedback_parallel_ohm=99.0, gbw_hz=8e6
        )
        bench = build_prototype_testbench(model, n_samples=N_SLOW)
        noise_rms = 0.05 * bench.predicted_output_rms("cold")
        noisy_bench = build_prototype_testbench(
            model,
            n_samples=N_SLOW,
            digitizer=OneBitDigitizer(
                comparator=Comparator(input_noise_rms=noise_rms)
            ),
        )
        nf_a = bench.make_estimator().measure(
            bench.acquire_bitstream, rng=9
        ).noise_figure_db
        nf_b = noisy_bench.make_estimator().measure(
            noisy_bench.acquire_bitstream, rng=9
        ).noise_figure_db
        assert nf_b == pytest.approx(nf_a, abs=0.6)
