"""Integration: the supervised service's flagship crash guarantees.

Two acceptance bars for the job daemon:

* **SIGKILL mid-screen**: concurrent clients submit jobs, the daemon is
  SIGKILLed while a lot is in flight, a restarted daemon replays the
  journal and resumes via the store — the merged outcomes are
  bit-identical to an uninterrupted run, no acknowledged job is lost,
  and no deduped job is computed twice.
* **graceful drain**: SIGTERM under load exits within the drain budget
  with the distinct jobs-dropped exit code, and the journal carries the
  in-flight job to the next daemon.
"""

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.engine import MeasurementScheduler, MeasurementTask
from repro.experiments.production import _build_device_bench, run_production
from repro.service import (
    EXIT_JOBS_DROPPED,
    JobJournal,
    JobSpec,
    ServiceClient,
    wait_for_server,
)
from repro.signals.random import make_rng

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

#: One bulk screen, big enough that a serial daemon is reliably still
#: mid-lot when the kill lands ~1s after submission.
LOT_PARAMS = dict(n_devices=10, n_samples=2**16, nperseg=4096, seed=11)
LOT_SPEC = JobSpec(kind="lot", params=LOT_PARAMS)

MEASURE_PARAMS = dict(
    seed=77, n_samples=2**14, nperseg=2048, true_nf_db=8.0
)
MEASURE_SPEC = JobSpec(kind="measure", params=MEASURE_PARAMS)

DRAIN_GRACE_S = 30.0


@pytest.fixture(scope="module")
def reference_lot():
    """The uninterrupted answer every recovered run must match."""
    result = run_production(**LOT_PARAMS)
    return [float(v) for v in result.measured_nf_db]


@pytest.fixture(scope="module")
def reference_measure():
    bench = _build_device_bench(
        MEASURE_PARAMS["true_nf_db"], MEASURE_PARAMS["n_samples"]
    )
    task = MeasurementTask(
        source=bench,
        estimator=bench.make_estimator(nperseg=MEASURE_PARAMS["nperseg"]),
        rng=make_rng(MEASURE_PARAMS["seed"]),
    )
    return float(
        MeasurementScheduler().run([task])[0].noise_figure_db
    )


def start_daemon(store_root: Path) -> subprocess.Popen:
    """``repro.cli serve`` as a real subprocess on a Unix socket."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--store",
            str(store_root),
            "--backend",
            "serial",
            "--no-fsync",
            "--max-group-devices",
            "2",
            "--drain-grace",
            str(DRAIN_GRACE_S),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        wait_for_server(str(store_root / "service.sock"), timeout_s=30.0)
    except Exception:
        proc.kill()
        raise
    return proc


class TestSigkillRecovery:
    def test_killed_daemon_recovers_bit_identically(
        self, tmp_path, reference_lot, reference_measure
    ):
        store = tmp_path / "store"
        socket_path = str(store / "service.sock")
        daemon = start_daemon(store)
        acks = []
        try:
            # Concurrent clients: two race the SAME lot spec (dedup
            # must collapse them onto one execution) while a third
            # submits an interactive measure probe.
            def submit(spec):
                with ServiceClient(socket_path, timeout_s=30.0) as client:
                    acks.append(client.submit(spec))

            threads = [
                threading.Thread(target=submit, args=(LOT_SPEC,)),
                threading.Thread(target=submit, args=(LOT_SPEC,)),
                threading.Thread(target=submit, args=(MEASURE_SPEC,)),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)
            assert len(acks) == 3
            lot_verdicts = sorted(
                a["status"] for a in acks if a["key"] == LOT_SPEC.key()
            )
            # No deduped job is computed twice: exactly one admission.
            assert lot_verdicts == ["accepted", "duplicate"]

            # Let the lot get properly underway, then pull the plug.
            time.sleep(1.0)
            daemon.send_signal(signal.SIGKILL)
            assert daemon.wait(timeout=30.0) == -signal.SIGKILL
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait(timeout=30.0)

        # The journal survived the kill with the acknowledged lot still
        # incomplete (it was mid-run) — nothing acknowledged was lost.
        state = JobJournal(store / "service").replay()
        assert LOT_SPEC.key() in state.entries
        incomplete = {entry.key for entry in state.incomplete}
        assert LOT_SPEC.key() in incomplete

        # Restart: replay re-enqueues the incomplete jobs and the store
        # resumes the finished sub-batches.
        daemon = start_daemon(store)
        try:
            with ServiceClient(socket_path, timeout_s=30.0) as client:
                report = client.stats()
                assert report["journal_replayed"] == len(incomplete)
                lot_ack = client.submit_resilient(
                    LOT_SPEC, wait=True, wait_timeout_s=600.0
                )
                measure_ack = client.submit_resilient(
                    MEASURE_SPEC, wait=True, wait_timeout_s=600.0
                )
            assert lot_ack["job"]["state"] == "ok"
            assert measure_ack["job"]["state"] == "ok"
            # The flagship bar: merged outcomes, bit for bit.
            assert (
                lot_ack["job"]["result"]["measured_nf_db"]
                == reference_lot
            )
            assert (
                measure_ack["job"]["result"]["noise_figure_db"]
                == reference_measure
            )
        finally:
            daemon.send_signal(signal.SIGTERM)
            assert daemon.wait(timeout=60.0) == 0

        # Everything acknowledged reached a terminal journal state.
        assert JobJournal(store / "service").replay().incomplete == []


class TestGracefulDrain:
    def test_sigterm_under_load_drains_within_budget(
        self, tmp_path, reference_lot
    ):
        store = tmp_path / "store"
        socket_path = str(store / "service.sock")
        daemon = start_daemon(store)
        try:
            with ServiceClient(socket_path, timeout_s=30.0) as client:
                ack = client.submit(LOT_SPEC)
            assert ack["status"] == "accepted"
            time.sleep(0.5)  # mid-lot
            asked_at = time.monotonic()
            daemon.send_signal(signal.SIGTERM)
            code = daemon.wait(timeout=DRAIN_GRACE_S + 30.0)
            elapsed = time.monotonic() - asked_at
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait(timeout=30.0)

        # Distinct exit code: an acknowledged job did not finish.
        assert code == EXIT_JOBS_DROPPED
        # The drain finished the in-flight sub-batch and stopped well
        # inside the grace budget rather than running the lot out.
        assert elapsed < DRAIN_GRACE_S + 15.0
        state = JobJournal(store / "service").replay()
        assert [entry.key for entry in state.incomplete] == [
            LOT_SPEC.key()
        ]

        # The next daemon picks the job up and lands the same answer.
        daemon = start_daemon(store)
        try:
            with ServiceClient(socket_path, timeout_s=30.0) as client:
                assert client.stats()["journal_replayed"] == 1
                ack = client.submit_resilient(
                    LOT_SPEC, wait=True, wait_timeout_s=600.0
                )
            assert ack["job"]["state"] == "ok"
            assert (
                ack["job"]["result"]["measured_nf_db"] == reference_lot
            )
        finally:
            daemon.send_signal(signal.SIGTERM)
            assert daemon.wait(timeout=60.0) == 0
