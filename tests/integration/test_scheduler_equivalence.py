"""Scheduler equivalence: planned heterogeneous screens reproduce the
per-device serial path bit for bit.

The planner's contract is that grouping tasks into compatible
sub-batches changes *how* work is executed, never the numbers: every
task's generators are spawned exactly as per-device ``measure`` spawns
them, and the batched kernels are bit-exact per record.  These tests
pin that contract at the experiments layer (the mixed-configuration
production screen) and across backends (persistent pool reused over
several planned runs).
"""

import numpy as np
import pytest

from repro.engine import (
    MeasurementEngine,
    MeasurementScheduler,
    MeasurementTask,
)
from repro.experiments.matlab_sim import MatlabSimConfig, MatlabSimulation
from repro.experiments.production import run_production
from repro.signals.random import make_rng, spawn_rngs

MIXED_SAMPLES = [2**15] * 4 + [2**16] * 4


class TestMixedConfigProduction:
    @pytest.fixture(scope="class")
    def planned(self):
        return run_production(
            n_devices=8, n_samples=MIXED_SAMPLES, seed=11
        )

    def test_planner_splits_lot(self, planned):
        assert planned.n_plan_groups == 2

    def test_bit_identical_to_per_device_sweep(self, planned):
        per_device = run_production(
            n_devices=8,
            n_samples=MIXED_SAMPLES,
            seed=11,
            multi_device_batch=False,
        )
        assert planned.measured_nf_db == per_device.measured_nf_db
        assert planned.true_nf_db == per_device.true_nf_db

    def test_mixed_nperseg_also_splits(self):
        result = run_production(
            n_devices=8,
            n_samples=2**15,
            nperseg=[4096] * 4 + [8192] * 4,
            seed=11,
        )
        assert result.n_plan_groups == 2
        homogeneous = run_production(
            n_devices=8, n_samples=2**15, nperseg=4096, seed=11
        )
        # The first four devices share seed and configuration with the
        # homogeneous 4096-bin lot, so their measurements must agree.
        assert result.measured_nf_db[:4] == homogeneous.measured_nf_db[:4]


class TestHeterogeneousScreenAcrossBackends:
    def _tasks(self, seed):
        sims = [
            MatlabSimulation(MatlabSimConfig(n_samples=n, nperseg=3000))
            for n in (60_000, 30_000, 60_000, 30_000, 60_000, 30_000)
        ]
        rngs = spawn_rngs(make_rng(seed), len(sims))
        return [
            MeasurementTask(sim, sim.make_estimator(), rng)
            for sim, rng in zip(sims, rngs)
        ]

    def test_process_backend_matches_serial(self):
        serial = MeasurementScheduler().run(self._tasks(31))
        with MeasurementScheduler(backend="process", max_workers=2) as sched:
            procs = sched.run(self._tasks(31))
        assert [r.noise_figure_db for r in procs] == [
            r.noise_figure_db for r in serial
        ]

    def test_pool_reused_across_planned_runs(self):
        with MeasurementScheduler(backend="process", max_workers=2) as sched:
            first = sched.run(self._tasks(31))
            second = sched.run(self._tasks(31))
            assert sched.pool.spawn_count == 1
        assert [r.noise_figure_db for r in first] == [
            r.noise_figure_db for r in second
        ]
