"""Equivalence suite: batched paths vs the seed's serial loops.

The batched Welch kernel must match a straight per-segment loop (the
seed implementation, replicated here as ``loop_welch``) to <= 1e-10,
and every batched acquisition row must be bit-for-bit identical to its
serial counterpart driven by the same spawned generator.
"""

import numpy as np
import pytest

from repro.core.averaging import RepeatedMeasurement
from repro.dsp.psd import welch, welch_batch
from repro.dsp.windows import get_window
from repro.engine import MeasurementEngine
from repro.experiments.matlab_sim import MatlabSimConfig, MatlabSimulation
from repro.instruments.testbench import build_prototype_testbench
from repro.signals.random import make_rng, spawn_rngs
from repro.signals.sources import GaussianNoiseSource
from repro.soc.streaming import StreamingWelch

FS = 10000.0


def loop_welch(samples, nperseg, fs, window="hann", overlap=0.5, detrend=True):
    """The seed's per-segment Welch loop, kept as the reference."""
    step = max(1, int(round(nperseg * (1.0 - overlap))))
    win = get_window(window, nperseg)
    n_segments = 1 + (samples.size - nperseg) // step
    acc = np.zeros(nperseg // 2 + 1)
    for k in range(n_segments):
        seg = samples[k * step : k * step + nperseg]
        if detrend:
            seg = seg - np.mean(seg)
        spectrum = np.fft.rfft(seg * win)
        psd = (np.abs(spectrum) ** 2) / (fs * np.sum(win**2))
        if nperseg % 2 == 0:
            psd[1:-1] *= 2.0
        else:
            psd[1:] *= 2.0
        acc += psd
    return acc / n_segments


class TestWelchMatchesLoop:
    @pytest.mark.parametrize("nperseg", [256, 251])
    @pytest.mark.parametrize("overlap", [0.0, 0.5])
    @pytest.mark.parametrize("detrend", [True, False])
    def test_batched_welch_equals_loop(self, rng, nperseg, overlap, detrend):
        samples = rng.normal(size=10_000)
        spec = welch(
            samples,
            nperseg=nperseg,
            sample_rate=FS,
            overlap=overlap,
            detrend=detrend,
        )
        reference = loop_welch(
            samples, nperseg, FS, overlap=overlap, detrend=detrend
        )
        assert np.allclose(spec.psd, reference, rtol=1e-10, atol=0.0)

    @pytest.mark.parametrize("window", ["rectangular", "hamming", "blackman"])
    def test_windows_equal_loop(self, rng, window):
        samples = rng.normal(size=8_000)
        spec = welch(samples, nperseg=500, sample_rate=FS, window=window)
        reference = loop_welch(samples, 500, FS, window=window)
        assert np.allclose(spec.psd, reference, rtol=1e-10, atol=0.0)

    def test_block_size_does_not_change_results(self, rng):
        samples = rng.normal(size=50_000)
        base = welch(samples, nperseg=2000, sample_rate=FS, block_segments=1)
        for block in (3, 16, 64, 1000):
            other = welch(
                samples, nperseg=2000, sample_rate=FS, block_segments=block
            )
            assert np.allclose(base.psd, other.psd, rtol=1e-12)

    def test_welch_batch_rows_equal_loop(self, rng):
        records = rng.normal(size=(4, 20_000))
        batch = welch_batch(records, nperseg=1000, sample_rate=FS)
        for i in range(4):
            reference = loop_welch(records[i], 1000, FS)
            assert np.allclose(batch.psd[i], reference, rtol=1e-10, atol=0.0)


class TestStreamingMatchesLoop:
    @pytest.mark.parametrize("overlap", [0.0, 0.5])
    @pytest.mark.parametrize("chunk", [643, 5000, 100_000])
    def test_streaming_equals_loop(self, rng, overlap, chunk):
        samples = rng.normal(size=100_000)
        streamer = StreamingWelch(2000, FS, overlap=overlap)
        for start in range(0, samples.size, chunk):
            streamer.push(samples[start : start + chunk])
        reference = loop_welch(samples, 2000, FS, overlap=overlap)
        assert np.allclose(streamer.result().psd, reference, rtol=1e-10, atol=0.0)

    def test_fast_path_tail_then_small_chunks(self, rng):
        samples = rng.normal(size=30_000)
        streamer = StreamingWelch(1000, FS)
        streamer.push(samples[:25_500])  # fast path + odd tail
        for start in range(25_500, samples.size, 137):
            streamer.push(samples[start : start + 137])
        reference = loop_welch(samples, 1000, FS)
        assert np.allclose(streamer.result().psd, reference, rtol=1e-10, atol=0.0)


class TestBatchAcquisitionBitExact:
    def test_testbench_rows_equal_serial(self):
        bench = build_prototype_testbench(n_samples=2**14)
        states = ("hot", "cold", "hot", "cold")
        serial = [
            bench.acquire_bitstream(state, child).samples
            for state, child in zip(states, spawn_rngs(make_rng(21), 4))
        ]
        bits, rate = bench.acquire_bitstreams(
            states, spawn_rngs(make_rng(21), 4)
        )
        assert rate == bench.sample_rate_hz
        for i in range(4):
            assert np.array_equal(bits[i], serial[i])

    def test_matlab_sim_rows_equal_serial(self):
        sim = MatlabSimulation(MatlabSimConfig(n_samples=40_000, nperseg=2000))
        states = ("hot", "cold")
        serial = [
            sim.bitstream(state, child).samples
            for state, child in zip(states, spawn_rngs(make_rng(8), 2))
        ]
        bits, _ = sim.acquire_bitstreams(states, spawn_rngs(make_rng(8), 2))
        for i in range(2):
            assert np.array_equal(bits[i], serial[i])

    def test_gaussian_render_batch_bit_exact(self):
        source = GaussianNoiseSource(0.7, mean=0.1)
        rngs = spawn_rngs(make_rng(3), 3)
        batch = source.render_batch(5000, FS, rngs)
        for wave, rng2 in zip(batch, spawn_rngs(make_rng(3), 3)):
            assert np.array_equal(
                wave, source.render(5000, FS, rng2).samples
            )

    def test_amplifier_batch_bit_exact(self):
        bench = build_prototype_testbench(n_samples=2**12)
        records = np.random.default_rng(0).normal(size=(3, 2**12))
        batch = bench.dut.process_batch(
            records, bench.sample_rate_hz, spawn_rngs(make_rng(9), 3)
        )
        from repro.signals.waveform import Waveform

        for i, rng2 in enumerate(spawn_rngs(make_rng(9), 3)):
            serial = bench.dut.process(
                Waveform(records[i], bench.sample_rate_hz), rng2
            ).samples
            assert np.array_equal(batch[i], serial)


class TestEngineMatchesSerialMeasurements:
    def test_measure_equals_estimator_measure(self):
        sim = MatlabSimulation(MatlabSimConfig(n_samples=100_000, nperseg=5000))
        est = sim.make_estimator()
        serial = est.measure(lambda s, r: sim.bitstream(s, r), rng=31)
        batched = MeasurementEngine().measure(sim, est, rng=31)
        assert batched.noise_figure_db == pytest.approx(
            serial.noise_figure_db, abs=1e-9
        )
        assert batched.y == pytest.approx(serial.y, rel=1e-10)

    def test_run_batch_equals_repeated_measurement(self):
        bench = build_prototype_testbench(n_samples=2**15)
        est = bench.make_estimator()
        rep = RepeatedMeasurement(est, n_repeats=3)
        serial = rep.measure(bench.acquire_bitstream, rng=13)
        results = MeasurementEngine().run_batch(bench, est, 3, rng=13)
        for serial_nf, result in zip(serial.nf_values_db, results):
            assert result.noise_figure_db == pytest.approx(serial_nf, abs=1e-9)

    def test_batch_reproducible_across_engines(self):
        sim = MatlabSimulation(MatlabSimConfig(n_samples=60_000, nperseg=3000))
        est = sim.make_estimator()
        a = MeasurementEngine(block_segments=4).run_batch(sim, est, 2, rng=2)
        b = MeasurementEngine(block_segments=64).run_batch(sim, est, 2, rng=2)
        for ra, rb in zip(a, b):
            assert ra.noise_figure_db == pytest.approx(
                rb.noise_figure_db, abs=1e-9
            )
