"""Integration tests for the extension experiments (spot NF, production)."""

import pytest

from repro.experiments.production import run_production
from repro.experiments.spot_nf import run_spot_nf


class TestSpotNf:
    @pytest.fixture(scope="class")
    def result(self):
        return run_spot_nf(n_samples=2**18, seed=2005)

    def test_nf_decreases_with_frequency(self, result):
        linear = [r.measured_nf_db for r in result.rows]
        assert linear == sorted(linear, reverse=True)

    def test_corrected_path_tighter(self, result):
        assert (
            result.max_abs_corrected_error_db < result.max_abs_error_db
        )
        assert result.max_abs_corrected_error_db < 1.0

    def test_slope_tracks_analysis(self, result):
        # The measured NF(f) slope must be a substantial fraction of the
        # analytical slope (the flicker signature).
        assert result.slope_db > 0.5 * result.expected_slope_db


class TestProduction:
    @pytest.fixture(scope="class")
    def result(self):
        return run_production(n_devices=12, n_samples=2**17, seed=11)

    def test_counts_conserved(self, result):
        for row in result.rows:
            outcome = row.outcome
            assert (
                outcome.n_pass + outcome.n_fail + outcome.n_retest
                == result.n_devices
            )

    def test_escapes_monotone_in_guardband(self, result):
        assert result.escapes_decrease_with_guardband()

    def test_measured_tracks_true(self, result):
        import numpy as np

        true = np.asarray(result.true_nf_db)
        measured = np.asarray(result.measured_nf_db)
        # Correlation between true and measured NF across the lot: the
        # single-shot measurement sigma at this record length is a
        # substantial fraction of the lot spread, so demand a clear but
        # not perfect correlation.
        corr = np.corrcoef(true, measured)[0, 1]
        assert corr > 0.6

    def test_validation(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_production(n_devices=2)
        with pytest.raises(ConfigurationError):
            run_production(nf_spread_db=0.0)
