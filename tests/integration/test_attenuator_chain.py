"""Integration tests for the figure-4 attenuator-chain experiment."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.attenuator_chain import run_attenuator_chain


class TestAttenuatorChain:
    @pytest.fixture(scope="class")
    def result(self):
        return run_attenuator_chain(
            losses_db=(0.0, 6.0), n_samples=2**18, seed=21
        )

    def test_settings_agree(self, result):
        # Two independent single-shot measurements at this record length
        # each carry ~0.35 dB sigma.
        assert result.spread_db < 2.0

    def test_hot_temperature_tracks_attenuation(self, result):
        # 6 dB of attenuation quarters the excess temperature.
        t0, t6 = (r.t_hot_k for r in result.rows)
        excess0 = t0 - 290.0
        excess6 = t6 - 290.0
        assert excess6 == pytest.approx(excess0 / 10 ** 0.6, rel=1e-6)

    def test_enr_decreases_with_loss(self, result):
        enrs = [r.enr_db for r in result.rows]
        assert enrs == sorted(enrs, reverse=True)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            run_attenuator_chain(losses_db=())
