"""Integration tests for the ablation experiments."""

import pytest

from repro.experiments.fixedpoint_ablation import run_fixedpoint
from repro.experiments.record_length import run_record_length
from repro.experiments.robustness import run_robustness


class TestRecordLength:
    def test_scatter_shrinks_with_length(self):
        # 16x more samples must cut the scatter well below the short
        # record's (8 trials keep the std estimate itself usable).
        result = run_record_length(
            lengths=(2**15, 2**19), n_trials=8, seed=5
        )
        assert result.points[-1].nf_std_db < 0.6 * result.points[0].nf_std_db

    def test_means_near_expected(self):
        result = run_record_length(
            lengths=(2**17,), n_trials=6, seed=6
        )
        assert result.points[0].nf_mean_db == pytest.approx(
            result.expected_nf_db, abs=1.0
        )

    def test_validation(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_record_length(lengths=())
        with pytest.raises(ConfigurationError):
            run_record_length(lengths=(2**15,), n_trials=1)


class TestRobustness:
    @pytest.fixture(scope="class")
    def result(self):
        return run_robustness(n_samples=2**18, seed=7)

    def test_baseline_near_expected(self, result):
        # Single-acquisition scatter at this record length occasionally
        # exceeds 1 dB (line-power estimation noise; see the
        # record-length ablation), hence the 1.5 dB envelope.
        assert result.baseline_nf_db == pytest.approx(
            result.expected_nf_db, abs=1.5
        )

    def test_all_nonidealities_sub_db(self, result):
        for kind in ("offset", "input_noise", "hysteresis", "jitter"):
            assert result.worst_shift_db(kind) < 1.0, kind

    def test_larger_offset_larger_shift_trend(self, result):
        offsets = [p for p in result.points if p.kind == "offset"]
        assert abs(offsets[-1].shift_db) >= abs(offsets[0].shift_db) - 0.3


class TestFixedPoint:
    def test_all_configs_close_to_float(self):
        result = run_fixedpoint(n_samples=2**17, seed=8)
        assert result.worst_deviation_db() < 0.1

    def test_reference_config_is_exactly_floatlike(self):
        result = run_fixedpoint(
            specs=((24, 48),), n_samples=2**16, seed=9
        )
        assert abs(result.points[0].deviation_db) < 0.01
