"""Integration tests of the experiment harness: every paper table/figure
must regenerate with the paper's qualitative structure intact."""

import numpy as np
import pytest

from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9
from repro.experiments.fig10 import run_fig10
from repro.experiments.fig13 import run_fig13
from repro.experiments.gain_sensitivity import run_gain_sensitivity
from repro.experiments.matlab_sim import MatlabSimConfig, MatlabSimulation
from repro.experiments.resources import run_resources
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.uncertainty import run_uncertainty
from repro.experiments.vanvleck import run_vanvleck

# Reduced-size Matlab-sim config for fast tests (keeps 60 Hz on-bin).
FAST_SIM = MatlabSimConfig(n_samples=250_000, nperseg=5000)


class TestTable1:
    def test_rows_match_paper(self):
        result = run_table1()
        factors = [row.noise_factor for row in result.rows]
        assert factors == pytest.approx([1.0, 2.0, 10.0], rel=1e-4)


@pytest.fixture(scope="module")
def table2_full():
    """Table 2 at the paper's full record length (1e6 samples, FFT 1e4)."""
    return run_table2(seed=2005)


class TestTable2:
    def test_true_ratio_matches_paper_context(self):
        sim = MatlabSimulation(FAST_SIM)
        # (10000+2610)/(1000+2610) = 3.4931; the paper measured 3.4866.
        assert sim.true_power_ratio == pytest.approx(3.4931, abs=1e-3)

    def test_all_methods_recover_nf10(self, table2_full):
        for row in table2_full.rows:
            assert row.nf_db == pytest.approx(10.0, abs=0.5), row.method

    def test_onebit_error_within_paper_envelope(self, table2_full):
        # The paper reports ~2.5 % for the 1-bit method at this record
        # length.
        row = table2_full.row("onebit_psd_ratio_excluding_reference")
        assert abs(row.ratio_error_pct) < 3.0

    def test_analog_methods_tighter_than_onebit(self, table2_full):
        ms = abs(table2_full.row("mean_square_ratio").ratio_error_pct)
        assert ms < 1.0


class TestTable3:
    def test_paper_mode_reproduces_expected_column(self):
        result = run_table3(mode="paper", n_samples=2**17, seed=1)
        expected = [row.expected_nf_db for row in result.rows]
        assert expected == pytest.approx([3.7, 6.5, 10.1, 16.2], abs=0.05)

    def test_paper_mode_measured_within_2db(self):
        # The paper's own max absolute error envelope.
        result = run_table3(mode="paper", n_samples=2**18, seed=2005)
        assert result.max_abs_error_db < 2.0

    def test_measured_ordering_preserved(self):
        result = run_table3(mode="paper", n_samples=2**17, seed=3)
        measured = [row.measured_nf_db for row in result.rows]
        assert measured == sorted(measured)

    def test_datasheet_mode_runs_and_orders(self):
        result = run_table3(mode="datasheet", n_samples=2**17, seed=4)
        expected = [row.expected_nf_db for row in result.rows]
        assert expected == sorted(expected)

    def test_invalid_mode_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_table3(mode="magic")


class TestFig7:
    def test_reference_constant_and_ratio_correct(self):
        result = run_fig7(FAST_SIM, seed=7)
        assert result.reference_is_constant
        assert result.rms_ratio_squared == pytest.approx(3.4931, rel=0.02)

    def test_noise_exceeds_reference(self):
        # Section 5.1: noise amplitude >= reference amplitude.
        result = run_fig7(FAST_SIM, seed=7)
        assert result.cold.noise_rms > result.cold.reference_amplitude
        assert result.hot.noise_rms > result.hot.reference_amplitude

    def test_segments_exported(self):
        result = run_fig7(FAST_SIM, segment_samples=300, seed=7)
        assert result.hot.segment.shape == (300,)


class TestFig8:
    def test_floors_similar_lines_differ(self):
        result = run_fig8(FAST_SIM, seed=8)
        # Floors nearly equal (the +/-1 stream hides the level)...
        assert result.floor_ratio_hot_over_cold == pytest.approx(1.0, abs=0.1)
        # ...while the cold reference line is much larger.
        assert result.line_ratio_cold_over_hot > 2.0


class TestFig9:
    def test_normalization_separates_floors(self):
        result = run_fig9(FAST_SIM, seed=9)
        assert result.ratio_before == pytest.approx(1.0, abs=0.15)
        assert result.ratio_after == pytest.approx(
            result.true_power_ratio, rel=0.10
        )


class TestFig10:
    def test_window_is_accurate_extremes_are_not(self):
        result = run_fig10(seed=10)
        window_err = result.max_abs_error_in_window_pct()
        assert window_err < 10.0
        # Small amplitudes fail or err badly.
        small = [p for p in result.points if p.reference_ratio <= 0.05]
        assert all(p.failed or abs(p.error_pct) > window_err for p in small)


class TestFig13:
    def test_prototype_normalized_floors_give_nf(self):
        result = run_fig13(n_samples=2**17, seed=13)
        assert result.floor_ratio_after == pytest.approx(result.bist.y, rel=0.3)
        assert abs(result.nf_error_db) < 1.5


class TestGainSensitivity:
    def test_yfactor_immune_direct_tracks_drift(self):
        result = run_gain_sensitivity(
            drifts=(0.9, 1.0, 1.1), n_samples=2**16, seed=14
        )
        assert result.max_yfactor_error_db < 0.5
        assert result.max_direct_error_db > 0.6

    def test_analytic_matches_simulated_direct(self):
        result = run_gain_sensitivity(
            drifts=(0.8, 1.2), n_samples=2**16, seed=15
        )
        for p in result.points:
            assert p.direct_error_simulated_db == pytest.approx(
                p.direct_error_analytic_db, abs=0.4
            )


class TestUncertainty:
    def test_paper_p3db_claim(self):
        result = run_uncertainty(end_to_end_n_samples=2**16, seed=16)
        for row in result.rows:
            assert row.within_p3db
            assert row.nf_std_montecarlo_db == pytest.approx(
                row.sigma_nf_analytic_db, rel=0.15
            )

    def test_end_to_end_shift_negative_and_small(self):
        result = run_uncertainty(end_to_end_n_samples=2**17, seed=17)
        for row in result.end_to_end:
            assert -0.6 < row.bias_shift_db < 0.0


class TestResources:
    def test_memory_saving_is_12x(self):
        result = run_resources(n_samples=2**16, seed=18)
        assert result.memory_saving_vs_12bit == pytest.approx(12.0, rel=0.01)

    def test_report_time_budget(self):
        result = run_resources(n_samples=2**16, seed=18)
        assert result.report.total_test_time_s > 0
        assert result.report.dsp_time_s < result.report.acquisition_time_s * 10


class TestVanVleck:
    def test_runs_and_reports_both_paths(self):
        result = run_vanvleck(ratios=(0.2, 0.5), max_lag=2500, seed=19)
        assert len(result.points) == 2
        for p in result.points:
            assert p.error_linear_pct is not None
            assert p.error_corrected_pct is not None
