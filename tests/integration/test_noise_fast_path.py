"""Equivalence suite for the fast noise-synthesis layer.

Pins the three contracts of the noise-layer PR:

(a) ``rng_mode="compat"`` — the default — is **bit-identical** to the
    seed-serial acquisition everywhere the fast layer touched: the
    white-noise sources, the per-record acquisition loops and the
    engine/scheduler end to end.
(b) The popcount bit-domain Welch path matches the float detrend path
    to <= 1e-10 (scale-relative; detrended near-DC bins of both paths
    are numerical zeros).
(c) Pipelined (double-buffered) plan execution returns results
    bit-identical to sequential group execution, in task order.

Philox mode has no bit-compatibility claim; its contracts — determinism
per seed and statistical equivalence — are pinned here too.
"""

import numpy as np
import pytest

from repro.bitstream import PackedBitstream, PackedRecordBatch
from repro.digitizer.comparator import Comparator
from repro.digitizer.digitizer import OneBitDigitizer
from repro.digitizer.sampler import SampledLatch
from repro.dsp.psd import welch, welch_batch
from repro.engine import (
    MeasurementEngine,
    MeasurementScheduler,
    MeasurementTask,
)
from repro.experiments.matlab_sim import MatlabSimConfig, MatlabSimulation
from repro.instruments.testbench import build_prototype_testbench
from repro.signals.random import make_rng, spawn_rngs

SMALL = MatlabSimConfig(n_samples=60_000, nperseg=3_000)


def _mixed_tasks(seed, sims):
    rngs = spawn_rngs(seed, len(sims))
    return [
        MeasurementTask(sim, sim.make_estimator(), rng)
        for sim, rng in zip(sims, rngs)
    ]


# ----------------------------------------------------------------------
# (a) compat bit-identity
# ----------------------------------------------------------------------
class TestCompatBitIdentity:
    def test_packed_acquisition_matches_serial(self):
        sim = MatlabSimulation(SMALL)
        batch, rate = sim.acquire_bitstreams(
            ["hot", "cold"], spawn_rngs(2005, 2), packed=True,
            rng_mode="compat",
        )
        replay = spawn_rngs(2005, 2)
        for i, state in enumerate(["hot", "cold"]):
            serial = sim.bitstream(state, replay[i])
            assert np.array_equal(batch[i].unpack(), serial.samples)

    def test_compat_engine_equals_default_engine(self):
        sim = MatlabSimulation(SMALL)
        estimator = sim.make_estimator()
        default = MeasurementEngine().measure(sim, estimator, rng=2005)
        compat = MeasurementEngine(rng_mode="compat").measure(
            sim, estimator, rng=2005
        )
        assert compat.noise_figure_db == default.noise_figure_db
        assert compat.y == default.y

    def test_compat_engine_equals_seed_serial_measure(self):
        sim = MatlabSimulation(SMALL)
        estimator = sim.make_estimator()
        engine_nf = MeasurementEngine(rng_mode="compat").measure(
            sim, estimator, rng=2005
        )
        serial_nf = estimator.measure(sim.bitstream, rng=2005)
        assert engine_nf.noise_figure_db == serial_nf.noise_figure_db

    def test_testbench_compat_rows_bit_identical(self):
        bench = build_prototype_testbench(n_samples=2**14)
        rngs = spawn_rngs(7, 2)
        records, rate = bench.acquire_bitstreams(
            ["hot", "cold"], rngs, rng_mode="compat"
        )
        replay = spawn_rngs(7, 2)
        for i, state in enumerate(["hot", "cold"]):
            serial = bench.acquire_bitstream(state, replay[i])
            assert np.array_equal(records[i], serial.samples)

    def test_scheduler_compat_default_unchanged(self):
        sims = [MatlabSimulation(SMALL) for _ in range(3)]
        default = MeasurementScheduler().run(_mixed_tasks(11, sims))
        compat = MeasurementScheduler(rng_mode="compat").run(
            _mixed_tasks(11, sims)
        )
        assert [r.noise_figure_db for r in default] == [
            r.noise_figure_db for r in compat
        ]


# ----------------------------------------------------------------------
# (b) popcount bit-domain Welch
# ----------------------------------------------------------------------
def _packed_record(n=100_000, bias=0.48, seed=1):
    rng = np.random.default_rng(seed)
    samples = np.where(rng.random(n) < bias, 1.0, -1.0)
    return samples, PackedBitstream.pack(samples, 10_000.0)


def _assert_psd_close(psd_a, psd_b):
    """<= 1e-10 scale-relative: detrended near-DC bins are numerical
    zeros in both paths, so per-bin relative error is meaningless
    there."""
    scale = np.abs(psd_b).max()
    assert np.abs(psd_a - psd_b).max() <= 1e-10 * scale


class TestBitDomainWelch:
    @pytest.mark.parametrize("window", ["hann", "hamming", "rectangular"])
    @pytest.mark.parametrize("overlap", [0.0, 0.5, 0.75])
    def test_matches_float_path(self, window, overlap):
        samples, packed = _packed_record()
        float_spec = welch(
            samples, nperseg=8_192, sample_rate=10_000.0, window=window,
            overlap=overlap,
        )
        bit_spec = welch(
            packed, nperseg=8_192, window=window, overlap=overlap,
            bit_domain=True,
        )
        _assert_psd_close(bit_spec.psd, float_spec.psd)

    def test_paper_grid(self):
        samples, packed = _packed_record(n=500_000)
        float_spec = welch(samples, nperseg=10_000, sample_rate=10_000.0)
        bit_spec = welch(packed, nperseg=10_000, bit_domain=True)
        _assert_psd_close(bit_spec.psd, float_spec.psd)

    def test_misaligned_grid_falls_back_bit_exact(self):
        _, packed = _packed_record()
        exact = welch(packed, nperseg=8_191)
        fallback = welch(packed, nperseg=8_191, bit_domain=True)
        assert np.array_equal(exact.psd, fallback.psd)

    def test_detrend_off_ignores_bit_domain(self):
        _, packed = _packed_record()
        exact = welch(packed, nperseg=8_192, detrend=False)
        bit = welch(packed, nperseg=8_192, detrend=False, bit_domain=True)
        assert np.array_equal(exact.psd, bit.psd)

    def test_welch_batch_bit_domain(self):
        rng = np.random.default_rng(3)
        records = np.where(rng.random((4, 100_000)) < 0.5, 1.0, -1.0)
        packed = PackedRecordBatch.pack(records, 10_000.0)
        float_spec = welch_batch(records, nperseg=8_192, sample_rate=10_000.0)
        bit_spec = welch_batch(packed, nperseg=8_192, bit_domain=True)
        for r in range(4):
            _assert_psd_close(bit_spec.psd[r], float_spec.psd[r])

    def test_default_packed_path_still_bit_identical(self):
        samples, packed = _packed_record()
        float_spec = welch(samples, nperseg=8_192, sample_rate=10_000.0)
        packed_spec = welch(packed, nperseg=8_192)
        assert np.array_equal(packed_spec.psd, float_spec.psd)

    def test_philox_engine_nf_close_to_exact_welch(self):
        # The engine ties bit_domain to philox mode; the analysis-side
        # difference alone must be far below measurement resolution.
        sim = MatlabSimulation(SMALL)
        estimator = sim.make_estimator()
        batch, rate = sim.acquire_bitstreams(
            ["hot", "cold"], spawn_rngs(5, 2), packed=True,
            rng_mode="philox",
        )
        exact = estimator.estimate_from_spectra(
            welch(batch[0], nperseg=SMALL.nperseg),
            welch(batch[1], nperseg=SMALL.nperseg),
        )
        bit = estimator.estimate_from_spectra(
            welch(batch[0], nperseg=SMALL.nperseg, bit_domain=True),
            welch(batch[1], nperseg=SMALL.nperseg, bit_domain=True),
        )
        assert abs(bit.noise_figure_db - exact.noise_figure_db) < 1e-9


# ----------------------------------------------------------------------
# (c) pipelined scheduler
# ----------------------------------------------------------------------
class TestPipelinedScheduler:
    @pytest.fixture(scope="class")
    def sims(self):
        return [MatlabSimulation(SMALL) for _ in range(4)] + [
            MatlabSimulation(
                MatlabSimConfig(n_samples=120_000, nperseg=3_000)
            )
            for _ in range(4)
        ]

    def test_pipelined_bit_identical_in_task_order(self, sims):
        scheduler = MeasurementScheduler()
        sequential = scheduler.run(_mixed_tasks(11, sims), pipeline=False)
        pipelined = scheduler.run(_mixed_tasks(11, sims), pipeline=True)
        assert [r.noise_figure_db for r in sequential] == [
            r.noise_figure_db for r in pipelined
        ]
        assert [r.y for r in sequential] == [
            r.y for r in pipelined
        ]

    def test_pipelined_with_fallback_groups(self, sims):
        # A lot whose plan mixes batched groups with singleton
        # fallbacks must scatter results back in task order.
        lot = sims[:3] + [
            MatlabSimulation(MatlabSimConfig(n_samples=30_000, nperseg=1_000))
        ]
        scheduler = MeasurementScheduler()
        sequential = scheduler.run(_mixed_tasks(13, lot), pipeline=False)
        pipelined = scheduler.run(_mixed_tasks(13, lot), pipeline=True)
        assert [r.noise_figure_db for r in sequential] == [
            r.noise_figure_db for r in pipelined
        ]

    def test_auto_stays_sequential_on_vectorized_backend(self, sims):
        plan = MeasurementScheduler().plan(_mixed_tasks(11, sims))
        assert not plan._resolve_pipeline(MeasurementEngine(), "auto")

    def test_auto_pipelines_on_process_backend(self, sims):
        plan = MeasurementScheduler().plan(_mixed_tasks(11, sims))
        engine = MeasurementEngine(backend="process")
        try:
            assert plan._resolve_pipeline(engine, "auto")
        finally:
            engine.close()

    def test_process_backend_pipelined_equals_sequential(self, sims):
        small = sims[:2] + sims[4:6]
        with MeasurementScheduler(backend="process", max_workers=2) as ps:
            pipelined = ps.run(_mixed_tasks(11, small))  # auto => pipelined
        sequential = MeasurementScheduler().run(
            _mixed_tasks(11, small), pipeline=False
        )
        assert [r.noise_figure_db for r in sequential] == [
            r.noise_figure_db for r in pipelined
        ]


# ----------------------------------------------------------------------
# philox mode contracts
# ----------------------------------------------------------------------
class TestPhiloxMode:
    def test_deterministic_per_seed(self):
        sim = MatlabSimulation(SMALL)
        estimator = sim.make_estimator()
        engine = MeasurementEngine(rng_mode="philox")
        first = engine.measure(sim, estimator, rng=2005)
        second = engine.measure(sim, estimator, rng=2005)
        assert first.noise_figure_db == second.noise_figure_db

    def test_direct_synthesis_statistics_match_compat(self):
        config = MatlabSimConfig(n_samples=400_000, nperseg=10_000)
        sim = MatlabSimulation(config)
        compat, _ = sim.acquire_bitstreams(
            ["hot", "cold"], spawn_rngs(1, 2), packed=True
        )
        philox, _ = sim.acquire_bitstreams(
            ["hot", "cold"], spawn_rngs(1, 2), packed=True,
            rng_mode="philox",
        )
        n = config.n_samples
        for i in range(2):
            frac_compat = np.unpackbits(compat.words[i], count=n).mean()
            frac_philox = np.unpackbits(philox.words[i], count=n).mean()
            # iid bits: fraction-of-ones sigma is ~0.5/sqrt(n) ~ 8e-4
            assert abs(frac_philox - frac_compat) < 5e-3

    def test_direct_synthesis_provenance(self):
        sim = MatlabSimulation(SMALL)
        batch, _ = sim.acquire_bitstreams(
            ["hot", "cold"], spawn_rngs(1, 2), packed=True,
            rng_mode="philox",
        )
        assert batch.provenance[0].rng_mode == "philox"
        assert batch.provenance[0].state == "hot"
        assert batch.provenance[1].state == "cold"

    def test_digitized_philox_records_carry_philox_provenance(self):
        # Records whose *analog* floats came from counter streams but
        # that pass through the regular digitizer (hysteresis fallback,
        # testbench chain) must not claim compat provenance.
        dig = OneBitDigitizer(comparator=Comparator(hysteresis_v=0.02))
        sim = MatlabSimulation(SMALL)
        batch, _ = sim.acquire_bitstreams(
            ["hot", "cold"], spawn_rngs(3, 2), digitizer=dig, packed=True,
            rng_mode="philox",
        )
        assert all(p.rng_mode == "philox" for p in batch.provenance)
        compat, _ = sim.acquire_bitstreams(
            ["hot", "cold"], spawn_rngs(3, 2), digitizer=dig, packed=True
        )
        assert all(p.rng_mode == "compat" for p in compat.provenance)

    def test_comparator_offset_and_noise_fold_in(self):
        # Offset shifts the Bernoulli probability, comparator noise
        # widens sigma — both exactly.  Compare bit fractions against
        # the compat digitizer with the same non-idealities.
        dig = OneBitDigitizer(
            comparator=Comparator(offset_v=0.05, input_noise_rms=0.1)
        )
        config = MatlabSimConfig(n_samples=400_000, nperseg=10_000)
        sim = MatlabSimulation(config)
        compat, _ = sim.acquire_bitstreams(
            ["cold", "cold"], spawn_rngs(3, 2), digitizer=dig, packed=True
        )
        philox, _ = sim.acquire_bitstreams(
            ["cold", "cold"], spawn_rngs(3, 2), digitizer=dig, packed=True,
            rng_mode="philox",
        )
        n = config.n_samples
        frac_compat = np.unpackbits(compat.words, axis=-1, count=n).mean()
        frac_philox = np.unpackbits(philox.words, axis=-1, count=n).mean()
        assert frac_compat > 0.55  # the offset visibly biases the bits
        assert abs(frac_philox - frac_compat) < 5e-3

    def test_clock_divider_decimates(self):
        dig = OneBitDigitizer(sampler=SampledLatch(divider=4))
        sim = MatlabSimulation(SMALL)
        batch, rate = sim.acquire_bitstreams(
            ["hot", "cold"], spawn_rngs(3, 2), digitizer=dig, packed=True,
            rng_mode="philox",
        )
        assert batch.n_samples == (SMALL.n_samples + 3) // 4
        assert rate == SMALL.sample_rate_hz / 4

    def test_hysteresis_falls_back_to_noise_fill(self):
        # Outside the Bernoulli model the philox path must still
        # produce valid (digitized) records, via counter-based noise
        # fills plus the regular comparator.
        dig = OneBitDigitizer(comparator=Comparator(hysteresis_v=0.02))
        sim = MatlabSimulation(SMALL)
        batch, _ = sim.acquire_bitstreams(
            ["hot", "cold"], spawn_rngs(3, 2), digitizer=dig, packed=True,
            rng_mode="philox",
        )
        assert batch.n_samples == SMALL.n_samples
        again, _ = sim.acquire_bitstreams(
            ["hot", "cold"], spawn_rngs(3, 2), digitizer=dig, packed=True,
            rng_mode="philox",
        )
        assert np.array_equal(batch.words, again.words)

    def test_nf_statistically_equivalent(self):
        sim = MatlabSimulation(MatlabSimConfig(n_samples=200_000, nperseg=8_000))
        estimator = sim.make_estimator()
        compat_engine = MeasurementEngine()
        philox_engine = MeasurementEngine(rng_mode="philox")
        compat = [
            compat_engine.measure(sim, estimator, rng=seed).noise_figure_db
            for seed in range(5)
        ]
        philox = [
            philox_engine.measure(sim, estimator, rng=seed).noise_figure_db
            for seed in range(5)
        ]
        # Both estimate the same 10 dB DUT; means agree within scatter.
        assert abs(np.mean(compat) - np.mean(philox)) < 0.75

    def test_testbench_philox_chain(self):
        bench = build_prototype_testbench(n_samples=2**14)
        records, rate = bench.acquire_bitstreams(
            ["hot", "cold"], spawn_rngs(7, 2), rng_mode="philox"
        )
        assert records.shape == (2, 2**14)
        assert set(np.unique(records)) <= {-1.0, 1.0}
        again, _ = bench.acquire_bitstreams(
            ["hot", "cold"], spawn_rngs(7, 2), rng_mode="philox"
        )
        assert np.array_equal(records, again)
