"""Integration: store-backed execution equals cold execution bit for bit.

The acceptance bars of the store subsystem:

* a cache hit returns exactly what a recompute would (``measure``);
* stored pooled records short-circuit the acquisition but not the
  answer;
* a resumed plan recomputes *only* the missing tasks;
* a production retest replan measures only the failed / guard-band
  devices and its merged outcome equals a full re-screen.
"""

import numpy as np
import pytest

from repro.engine import (
    MeasurementEngine,
    MeasurementScheduler,
    MeasurementTask,
    ResultStore,
    plan_measurements,
    plan_retest,
)
from repro.errors import ConfigurationError
from repro.experiments.matlab_sim import MatlabSimConfig, MatlabSimulation
from repro.experiments.production import (
    _draw_lot,
    _lot_tasks,
    _per_device,
    retest_rngs_for,
    run_production,
    run_production_retest,
)
from repro.experiments.record_length import run_record_length
from repro.experiments.robustness import run_robustness
from repro.signals.random import spawn_rngs

from tests.unit.test_store import assert_results_identical

N_SAMPLES = 20_000
NPERSEG = 1000


def _sim():
    return MatlabSimulation(
        MatlabSimConfig(n_samples=N_SAMPLES, nperseg=NPERSEG)
    )


class CountingSim(MatlabSimulation):
    """A simulation that counts how many records it acquires.

    The counter is private on purpose: public attributes are part of a
    bench's provenance fingerprint (as they should be), so a public
    counter would change the bench's identity with every acquisition.
    """

    def __init__(self, config=None):
        super().__init__(config)
        self._acquired = 0

    @property
    def acquired_records(self) -> int:
        return self._acquired

    # Signatures mirror MatlabSimulation exactly: the engine sniffs
    # them for the packed= / rng_mode= keywords, and a **kwargs
    # catch-all would silently demote acquisition to the float path.
    def acquire_bitstreams(
        self, states, rngs, digitizer=None, packed=False, rng_mode="compat"
    ):
        self._acquired += len(list(states))
        return super().acquire_bitstreams(
            states, rngs, digitizer=digitizer, packed=packed, rng_mode=rng_mode
        )

    def acquire_analog_batch(
        self, states, rngs, digitizer=None, rng_mode="compat"
    ):
        # The multi-device batch path (planned groups) enters here; the
        # packed acquire_bitstreams path never does, so no double count.
        self._acquired += len(list(states))
        return super().acquire_analog_batch(
            states, rngs, digitizer=digitizer, rng_mode=rng_mode
        )


class TestEngineCache:
    def test_hit_is_bit_identical_to_recompute(self, tmp_path):
        sim = _sim()
        estimator = sim.make_estimator()
        store = ResultStore(tmp_path / "s")
        cached_engine = MeasurementEngine(store=store)
        first = cached_engine.measure(sim, estimator, rng=7)
        hit = cached_engine.measure(sim, estimator, rng=7)
        cold = MeasurementEngine().measure(sim, estimator, rng=7)
        assert_results_identical(first, cold)
        assert_results_identical(hit, cold)

    def test_hit_skips_acquisition(self, tmp_path):
        sim = CountingSim(MatlabSimConfig(n_samples=N_SAMPLES, nperseg=NPERSEG))
        estimator = sim.make_estimator()
        engine = MeasurementEngine(store=ResultStore(tmp_path / "s"))
        engine.measure(sim, estimator, rng=7)
        assert sim.acquired_records == 2
        engine.measure(sim, estimator, rng=7)
        assert sim.acquired_records == 2  # warm: nothing acquired

    def test_pooled_records_reused_without_acquisition(self, tmp_path):
        sim = CountingSim(MatlabSimConfig(n_samples=N_SAMPLES, nperseg=NPERSEG))
        estimator = sim.make_estimator()
        store = ResultStore(tmp_path / "s")
        engine = MeasurementEngine(store=store, store_records=True)
        cold = engine.measure(sim, estimator, rng=7)
        key = engine.task_key(sim, estimator, 7)
        assert store.has_records(key)
        # Drop the result; the records alone must reproduce it without
        # touching the bench.
        store._path("results", key).unlink()
        acquired_before = sim.acquired_records
        replayed = engine.measure(sim, estimator, rng=7)
        assert sim.acquired_records == acquired_before
        assert_results_identical(replayed, cold)
        assert store.has_result(key)  # re-derived result was persisted

    def test_cache_read_mode_never_writes(self, tmp_path):
        sim = _sim()
        estimator = sim.make_estimator()
        store = ResultStore(tmp_path / "s")
        engine = MeasurementEngine(store=store, cache="read")
        engine.measure(sim, estimator, rng=7)
        assert len(store.index()) == 0

    def test_cache_write_mode_never_reads(self, tmp_path):
        sim = CountingSim(MatlabSimConfig(n_samples=N_SAMPLES, nperseg=NPERSEG))
        estimator = sim.make_estimator()
        store = ResultStore(tmp_path / "s")
        engine = MeasurementEngine(store=store, cache="write")
        engine.measure(sim, estimator, rng=7)
        engine.measure(sim, estimator, rng=7)
        assert sim.acquired_records == 4  # both calls measured

    def test_unseeded_measurement_bypasses_store(self, tmp_path):
        sim = _sim()
        estimator = sim.make_estimator()
        store = ResultStore(tmp_path / "s")
        MeasurementEngine(store=store).measure(sim, estimator, rng=None)
        assert len(store.index()) == 0

    def test_invalid_cache_mode_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            MeasurementEngine(
                store=ResultStore(tmp_path / "s"), cache="sometimes"
            )

    def test_store_must_be_a_result_store(self):
        with pytest.raises(ConfigurationError):
            MeasurementEngine(store="/not/a/store")


class TestPlanResume:
    def _tasks(self, sims, n=6):
        # Integer seeds: a task's key must be recomputable when the
        # plan is replayed, and generator objects are single-use (their
        # lineage advances as they spawn — by design).
        return [
            MeasurementTask(sims[i], sims[i].make_estimator(), 100 + i)
            for i in range(n)
        ]

    def test_plan_persists_and_resume_recomputes_only_missing(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        n = 6
        sims = [
            CountingSim(MatlabSimConfig(n_samples=N_SAMPLES, nperseg=NPERSEG))
            for _ in range(n)
        ]
        tasks = self._tasks(sims, n)
        engine = MeasurementEngine(store=store)
        cold = plan_measurements(tasks).run(engine)
        assert sum(s.acquired_records for s in sims) == 2 * n
        # Simulate an interruption: drop half the stored results.
        keys = [engine.task_key(t.source, t.estimator, t.rng) for t in tasks]
        dropped = [1, 3, 4]
        for i in dropped:
            store._path("results", keys[i]).unlink()
        resumed = plan_measurements(tasks).run(engine, resume=True)
        assert sum(s.acquired_records for s in sims) == 2 * (n + len(dropped))
        for i in range(n):
            assert_results_identical(resumed[i], cold[i])
        # The recomputed tasks were re-persisted as their group ran.
        assert all(store.has_result(k) for k in keys)

    def test_fully_warm_resume_acquires_nothing(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        sims = [
            CountingSim(MatlabSimConfig(n_samples=N_SAMPLES, nperseg=NPERSEG))
            for _ in range(4)
        ]
        tasks = self._tasks(sims, 4)
        engine = MeasurementEngine(store=store)
        plan_measurements(tasks).run(engine)
        acquired = sum(s.acquired_records for s in sims)
        again = plan_measurements(tasks).run(engine, resume=True)
        assert sum(s.acquired_records for s in sims) == acquired
        assert len(again) == 4 and all(r is not None for r in again)

    def test_resume_without_store_rejected(self):
        tasks = self._tasks([_sim() for _ in range(4)], 4)
        with pytest.raises(ConfigurationError):
            plan_measurements(tasks).run(MeasurementEngine(), resume=True)

    def test_scheduler_run_resume_passthrough(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        with MeasurementScheduler(store=store) as sched:
            tasks = self._tasks([_sim() for _ in range(4)], 4)
            cold = sched.run(tasks)
            warm = sched.run(tasks, resume=True)
            for a, b in zip(cold, warm):
                assert_results_identical(a, b)


class TestRetest:
    KW = dict(
        limit_db=8.0,
        nf_spread_db=1.5,
        n_devices=6,
        n_samples=2**14,
        nperseg=2048,
        seed=2005,
    )

    def test_plan_retest_covers_only_failures(self):
        sims = [_sim() for _ in range(4)]
        rngs = spawn_rngs(3, 4)
        tasks = [
            MeasurementTask(s, s.make_estimator(), r)
            for s, r in zip(sims, rngs)
        ]
        plan = plan_retest(tasks, ["pass", "fail", "retest", "pass"])
        covered = sorted(i for g in plan.groups for i in g.indices)
        assert covered == [1, 2]
        results = plan.run(MeasurementEngine())
        assert results[0] is None and results[3] is None
        assert results[1] is not None and results[2] is not None

    def test_plan_retest_validates_inputs(self):
        sim = _sim()
        tasks = [MeasurementTask(sim, sim.make_estimator(), 1)]
        with pytest.raises(ConfigurationError):
            plan_retest(tasks, ["pass", "fail"])
        with pytest.raises(ConfigurationError):
            plan_retest(tasks, ["maybe"])
        with pytest.raises(ConfigurationError):
            plan_retest(tasks, [3.5])
        with pytest.raises(ConfigurationError):
            plan_retest(tasks, ["fail"], retest_rngs=[1, 2])

    def test_merged_outcome_equals_full_rescreen(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        with MeasurementScheduler(store=store) as sched:
            retest = run_production_retest(
                **self.KW, retest_guardband_sigmas=1.0, scheduler=sched
            )
        assert 0 < retest.n_retested < self.KW["n_devices"]
        # The reference: a cold full re-screen where retested devices
        # use their retest generators and everyone else the original.
        n = self.KW["n_devices"]
        true_values, device_rngs = _draw_lot(
            self.KW["limit_db"], self.KW["nf_spread_db"], n, self.KW["seed"]
        )
        tasks = _lot_tasks(
            true_values,
            _per_device(self.KW["n_samples"], n, "n_samples"),
            _per_device(self.KW["nperseg"], n, "nperseg"),
            device_rngs,
        )
        retest_rngs = retest_rngs_for(self.KW["seed"], n)
        full_tasks = [
            MeasurementTask(
                t.source,
                t.estimator,
                retest_rngs[i] if i in retest.retest_indices else t.rng,
            )
            for i, t in enumerate(tasks)
        ]
        full = plan_measurements(full_tasks).run(MeasurementEngine())
        full_values = [float(r.noise_figure_db) for r in full]
        assert full_values == retest.merged_nf_db

    def test_second_retest_reads_outcome_from_store(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        with MeasurementScheduler(store=store) as sched:
            first = run_production_retest(
                **self.KW, retest_guardband_sigmas=1.0, scheduler=sched
            )
            assert not first.initial_from_store
        with MeasurementScheduler(store=ResultStore(tmp_path / "s")) as sched:
            second = run_production_retest(
                **self.KW, retest_guardband_sigmas=1.0, scheduler=sched
            )
        assert second.initial_from_store
        assert second.merged_nf_db == first.merged_nf_db
        assert second.retest_indices == first.retest_indices

    def test_retest_without_store_still_works(self):
        retest = run_production_retest(**self.KW, retest_guardband_sigmas=1.0)
        assert not retest.initial_from_store
        assert retest.n_retested >= 0
        assert len(retest.merged_nf_db) == self.KW["n_devices"]


class TestExperimentResume:
    def test_production_resume_identical(self, tmp_path):
        kw = dict(
            n_devices=6, n_samples=2**14, nperseg=2048, seed=2005
        )
        with MeasurementScheduler(store=ResultStore(tmp_path / "s")) as sched:
            cold = run_production(**kw, scheduler=sched, resume=True)
        with MeasurementScheduler(store=ResultStore(tmp_path / "s")) as sched:
            warm = run_production(**kw, scheduler=sched, resume=True)
        assert warm.measured_nf_db == cold.measured_nf_db
        baseline = run_production(**kw)
        assert baseline.measured_nf_db == cold.measured_nf_db

    def test_record_length_resume_identical(self, tmp_path):
        kw = dict(lengths=(2**13, 2**14), n_trials=2, seed=2005)
        with MeasurementScheduler(store=ResultStore(tmp_path / "s")) as sched:
            cold = run_record_length(**kw, scheduler=sched)
        with MeasurementScheduler(store=ResultStore(tmp_path / "s")) as sched:
            warm = run_record_length(**kw, scheduler=sched, resume=True)
        assert [p.nf_mean_db for p in warm.points] == [
            p.nf_mean_db for p in cold.points
        ]

    def test_robustness_resume_identical(self, tmp_path):
        kw = dict(
            n_samples=2**14,
            seed=2005,
            offset_levels=(0.05,),
            noise_levels=(0.05,),
            hysteresis_levels=(0.05,),
            jitter_levels=(0.5,),
        )
        with MeasurementScheduler(store=ResultStore(tmp_path / "s")) as sched:
            cold = run_robustness(**kw, scheduler=sched)
        with MeasurementScheduler(store=ResultStore(tmp_path / "s")) as sched:
            warm = run_robustness(**kw, scheduler=sched, resume=True)
        assert warm.baseline_nf_db == cold.baseline_nf_db
        assert [p.nf_db for p in warm.points] == [
            p.nf_db for p in cold.points
        ]


class TestReviewRegressions:
    def test_cache_hit_preserves_generator_lineage(self, tmp_path):
        # A caller reusing one generator across two measure() calls must
        # see the same results whether the first call hit the store or
        # measured live (the hit path consumes the same spawn lineage).
        store = ResultStore(tmp_path / "s")
        sim = _sim()
        estimator = sim.make_estimator()
        engine = MeasurementEngine(store=store)

        gen_cold = np.random.default_rng(5)
        first_cold = engine.measure(sim, estimator, rng=gen_cold)
        second_cold = engine.measure(sim, estimator, rng=gen_cold)

        gen_warm = np.random.default_rng(5)
        first_warm = engine.measure(sim, estimator, rng=gen_warm)
        second_warm = engine.measure(sim, estimator, rng=gen_warm)
        assert_results_identical(first_warm, first_cold)
        assert_results_identical(second_warm, second_cold)

    def test_retest_rejects_generator_seed(self):
        with pytest.raises(ConfigurationError):
            run_production_retest(
                n_devices=4,
                n_samples=2**13,
                nperseg=1024,
                seed=np.random.default_rng(7),
            )

    def test_outcome_respects_cache_modes(self, tmp_path):
        kw = dict(n_devices=4, n_samples=2**13, nperseg=1024, seed=2005)
        # read-only engine: a "frozen" store is never written
        store = ResultStore(tmp_path / "frozen")
        with MeasurementScheduler(store=store, cache="read") as sched:
            run_production(**kw, scheduler=sched)
        assert len(store.index()) == 0
        # write-only engine: outcomes are recorded but never trusted
        store = ResultStore(tmp_path / "w")
        with MeasurementScheduler(store=store, cache="write") as sched:
            run_production(**kw, scheduler=sched)
            before = len(store.index().by_kind("outcomes"))
            retest = run_production_retest(
                **kw, retest_guardband_sigmas=1.0, scheduler=sched
            )
        assert before == 1
        assert not retest.initial_from_store


class TestWorkerDirectWrites:
    """PR 8: pool workers publish straight into their shard.

    The transport must be invisible on disk — worker-direct payloads
    are bit-identical to the parent-funneled writes of a serial engine,
    and the persistent index stays coherent under the multi-process
    write fan-out.
    """

    N = 8

    def _tasks(self):
        true_values, device_rngs = _draw_lot(8.0, 2.0, self.N, 7)
        return _lot_tasks(
            true_values, [2**14] * self.N, [2048] * self.N, device_rngs
        )

    def test_direct_writes_bit_identical_to_parent_funneled(self, tmp_path):
        funneled = ResultStore(tmp_path / "funneled")
        reference = plan_measurements(self._tasks()).run(
            MeasurementEngine(store=funneled)
        )

        direct = ResultStore(tmp_path / "direct")
        with MeasurementScheduler(
            backend="process", max_workers=2, store=direct
        ) as sched:
            assert sched.pool.store_root == str(direct.root)
            results = sched.run(self._tasks())

        for a, b in zip(reference, results):
            assert_results_identical(a, b)
        walk = funneled.index()
        assert len(walk) == self.N
        assert len(direct.index()) == self.N
        for entry in walk:
            mirrored = direct.read_payload_bytes(entry.kind, entry.key)
            assert mirrored == entry.read_bytes()
        assert direct.verify_index()["consistent"]

    def test_production_process_backend_persists_devices(self, tmp_path):
        # Regression: a store-backed homogeneous lot on the process
        # backend used to take the map_sweep path, whose workers
        # rebuild benches out of the provenance keys' reach — only the
        # outcome manifest persisted, never the per-device results.  A
        # write-capable store must force the planned path.
        from repro.experiments.production import run_production

        store = ResultStore(tmp_path / "lot")
        with MeasurementScheduler(
            backend="process", max_workers=2, store=store
        ) as sched:
            run_production(
                n_devices=4,
                n_samples=2**14,
                nperseg=2048,
                seed=99,
                scheduler=sched,
            )
        walk = store.index()
        assert len(walk.by_kind("results")) == 4
        assert len(walk.by_kind("outcomes")) == 1
        assert store.verify_index()["consistent"]

    def test_cache_budget_keeps_store_bounded(self, tmp_path):
        store = ResultStore(tmp_path / "budget")
        one = ResultStore(tmp_path / "one")
        tasks = self._tasks()
        plan_measurements(tasks[:1]).run(MeasurementEngine(store=one))
        per_entry = one.index().entries[0].nbytes
        budget = int(2.5 * per_entry)
        with MeasurementScheduler(
            store=store, cache_budget_bytes=budget
        ) as sched:
            sched.run(self._tasks())
        assert store.approx_total_bytes() <= budget
        assert 0 < len(store.index()) < self.N
        assert store.verify_index()["consistent"]

    def test_scheduler_rejects_engine_plus_budget(self):
        with pytest.raises(ConfigurationError):
            MeasurementScheduler(
                engine=MeasurementEngine(), cache_budget_bytes=10
            )

    def test_bad_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            MeasurementEngine(cache_budget_bytes=0)
