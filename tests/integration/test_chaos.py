"""Integration: the flagship robustness guarantees.

Two acceptance bars for the fault-tolerant execution stack:

* a production screen run under injected transient faults — worker
  crashes, task exceptions, store truncation/corruption, shm publish
  failures — retries/quarantines its way to a population outcome
  bit-identical to the fault-free screen;
* a screen SIGKILLed mid-lot leaves a crash-consistent store, and a
  ``resume=True`` rerun measures only the missing devices and converges
  to the same outcome as an uninterrupted run.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.engine import (
    MeasurementScheduler,
    ResultStore,
    RetryPolicy,
)
from repro.experiments.production import run_production
from repro.faults import inject, resolve_plan

# Fast backoff so injected retries do not dominate wall-clock.
FAST_RETRY = RetryPolicy(backoff_base_s=0.01, backoff_max_s=0.05)


class TestChaosIdentity:
    """Injected transient faults never change the answer."""

    KW = dict(n_devices=8, n_samples=2**14, seed=2005, report=True)

    def test_screen_under_transient_faults_is_bit_identical(self, tmp_path):
        with MeasurementScheduler(
            backend="process", max_workers=4, retry=FAST_RETRY
        ) as sched:
            reference = run_production(scheduler=sched, **self.KW)
        assert reference.run_report.ok

        plan = resolve_plan("transient", seed=3)
        store = ResultStore(tmp_path / "chaos")
        with inject(plan) as injector:
            with MeasurementScheduler(
                backend="process",
                max_workers=4,
                store=store,
                retry=FAST_RETRY,
            ) as sched:
                faulted = run_production(scheduler=sched, **self.KW)
                # Second pass over the damaged store: corrupted entries
                # quarantine on read and recompute.
                resumed = run_production(
                    scheduler=sched, resume=True, **self.KW
                )

        # The flagship guarantee: same lot, bit for bit.
        for run in (faulted, resumed):
            assert run.measured_nf_db == reference.measured_nf_db
            assert run.true_nf_db == reference.true_nf_db
            for got, want in zip(run.rows, reference.rows):
                assert got.outcome == want.outcome

        # Faults actually fired, and the reports account for every one.
        assert len(injector.log) > 0
        reported = sum(faulted.run_report.injections.values()) + sum(
            resumed.run_report.injections.values()
        )
        assert reported == len(injector.log)
        # Worker-side faults show up as retries; none escaped.
        task_faults = sum(
            1 for r in injector.log
            if r.site in ("worker_crash", "task_exception")
        )
        total_retries = (
            faulted.run_report.retries + resumed.run_report.retries
        )
        assert total_retries >= task_faults
        assert faulted.run_report.ok and resumed.run_report.ok

        # Store faults surfaced as read-side quarantines on the resume
        # pass, which then recomputed only what was damaged.
        if any(r.site.startswith("store_") for r in injector.log):
            assert len(store.quarantine_log) > 0
        assert resumed.run_report.cached_tasks > 0


CHILD_SCRIPT = """\
import sys
from repro.engine import MeasurementScheduler, ResultStore
from repro.experiments.production import run_production

with MeasurementScheduler(store=ResultStore(sys.argv[1])) as sched:
    run_production(
        n_devices=9,
        n_samples=2**18,
        nperseg=[8192, 4096, 2048] * 3,
        seed=2005,
        scheduler=sched,
        resume=True,
    )
"""


class TestCrashConsistentResume:
    """SIGKILL mid-screen, resume, converge."""

    KW = dict(
        n_devices=9,
        n_samples=2**18,
        nperseg=[8192, 4096, 2048] * 3,
        seed=2005,
    )

    def _stored_results(self, root: Path):
        return list(root.glob("results/*/*.npz"))

    def test_sigkill_mid_lot_then_resume_matches_uninterrupted(
        self, tmp_path
    ):
        store_dir = tmp_path / "killed"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        child = subprocess.Popen(
            [sys.executable, "-c", CHILD_SCRIPT, str(store_dir)],
            env=env,
            cwd=Path(__file__).resolve().parents[2],
        )
        try:
            # The mixed-nperseg lot plans into three groups, each
            # committed to the store as it completes.  Kill the child
            # the moment the first group's results land.
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if child.poll() is not None:
                    pytest.fail(
                        "screen finished before it could be killed; "
                        "grow the lot"
                    )
                if len(self._stored_results(store_dir)) >= 2:
                    break
                time.sleep(0.005)
            else:
                pytest.fail("no results appeared before the deadline")
            child.send_signal(signal.SIGKILL)
            child.wait(timeout=30.0)
        finally:
            if child.poll() is None:  # pragma: no cover - cleanup path
                child.kill()
                child.wait()
        assert child.returncode == -signal.SIGKILL

        # Crash-consistent: some results persisted, not all.
        stored = len(self._stored_results(store_dir))
        assert 0 < stored < self.KW["n_devices"]

        # A SIGKILL mid-write may orphan a tmp file; gc reclaims it and
        # never touches committed payloads.
        removed = ResultStore(store_dir).gc(tmp_grace_s=0.0)
        assert removed["n_tmp"] >= 0
        assert len(self._stored_results(store_dir)) == stored

        # Resume measures only the missing devices...
        with MeasurementScheduler(store=ResultStore(store_dir)) as sched:
            resumed = run_production(
                scheduler=sched, resume=True, report=True, **self.KW
            )
        assert resumed.run_report.cached_tasks == stored
        assert resumed.run_report.ok

        # ...and the merged outcome equals an uninterrupted run.
        uninterrupted = run_production(**self.KW)
        assert resumed.measured_nf_db == uninterrupted.measured_nf_db
        for got, want in zip(resumed.rows, uninterrupted.rows):
            assert got.outcome == want.outcome


WRITER_SCRIPT = """\
import sys
from repro.engine import MeasurementScheduler, ResultStore
from repro.experiments.production import run_production

with MeasurementScheduler(store=ResultStore(sys.argv[1])) as sched:
    run_production(
        n_devices=6,
        n_samples=2**14,
        nperseg=2048,
        seed=2005,
        scheduler=sched,
    )
"""


class TestMultiWriterSafety:
    """Two whole processes screening the same lot into one store."""

    def _env(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        return env

    def test_concurrent_screens_converge_to_one_coherent_store(
        self, tmp_path
    ):
        store_dir = tmp_path / "shared"
        children = [
            subprocess.Popen(
                [sys.executable, "-c", WRITER_SCRIPT, str(store_dir)],
                env=self._env(),
                cwd=Path(__file__).resolve().parents[2],
            )
            for _ in range(2)
        ]
        for child in children:
            assert child.wait(timeout=300.0) == 0

        # Content addressing makes the race benign: both writers
        # published the same payloads, the store holds each exactly
        # once, and reads verify.
        store = ResultStore(store_dir)
        walk = store.index()
        assert len(walk.by_kind("results")) == 6
        assert len(walk.by_kind("outcomes")) == 1
        for entry in walk:
            assert store.read_meta(entry.kind, entry.key) is not None
        assert store.quarantine_log == []

        # The multi-process append fan-out kept the persistent index
        # exactly equal to the tree.
        assert store.verify_index()["consistent"]
        fast = store.load_index()
        assert {(e.kind, e.key, e.nbytes) for e in fast} == {
            (e.kind, e.key, e.nbytes) for e in walk
        }


COMPACT_SCRIPT = """\
import sys
import time
from repro.store import ResultStore

store = ResultStore(sys.argv[1])
shards = sorted({entry.key[:2] for entry in store.index()})
for shard in shards:
    store.compact(shards=[shard])
    print(shard, flush=True)
    time.sleep(0.05)
"""


class TestCompactionCrashSafety:
    """SIGKILL mid-compaction leaves every payload readable."""

    def test_sigkill_mid_compaction_preserves_store(self, tmp_path):
        from tests.unit.test_store import (
            _result,
            assert_results_identical,
        )

        store_dir = tmp_path / "packing"
        store = ResultStore(store_dir)
        result = _result()
        # Two entries per shard across several shards, so compaction
        # has real per-shard work to be killed in the middle of.
        keys = [
            f"{shard:02d}" + format(suffix, "062x")
            for shard in range(6)
            for suffix in (1, 2)
        ]
        for key in keys:
            store.put_result(key, result)
        before = {
            key: store.read_payload_bytes("results", key) for key in keys
        }

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        child = subprocess.Popen(
            [sys.executable, "-c", COMPACT_SCRIPT, str(store_dir)],
            env=env,
            cwd=Path(__file__).resolve().parents[2],
            stdout=subprocess.PIPE,
        )
        try:
            # Kill the child the moment the first shard lands.
            line = child.stdout.readline()
            assert line.strip(), "compactor produced no progress"
            child.send_signal(signal.SIGKILL)
            child.wait(timeout=30.0)
        finally:
            child.stdout.close()
            if child.poll() is None:  # pragma: no cover - cleanup path
                child.kill()
                child.wait()
        assert child.returncode == -signal.SIGKILL

        # Some shards packed, some loose, possibly a published pack
        # whose loose originals were not yet unlinked — every payload must
        # still read back bit for bit.
        survivor = ResultStore(store_dir)
        packs = list(store_dir.glob("results/*/pack-*.pk"))
        assert packs, "the killed compactor never published a pack"
        for key in keys:
            assert survivor.read_payload_bytes("results", key) == before[key]
            assert_results_identical(survivor.get_result(key), result)
        assert survivor.quarantine_log == []

        # gc reclaims any orphaned tmp file and a rebuild restores a
        # consistent index; finishing the compaction converges.
        survivor.gc(tmp_grace_s=0.0)
        survivor.rebuild_index()
        assert survivor.verify_index()["consistent"]
        survivor.compact()
        for key in keys:
            assert survivor.read_payload_bytes("results", key) == before[key]
