"""Statistical validation of the 1-bit estimator: bias and variance.

These are slower tests (many repeated measurements) that pin down the
estimator's statistical behaviour — the quantities EXPERIMENTS.md quotes.
"""

import numpy as np
import pytest

from repro.analog.opamp import OpAmpNoiseModel
from repro.core.averaging import RepeatedMeasurement
from repro.instruments.testbench import build_prototype_testbench


@pytest.fixture(scope="module")
def nf6_population():
    """20 independent measurements of a 6 dB DUT at 2^17 samples."""
    model = OpAmpNoiseModel.from_expected_nf(
        6.0, 600.0, feedback_parallel_ohm=99.0, gbw_hz=8e6
    )
    bench = build_prototype_testbench(model, n_samples=2**17)
    estimator = bench.make_estimator()
    values = [
        estimator.measure(bench.acquire_bitstream, rng=3000 + s).noise_figure_db
        for s in range(20)
    ]
    return np.asarray(values), bench.expected_nf_db(500.0, 1500.0)


class TestEstimatorStatistics:
    def test_mean_unbiased_within_sampling_error(self, nf6_population):
        values, expected = nf6_population
        sem = np.std(values, ddof=1) / np.sqrt(values.size)
        assert abs(np.mean(values) - expected) < 3.5 * sem + 0.1

    def test_scatter_within_documented_band(self, nf6_population):
        values, _ = nf6_population
        std = np.std(values, ddof=1)
        # EXPERIMENTS.md documents ~0.5-0.7 dB at 2^17; allow headroom.
        assert 0.1 < std < 1.2

    def test_averaging_tightens_the_estimate(self, nf6_population):
        values, expected = nf6_population
        # Mean of 20 repeats must beat the typical single measurement.
        mean_error = abs(np.mean(values) - expected)
        typical_single = np.median(np.abs(values - expected))
        assert mean_error <= typical_single + 0.05

    def test_repeated_measurement_ci_covers_expected(self):
        model = OpAmpNoiseModel.from_expected_nf(
            6.0, 600.0, feedback_parallel_ohm=99.0, gbw_hz=8e6
        )
        bench = build_prototype_testbench(model, n_samples=2**17)
        rm = RepeatedMeasurement(bench.make_estimator(), n_repeats=6)
        result = rm.measure(bench.acquire_bitstream, rng=77)
        low, high = result.confidence_interval_db
        expected = bench.expected_nf_db(500.0, 1500.0)
        # A 95 % CI from 6 repeats should usually cover; allow a small
        # margin for the normal-theory approximation.
        assert low - 0.3 <= expected <= high + 0.3
