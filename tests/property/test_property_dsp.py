"""Property-based tests for the DSP substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.dsp.autocorr import autocorrelation, normalized_autocorrelation
from repro.dsp.psd import periodogram, welch
from repro.dsp.spectrum import Spectrum
from repro.dsp.windows import enbw_bins, get_window, window_gains
from repro.signals.waveform import Waveform

finite_samples = arrays(
    dtype=np.float64,
    shape=st.integers(min_value=16, max_value=512),
    elements=st.floats(min_value=-1e3, max_value=1e3),
)


class TestPeriodogramProperties:
    @given(samples=finite_samples)
    @settings(max_examples=50)
    def test_parseval(self, samples):
        w = Waveform(samples, 1000.0)
        spec = periodogram(w)
        assert spec.total_power() == pytest.approx(
            w.mean_square(), rel=1e-6, abs=1e-12
        )

    @given(samples=finite_samples)
    @settings(max_examples=50)
    def test_psd_nonnegative(self, samples):
        spec = periodogram(Waveform(samples, 1000.0))
        assert np.all(spec.psd >= 0.0)

    @given(samples=finite_samples, gain=st.floats(min_value=0.01, max_value=100.0))
    @settings(max_examples=30)
    def test_power_scales_quadratically(self, samples, gain):
        a = periodogram(Waveform(samples, 1000.0))
        b = periodogram(Waveform(samples * gain, 1000.0))
        assert b.total_power() == pytest.approx(
            a.total_power() * gain**2, rel=1e-6, abs=1e-12
        )


class TestWelchProperties:
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        nperseg_pow=st.integers(min_value=5, max_value=9),
    )
    @settings(max_examples=20)
    def test_total_power_near_mean_square(self, seed, nperseg_pow):
        rng = np.random.default_rng(seed)
        w = Waveform(rng.normal(size=8192), 1000.0)
        spec = welch(w, nperseg=2**nperseg_pow)
        assert spec.total_power() == pytest.approx(w.mean_square(), rel=0.25)

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20)
    def test_scale_invariance_of_shape(self, seed):
        rng = np.random.default_rng(seed)
        samples = rng.normal(size=4096)
        a = welch(Waveform(samples, 1000.0), nperseg=512)
        b = welch(Waveform(samples * 7.5, 1000.0), nperseg=512)
        ratio = b.psd[a.psd > 0] / a.psd[a.psd > 0]
        assert np.allclose(ratio, 7.5**2, rtol=1e-9)


class TestWindowProperties:
    @given(
        name=st.sampled_from(["rectangular", "hann", "hamming", "blackman", "flattop"]),
        n=st.integers(min_value=2, max_value=4096),
    )
    @settings(max_examples=60)
    def test_enbw_at_least_one_bin(self, name, n):
        # Cauchy-Schwarz: ENBW >= 1 bin, equality only for rectangular.
        w = get_window(name, n)
        assert enbw_bins(w) >= 1.0 - 1e-12

    @given(
        name=st.sampled_from(["hann", "hamming", "blackman"]),
        n=st.integers(min_value=4, max_value=1024),
    )
    @settings(max_examples=40)
    def test_gains_bounded(self, name, n):
        coherent, noise = window_gains(get_window(name, n))
        assert 0.0 < coherent <= 1.0
        assert 0.0 < noise <= 1.0
        assert noise >= coherent**2 - 1e-12  # variance is non-negative


class TestAutocorrProperties:
    @given(samples=finite_samples)
    @settings(max_examples=40)
    def test_lag0_dominates(self, samples):
        if np.allclose(samples, samples[0]):
            return  # constant signal has zero AC power
        r = autocorrelation(Waveform(samples, 1000.0), min(10, len(samples) - 1))
        assert np.all(np.abs(r[1:]) <= r[0] + 1e-9)

    @given(samples=finite_samples)
    @settings(max_examples=40)
    def test_normalized_bounded(self, samples):
        if np.allclose(samples, samples[0]):
            return
        rho = normalized_autocorrelation(
            Waveform(samples, 1000.0), min(10, len(samples) - 1)
        )
        assert rho[0] == pytest.approx(1.0)
        assert np.all(np.abs(rho) <= 1.0 + 1e-9)


class TestSpectrumProperties:
    @given(
        density=st.floats(min_value=1e-12, max_value=1e6),
        factor=st.floats(min_value=0.0, max_value=1e6),
    )
    def test_scaling_band_power(self, density, factor):
        freqs = np.arange(100.0)
        s = Spectrum(freqs, np.full(100, density))
        scaled = s.scaled(factor)
        assert scaled.band_power(10.0, 50.0) == pytest.approx(
            s.band_power(10.0, 50.0) * factor, rel=1e-9, abs=1e-30
        )

    @given(
        f_low=st.floats(min_value=1.0, max_value=40.0),
        width=st.floats(min_value=1.0, max_value=50.0),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_band_power_matches_manual_sum(self, f_low, width, seed):
        freqs = np.arange(100.0)
        rng = np.random.default_rng(seed)
        psd = rng.random(100) + 0.1
        s = Spectrum(freqs, psd)
        f_high = f_low + width
        mask = (freqs >= f_low) & (freqs <= f_high)
        assert s.band_power(f_low, f_high) == pytest.approx(
            float(np.sum(psd[mask])) * s.df, rel=1e-12
        )
