"""Property-based tests for the noise-figure math (eqs 2-9)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.definitions import (
    f_to_nf,
    friis_cascade_factor,
    nf_to_f,
    noise_factor_from_y,
    noise_factor_from_y_powers,
    noise_temperature_from_factor,
    y_factor_expected,
)

factors = st.floats(min_value=1.0, max_value=1e4)
hot_temps = st.floats(min_value=400.0, max_value=1e6)
cold_temps = st.floats(min_value=10.0, max_value=350.0)


class TestConversionProperties:
    @given(f=factors)
    def test_nf_roundtrip(self, f):
        assert nf_to_f(f_to_nf(f)) == pytest.approx(f, rel=1e-9)

    @given(f=factors)
    def test_nf_nonnegative(self, f):
        assert f_to_nf(f) >= 0.0

    @given(f=st.floats(min_value=1.0, max_value=1e4), g=st.floats(min_value=1.0, max_value=1e4))
    def test_nf_monotonic(self, f, g):
        # Non-strict: adjacent doubles can round to the same NF
        # (e.g. 9999.999999999998 and 10000.0 both map to 40.0 dB).
        if f < g:
            assert f_to_nf(f) <= f_to_nf(g)
        if g >= f * (1.0 + 1e-12):
            assert f_to_nf(f) < f_to_nf(g)

    @given(f=factors)
    def test_te_consistency(self, f):
        te = noise_temperature_from_factor(f)
        assert te == pytest.approx((f - 1.0) * 290.0)
        assert te >= 0.0


class TestYFactorProperties:
    @given(f=factors, th=hot_temps, tc=cold_temps)
    def test_eq8_inverts_forward_model(self, f, th, tc):
        y = y_factor_expected(f, th, tc)
        if y <= 1.0 + 1e-9:  # degenerate: F so large Y saturates
            return
        recovered = noise_factor_from_y(y, th, tc)
        assert recovered == pytest.approx(f, rel=1e-6)

    @given(f=factors, th=hot_temps, tc=cold_temps)
    def test_y_bounded_by_temperature_ratio(self, f, th, tc):
        # DUT noise can only compress Y below the source ratio Th/Tc.
        y = y_factor_expected(f, th, tc)
        assert 1.0 <= y <= th / tc + 1e-12

    @given(f=factors, th=hot_temps, tc=cold_temps, scale=st.floats(min_value=1e-6, max_value=1e6))
    def test_eq9_scale_invariance(self, f, th, tc, scale):
        # Eq 9 with powers proportional to temperatures at ANY scale
        # matches eq 8 — the gain-independence at the heart of the method.
        y = y_factor_expected(f, th, tc)
        if y <= 1.0 + 1e-9:
            return
        f8 = noise_factor_from_y(y, th, tc, 290.0)
        f9 = noise_factor_from_y_powers(y, th * scale, tc * scale, 290.0 * scale)
        assert f9 == pytest.approx(f8, rel=1e-9)

    @given(
        f1=st.floats(min_value=1.0, max_value=100.0),
        f2=st.floats(min_value=1.0, max_value=100.0),
        g=st.floats(min_value=1.0, max_value=1e5),
    )
    def test_friis_bounds(self, f1, f2, g):
        total = friis_cascade_factor([f1, f2], [g, 1.0])
        # Cascade noise is at least the first stage and at most the sum.
        assert total >= f1 - 1e-12
        assert total <= f1 + (f2 - 1.0) + 1e-12

    @given(
        f2=st.floats(min_value=1.0, max_value=100.0),
        g_small=st.floats(min_value=1.0, max_value=10.0),
    )
    def test_friis_more_gain_less_second_stage(self, f2, g_small):
        low = friis_cascade_factor([2.0, f2], [g_small, 1.0])
        high = friis_cascade_factor([2.0, f2], [g_small * 100.0, 1.0])
        assert high <= low + 1e-12
