"""Property-based tests for the reference-line normalization — the
gain-independence at the heart of the proposed method."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.normalization import ReferenceNormalizer
from repro.dsp.spectrum import Spectrum


def spectrum_with_line(line_power, floor, seed, f_line=100.0, n=1001):
    rng = np.random.default_rng(seed)
    freqs = np.arange(float(n))
    psd = floor * (0.5 + rng.random(n))
    psd[int(f_line)] += line_power
    return Spectrum(freqs, psd, enbw_hz=1.0)


def normalizer():
    return ReferenceNormalizer(
        reference_frequency_hz=100.0,
        search_halfwidth_hz=10.0,
        harmonic_kind="odd",
        subtract_floor=False,
    )


class TestGainInvariance:
    @given(
        gain_hot=st.floats(min_value=1e-3, max_value=1e3),
        gain_cold=st.floats(min_value=1e-3, max_value=1e3),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=40)
    def test_y_invariant_to_per_state_gain(self, gain_hot, gain_cold, seed):
        # Scaling either spectrum by ANY factor (channel gain, drift)
        # must not change the normalized band-power ratio.
        norm = normalizer()
        hot = spectrum_with_line(50.0, 4.0, seed)
        cold = spectrum_with_line(80.0, 1.0, seed + 1000)

        base = norm.normalize_pair(hot, cold)
        scaled = norm.normalize_pair(
            hot.scaled(gain_hot), cold.scaled(gain_cold)
        )
        p1 = norm.normalized_band_powers(base, 150.0, 250.0)
        p2 = norm.normalized_band_powers(scaled, 150.0, 250.0)
        assert p1[0] / p1[1] == pytest.approx(p2[0] / p2[1], rel=1e-9)

    @given(
        line_hot=st.floats(min_value=1.0, max_value=1e3),
        line_cold=st.floats(min_value=1.0, max_value=1e3),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=40)
    def test_line_powers_normalize_to_unity(self, line_hot, line_cold, seed):
        norm = normalizer()
        hot = spectrum_with_line(line_hot, 1e-3, seed)
        cold = spectrum_with_line(line_cold, 1e-3, seed + 1)
        result = norm.normalize_pair(hot, cold)
        _, p_hot = norm.line_power(result.hot)
        _, p_cold = norm.line_power(result.cold)
        assert p_hot == pytest.approx(1.0, rel=0.05)
        assert p_cold == pytest.approx(1.0, rel=0.05)

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=40)
    def test_exclusion_zones_cover_reference(self, seed):
        norm = normalizer()
        spec = spectrum_with_line(50.0, 1.0, seed)
        zones = norm.exclusion_zones(spec)
        fund = zones[0]
        assert abs(fund[0] - 100.0) <= 10.0
        # Band power with exclusions never exceeds the raw band power.
        raw = spec.band_power(50.0, 150.0)
        excluded = spec.band_power(50.0, 150.0, exclude=zones)
        assert excluded <= raw
