"""Property-based tests for the arcsine law and 1-bit digitization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.digitizer.arcsine import arcsine_law, van_vleck_inverse
from repro.digitizer.comparator import Comparator
from repro.digitizer.digitizer import OneBitDigitizer
from repro.signals.waveform import Waveform

rhos = st.floats(min_value=-1.0, max_value=1.0)
rho_arrays = arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=64),
    elements=rhos,
)


class TestArcsineProperties:
    @given(rho=rhos)
    def test_output_in_unit_range(self, rho):
        assert -1.0 - 1e-12 <= arcsine_law(rho) <= 1.0 + 1e-12

    @given(rho=rhos)
    def test_roundtrip(self, rho):
        assert van_vleck_inverse(arcsine_law(rho)) == pytest.approx(
            rho, abs=1e-9
        )

    @given(rho=rhos)
    def test_odd_function(self, rho):
        assert arcsine_law(-rho) == pytest.approx(-arcsine_law(rho), abs=1e-12)

    @given(rho=st.floats(min_value=0.0, max_value=1.0))
    def test_compression(self, rho):
        # |arcsine_law(rho)| <= |rho| on [0, 1]: the limiter compresses.
        assert arcsine_law(rho) <= rho + 1e-12

    @given(a=rhos, b=rhos)
    def test_monotonic(self, a, b):
        if a < b:
            assert arcsine_law(a) <= arcsine_law(b) + 1e-12

    @given(arr=rho_arrays)
    def test_vectorized_matches_scalar(self, arr):
        vec = arcsine_law(arr)
        scalars = np.array([arcsine_law(float(x)) for x in arr])
        assert np.allclose(vec, scalars)


class TestDigitizerProperties:
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        sigma=st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=30)
    def test_output_always_pm_one(self, seed, sigma):
        rng = np.random.default_rng(seed)
        sig = Waveform(rng.normal(0, sigma, size=256), 1000.0)
        ref = Waveform(rng.normal(0, sigma, size=256), 1000.0)
        bits = OneBitDigitizer().digitize(sig, ref)
        assert set(np.unique(bits.samples)) <= {-1.0, 1.0}

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        gain=st.floats(min_value=0.01, max_value=100.0),
    )
    @settings(max_examples=30)
    def test_scale_invariance(self, seed, gain):
        # Scaling signal AND reference together cannot change the bits —
        # the core reason absolute gain drops out of the 1-bit method.
        rng = np.random.default_rng(seed)
        sig = Waveform(rng.normal(size=256), 1000.0)
        ref = Waveform(rng.normal(size=256), 1000.0)
        dig = OneBitDigitizer()
        a = dig.digitize(sig, ref)
        b = dig.digitize(sig.scaled(gain), ref.scaled(gain))
        assert a == b

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=30)
    def test_inversion_antisymmetry(self, seed):
        # Swapping signal and reference flips every bit (up to ties).
        rng = np.random.default_rng(seed)
        sig = Waveform(rng.normal(size=256), 1000.0)
        ref = Waveform(rng.normal(size=256), 1000.0)
        dig = OneBitDigitizer()
        a = dig.digitize(sig, ref)
        b = dig.digitize(ref, sig)
        ties = sig.samples == ref.samples
        assert np.all((a.samples == -b.samples) | ties)

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        offset=st.floats(min_value=-0.5, max_value=0.5),
    )
    @settings(max_examples=30)
    def test_offset_shifts_mean_monotonically(self, seed, offset):
        rng = np.random.default_rng(seed)
        sig = Waveform(rng.normal(size=4096), 1000.0)
        ref = Waveform(np.zeros(4096), 1000.0)
        plain = Comparator().compare(sig, ref)
        shifted = Comparator(offset_v=offset).compare(sig, ref)
        if offset >= 0:
            assert np.mean(shifted.samples) >= np.mean(plain.samples) - 1e-12
        else:
            assert np.mean(shifted.samples) <= np.mean(plain.samples) + 1e-12
