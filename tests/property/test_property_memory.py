"""Property-based tests for SoC memory bit-packing and waveform algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.signals.waveform import Waveform
from repro.soc.memory import SampleMemory

bit_arrays = arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=2048),
    elements=st.sampled_from([-1.0, 1.0]),
)

finite_arrays = arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=256),
    elements=st.floats(min_value=-1e6, max_value=1e6),
)


class TestMemoryRoundtrip:
    @given(bits=bit_arrays)
    @settings(max_examples=80)
    def test_pack_unpack_identity(self, bits):
        mem = SampleMemory(10**6)
        original = Waveform(bits, 1000.0)
        mem.store_bitstream("x", original)
        assert mem.load_bitstream("x") == original

    @given(n=st.integers(min_value=0, max_value=10**7))
    def test_bytes_required_bounds(self, n):
        need = SampleMemory.bytes_required_bits(n)
        assert need * 8 >= n
        assert (need - 1) * 8 < n or need == 0

    @given(
        n=st.integers(min_value=1, max_value=10**6),
        bits=st.integers(min_value=1, max_value=32),
    )
    def test_words_required_at_least_bits(self, n, bits):
        need = SampleMemory.words_required(n, bits)
        assert need * 8 >= n * bits
        assert need <= n * bits // 8 + 1


class TestWaveformAlgebra:
    @given(samples=finite_arrays, gain=st.floats(min_value=-100.0, max_value=100.0))
    @settings(max_examples=60)
    def test_scaling_power(self, samples, gain):
        w = Waveform(samples, 100.0)
        assert w.scaled(gain).mean_square() == pytest.approx(
            w.mean_square() * gain**2, rel=1e-9, abs=1e-15
        )

    @given(samples=finite_arrays)
    @settings(max_examples=60)
    def test_remove_mean_idempotent(self, samples):
        w = Waveform(samples, 100.0).remove_mean()
        again = w.remove_mean()
        assert np.allclose(w.samples, again.samples, atol=1e-9)

    @given(samples=finite_arrays)
    @settings(max_examples=60)
    def test_rms_peak_ordering(self, samples):
        w = Waveform(samples, 100.0)
        # Relative tolerance: for a constant signal rms == peak up to
        # floating-point round-off proportional to the magnitude.
        assert w.rms() <= w.peak() * (1.0 + 1e-9) + 1e-12

    @given(samples=finite_arrays, dc=st.floats(min_value=-1e3, max_value=1e3))
    @settings(max_examples=60)
    def test_offset_shifts_mean_exactly(self, samples, dc):
        w = Waveform(samples, 100.0)
        assert (w + dc).mean() == pytest.approx(w.mean() + dc, abs=1e-6)
