"""Tests for repro.core.multipoint (simultaneous observability)."""

import numpy as np
import pytest

from repro.core.bist import BISTMeasurementConfig
from repro.core.multipoint import MultiPointBIST, TestPoint
from repro.digitizer.digitizer import OneBitDigitizer
from repro.errors import ConfigurationError
from repro.signals.sources import GaussianNoiseSource, SquareSource
from repro.signals.random import spawn_rngs
from repro.signals.waveform import Waveform

FS = 10000.0
N = 200000


def make_config():
    return BISTMeasurementConfig(
        sample_rate_hz=FS,
        n_samples=N,
        nperseg=5000,
        reference_frequency_hz=60.0,
        noise_band_hz=(100.0, 4500.0),
        harmonic_kind="odd",
    )


def make_multipoint(names=("a", "b")):
    points = [TestPoint(name, OneBitDigitizer()) for name in names]
    return MultiPointBIST(points, make_config(), t_hot_k=2900.0, t_cold_k=290.0)


def state_signals(state, rng, f_by_tap):
    """Synthetic tap waveforms: each tap sees its own DUT noise factor."""
    rngs = spawn_rngs(rng, len(f_by_tap))
    out = {}
    for (name, f_dut), child in zip(f_by_tap.items(), rngs):
        te = (f_dut - 1.0) * 290.0
        t = 2900.0 if state == "hot" else 290.0
        sigma = np.sqrt((t + te) / (290.0 + te))
        out[name] = GaussianNoiseSource(sigma).render(N, FS, child)
    return out


class TestValidation:
    def test_needs_points(self):
        with pytest.raises(ConfigurationError):
            MultiPointBIST([], make_config(), 2900.0)

    def test_rejects_duplicate_names(self):
        points = [
            TestPoint("x", OneBitDigitizer()),
            TestPoint("x", OneBitDigitizer()),
        ]
        with pytest.raises(ConfigurationError):
            MultiPointBIST(points, make_config(), 2900.0)

    def test_testpoint_needs_name(self):
        with pytest.raises(ConfigurationError):
            TestPoint("", OneBitDigitizer())

    def test_testpoint_needs_digitizer(self):
        with pytest.raises(ConfigurationError):
            TestPoint("x", "not a digitizer")

    def test_names_property(self):
        mp = make_multipoint(("dut", "output"))
        assert mp.names == ["dut", "output"]


class TestDigitizeState:
    def test_produces_bitstream_per_tap(self):
        mp = make_multipoint()
        signals = state_signals("hot", 1, {"a": 2.0, "b": 4.0})
        ref = SquareSource(60.0, 0.2).render(N, FS)
        bits = mp.digitize_state(signals, ref, rng=2)
        assert set(bits) == {"a", "b"}
        for wave in bits.values():
            assert set(np.unique(wave.samples)) <= {-1.0, 1.0}

    def test_missing_tap_raises(self):
        mp = make_multipoint()
        ref = SquareSource(60.0, 0.2).render(N, FS)
        with pytest.raises(ConfigurationError):
            mp.digitize_state({"a": ref}, ref, rng=1)


class TestMeasure:
    def test_simultaneous_two_tap_measurement(self):
        mp = make_multipoint()
        ref = SquareSource(60.0, 0.2).render(N, FS)
        f_by_tap = {"a": 2.0, "b": 4.0}

        results = mp.measure(
            lambda state, rng: state_signals(state, rng, f_by_tap),
            ref,
            rng=7,
        )
        assert results["a"].noise_figure_db == pytest.approx(3.01, abs=0.7)
        assert results["b"].noise_figure_db == pytest.approx(6.02, abs=0.7)

    def test_estimate_requires_all_taps(self):
        mp = make_multipoint()
        with pytest.raises(ConfigurationError):
            mp.estimate({}, {})
