"""Unit tests for the multi-backend kernel registry and its tiers.

The property-style parity suite (edge shapes: tail bits inside the
last word, nperseg not dividing n_samples, single-record and empty
batches) runs every available backend against the reference tier —
exact equality for the integer kernels, <= 1e-15 scale-relative for
the spectral accumulation kernel.
"""

import numpy as np
import pytest

from repro.bitstream import PackedBitstream, PackedRecordBatch
from repro.dsp.bitstats import packed_segment_ones, popcount
from repro.dsp.psd import welch_batch
from repro.errors import ConfigurationError
from repro.kernels import (
    BACKEND_TIERS,
    available_backends,
    get_kernel,
    get_kernel_backend,
    kernel_backend,
    kernel_names,
    report,
    resolve_backend,
    self_check,
    set_kernel_backend,
)

RATE = 10_000.0

#: Every backend this host can serve (numba joins when installed).
BACKENDS = available_backends()
NON_REFERENCE = [b for b in BACKENDS if b != "reference"]


def _packed_record(n, seed=0, bias=0.5):
    rng = np.random.default_rng(seed)
    samples = np.where(rng.random(n) < bias, 1.0, -1.0)
    return samples, PackedBitstream.pack(samples, RATE)


def _packed_batch(n_records, n_samples, seed=0):
    rng = np.random.default_rng(seed)
    records = np.where(rng.random((n_records, n_samples)) < 0.5, 1.0, -1.0)
    return PackedRecordBatch.pack(records, RATE)


class TestRegistry:
    def test_all_kernels_registered(self):
        assert kernel_names() == [
            "bernoulli_pack",
            "popcount",
            "segment_ones",
            "unpack_block",
            "welch_bit_domain",
        ]

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ConfigurationError):
            get_kernel("no_such_kernel")

    def test_reference_and_tuned_always_available(self):
        assert "reference" in BACKENDS
        assert "tuned" in BACKENDS

    def test_resolve_auto_prefers_best_available(self):
        expected = "numba" if "numba" in BACKENDS else "tuned"
        assert resolve_backend("auto") == expected

    def test_resolve_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_backend("cuda")

    def test_context_manager_restores(self):
        before = get_kernel_backend()
        with kernel_backend("reference"):
            assert get_kernel_backend() == "reference"
        assert get_kernel_backend() == before

    def test_context_manager_restores_on_error(self):
        before = get_kernel_backend()
        with pytest.raises(RuntimeError):
            with kernel_backend("reference"):
                raise RuntimeError("boom")
        assert get_kernel_backend() == before

    def test_numba_absent_is_skipped_not_failed(self):
        """The numba tier degrades to an explicit error on selection
        and simply stays out of ``available_backends`` otherwise."""
        if "numba" in BACKENDS:
            pytest.skip("numba installed on this host")
        with pytest.raises(ConfigurationError):
            set_kernel_backend("numba")
        assert get_kernel_backend() != "numba"

    @pytest.mark.parametrize("backend", NON_REFERENCE)
    def test_self_check_covers_every_kernel(self, backend):
        assert self_check(backend) == len(kernel_names())

    def test_fallback_chain_serves_unimplemented_kernels(self):
        # The tuned tier does not register unpack_block; dispatch must
        # fall back to the reference implementation, not fail.
        from repro.kernels import reference

        assert get_kernel("unpack_block", "tuned") is reference.unpack_block

    def test_report_shape(self):
        info = report()
        assert info["kernel_backend"] in BACKEND_TIERS
        assert info["kernels"] == kernel_names()
        assert info["cpu_count"] >= 1
        assert info["numpy"]
        assert set(info["kernel_backends_available"]) <= set(BACKEND_TIERS)
        assert info["fft_backend"] in ("numpy", "scipy")


class TestPopcountParity:
    """Property-style parity across edge shapes for the bit kernels."""

    CASES = [
        np.empty(0, dtype=np.uint8),  # empty batch of words
        np.array([0b10110001], dtype=np.uint8),  # single word
        np.arange(256, dtype=np.uint8),  # every byte value
        np.random.default_rng(7).integers(0, 256, size=257).astype(np.uint8),
        np.random.default_rng(8)
        .integers(0, 256, size=(4, 33))
        .astype(np.uint8),  # 2-D batch, odd trailing dim
    ]

    @pytest.mark.parametrize("backend", NON_REFERENCE)
    @pytest.mark.parametrize("case", range(len(CASES)))
    def test_popcount_bit_identical(self, backend, case):
        words = self.CASES[case]
        ref = get_kernel("popcount", "reference")(words)
        out = get_kernel("popcount", backend)(words)
        assert out.shape == ref.shape
        assert np.array_equal(out, ref)

    @pytest.mark.parametrize("backend", NON_REFERENCE)
    @pytest.mark.parametrize(
        "n_samples,nperseg,step",
        [
            (301, 64, 32),  # tail bits inside the last packed word
            (520, 64, 64),  # nperseg not dividing n_samples
            (512, 512, 256),  # single full segment
            (4104, 256, 128),  # segment grid ends mid-record
        ],
    )
    def test_segment_ones_bit_identical(self, backend, n_samples, nperseg, step):
        _, packed = _packed_record(n_samples, seed=n_samples)
        with kernel_backend("reference"):
            ref = packed_segment_ones(packed, nperseg, step)
        with kernel_backend(backend):
            out = packed_segment_ones(packed, nperseg, step)
        assert np.array_equal(out, ref)

    @pytest.mark.parametrize("backend", NON_REFERENCE)
    @pytest.mark.parametrize("n", [1, 7, 64, 301])
    @pytest.mark.parametrize("bipolar", [True, False])
    def test_unpack_block_bit_identical(self, backend, n, bipolar):
        samples, packed = _packed_record(n, seed=n)
        ref_fn = get_kernel("unpack_block", "reference")
        fn = get_kernel("unpack_block", backend)
        for start, stop in [(0, n), (n // 2, n), (0, (n + 1) // 2)]:
            ref = ref_fn(packed.words, start, stop, bipolar=bipolar)
            out = fn(packed.words, start, stop, bipolar=bipolar)
            assert np.array_equal(out, ref)

    @pytest.mark.parametrize("backend", NON_REFERENCE)
    @pytest.mark.parametrize("n", [1, 7, 128, 1001])
    def test_bernoulli_pack_bit_identical(self, backend, n):
        rng = np.random.default_rng(n)
        raw = rng.integers(0, 2**64, size=(n + 1) // 2, dtype=np.uint64)
        thresholds = rng.integers(0, 2**32, size=n, dtype=np.uint32)
        n_words = (n + 7) // 8
        ref_words = np.empty(n_words, dtype=np.uint8)
        out_words = np.empty(n_words, dtype=np.uint8)
        get_kernel("bernoulli_pack", "reference")(raw, thresholds, ref_words)
        get_kernel("bernoulli_pack", backend)(raw, thresholds, out_words)
        assert np.array_equal(out_words, ref_words)


class TestWelchParity:
    @pytest.mark.parametrize("backend", NON_REFERENCE)
    @pytest.mark.parametrize(
        "n_records,n_samples,nperseg",
        [
            (1, 4096, 256),  # single-record batch
            (3, 4104, 256),  # nperseg not dividing n_samples
            (2, 1000, 128),  # tail bits inside the last packed word
        ],
    )
    def test_psd_within_1e15_of_reference(
        self, backend, n_records, n_samples, nperseg
    ):
        batch = _packed_batch(n_records, n_samples, seed=nperseg)
        with kernel_backend("reference"):
            ref = welch_batch(batch, nperseg, bit_domain=True).psd
        with kernel_backend(backend):
            out = welch_batch(batch, nperseg, bit_domain=True).psd
        assert out.shape == ref.shape
        assert float(np.abs(out - ref).max() / ref.max()) <= 1e-15

    @pytest.mark.parametrize("backend", NON_REFERENCE)
    def test_bit_domain_matches_exact_path(self, backend):
        # Cross-check against the exact (unpacked) Welch path too: the
        # kernel tier must not drift from the float pipeline.
        batch = _packed_batch(2, 4096, seed=3)
        exact = welch_batch(batch, 256).psd
        with kernel_backend(backend):
            bit = welch_batch(batch, 256, bit_domain=True).psd
        assert float(np.abs(bit - exact).max() / exact.max()) <= 1e-10


class TestDispatchedPublicApis:
    """The public hot paths go through the registry: switching the
    backend must not change a single bit of their output."""

    def test_popcount_public_api_dispatches(self):
        words = np.random.default_rng(5).integers(
            0, 256, size=999
        ).astype(np.uint8)
        per_backend = []
        for backend in BACKENDS:
            with kernel_backend(backend):
                per_backend.append(popcount(words))
        for out in per_backend[1:]:
            assert np.array_equal(out, per_backend[0])

    def test_packed_bernoulli_words_backend_invariant(self):
        from repro.signals.batch_rng import (
            BatchNoiseGenerator,
            bernoulli_thresholds_u32,
        )

        thresholds = bernoulli_thresholds_u32(np.full(1001, 0.3))
        outs = []
        for backend in BACKENDS:
            with kernel_backend(backend):
                gen = BatchNoiseGenerator([1234, 5678])
                outs.append(gen.packed_bernoulli_words(thresholds))
        for out in outs[1:]:
            assert np.array_equal(out, outs[0])

    def test_unpack_range_backend_invariant(self):
        samples, packed = _packed_record(301, seed=11)
        for backend in BACKENDS:
            with kernel_backend(backend):
                assert np.array_equal(packed.unpack_range(3, 299), samples[3:299])
