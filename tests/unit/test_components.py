"""Tests for repro.analog.components."""

import numpy as np
import pytest

from repro.analog.components import Attenuator, Resistor
from repro.constants import BOLTZMANN
from repro.errors import ConfigurationError
from repro.signals.waveform import Waveform


class TestResistor:
    def test_noise_density(self):
        r = Resistor(1000.0, 290.0)
        assert r.noise_density_v2_per_hz == pytest.approx(
            4 * BOLTZMANN * 290.0 * 1000.0
        )

    def test_render_noise_power(self, rng):
        r = Resistor(1e9, 290.0)  # large R for measurable level
        w = r.render_noise(50000, 10000.0, rng)
        expected_ms = r.noise_density_v2_per_hz * 5000.0
        assert w.mean_square() == pytest.approx(expected_ms, rel=0.05)

    def test_parallel_value(self):
        r = Resistor(100.0).parallel(Resistor(100.0))
        assert r.resistance_ohm == pytest.approx(50.0)

    def test_parallel_with_zero_is_zero(self):
        r = Resistor(0.0).parallel(Resistor(100.0))
        assert r.resistance_ohm == 0.0

    def test_parallel_temperature_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            Resistor(10.0, 290.0).parallel(Resistor(10.0, 300.0))

    def test_rejects_negative_resistance(self):
        with pytest.raises(ConfigurationError):
            Resistor(-1.0)

    def test_rejects_negative_temperature(self):
        with pytest.raises(ConfigurationError):
            Resistor(1.0, -1.0)


class TestAttenuator:
    def test_voltage_factor_6db(self):
        att = Attenuator(6.0206)
        assert att.voltage_factor == pytest.approx(0.5, rel=1e-4)

    def test_power_factor_3db(self):
        att = Attenuator(3.0103)
        assert att.power_factor == pytest.approx(0.5, rel=1e-4)

    def test_process_scales_waveform(self):
        att = Attenuator(20.0)
        w = att.process(Waveform([1.0, -1.0], 10.0))
        assert np.allclose(np.abs(w.samples), 0.1)

    def test_zero_loss_transparent(self):
        att = Attenuator(0.0)
        w = Waveform([1.0, 2.0], 10.0)
        assert att.process(w) == w

    def test_attenuate_temperature(self):
        att = Attenuator(10.0)
        assert att.attenuate_temperature(1000.0) == pytest.approx(100.0)

    def test_reprogram(self):
        att = Attenuator(0.0)
        att.set_loss(20.0)
        assert att.voltage_factor == pytest.approx(0.1)

    def test_rejects_negative_loss(self):
        with pytest.raises(ConfigurationError):
            Attenuator(-3.0)

    def test_rejects_negative_excess_temperature(self):
        with pytest.raises(ConfigurationError):
            Attenuator(3.0).attenuate_temperature(-1.0)
