"""Tests for repro.signals.random."""

import numpy as np
import pytest

from repro.signals.random import make_rng, spawn_rngs


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(7).normal(size=10)
        b = make_rng(7).normal(size=10)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(7).normal(size=10)
        b = make_rng(8).normal(size=10)
        assert not np.allclose(a, b)

    def test_passthrough_generator(self):
        gen = np.random.default_rng(1)
        assert make_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(3, 5)) == 5

    def test_children_are_independent(self):
        a, b = spawn_rngs(3, 2)
        assert not np.allclose(a.normal(size=10), b.normal(size=10))

    def test_deterministic_from_seed(self):
        a1, b1 = spawn_rngs(9, 2)
        a2, b2 = spawn_rngs(9, 2)
        assert np.allclose(a1.normal(size=5), a2.normal(size=5))
        assert np.allclose(b1.normal(size=5), b2.normal(size=5))

    def test_spawn_from_generator(self):
        gen = np.random.default_rng(4)
        children = spawn_rngs(gen, 3)
        assert len(children) == 3

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)

    def test_zero_count_ok(self):
        assert spawn_rngs(1, 0) == []
