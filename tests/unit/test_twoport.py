"""Tests for repro.analog.twoport."""

import pytest

from repro.analog.twoport import TwoPort, attenuator_twoport, cascade
from repro.constants import T0_KELVIN
from repro.errors import ConfigurationError


class TestTwoPort:
    def test_from_db(self):
        tp = TwoPort.from_db(20.0, 3.0103)
        assert tp.gain_linear == pytest.approx(100.0)
        assert tp.noise_factor == pytest.approx(2.0, rel=1e-4)

    def test_noise_temperature(self):
        tp = TwoPort(10.0, 2.0)
        assert tp.noise_temperature_k == pytest.approx(T0_KELVIN)

    def test_from_noise_temperature_roundtrip(self):
        tp = TwoPort.from_noise_temperature(10.0, 870.0)
        assert tp.noise_factor == pytest.approx(4.0)

    def test_noise_figure_db(self):
        assert TwoPort(1.0, 10.0).noise_figure_db == pytest.approx(10.0)

    def test_rejects_zero_gain(self):
        with pytest.raises(ConfigurationError):
            TwoPort(0.0, 2.0)

    def test_rejects_subunity_noise_factor(self):
        with pytest.raises(ConfigurationError):
            TwoPort(1.0, 0.5)

    def test_rejects_negative_te(self):
        with pytest.raises(ConfigurationError):
            TwoPort.from_noise_temperature(1.0, -10.0)


class TestCascade:
    def test_single_stage_identity(self):
        tp = TwoPort(10.0, 2.0)
        out = cascade([tp])
        assert out.gain_linear == tp.gain_linear
        assert out.noise_factor == tp.noise_factor

    def test_friis_two_stages(self):
        first = TwoPort(100.0, 2.0)
        second = TwoPort(10.0, 11.0)
        out = cascade([first, second])
        assert out.noise_factor == pytest.approx(2.0 + 10.0 / 100.0)
        assert out.gain_linear == pytest.approx(1000.0)

    def test_first_stage_dominates_with_high_gain(self):
        # Paper section 6: cascade NF ~ first-stage NF when G1 is large.
        lna = TwoPort(10000.0, 2.0)
        noisy_post = TwoPort(10.0, 100.0)
        out = cascade([lna, noisy_post])
        assert out.noise_figure_db == pytest.approx(lna.noise_figure_db, abs=0.05)

    def test_order_matters(self):
        a = TwoPort(100.0, 2.0)
        b = TwoPort(100.0, 4.0)
        assert cascade([a, b]).noise_factor < cascade([b, a]).noise_factor

    def test_empty_cascade_raises(self):
        with pytest.raises(ConfigurationError):
            cascade([])


class TestAttenuator:
    def test_attenuator_at_t0_nf_equals_loss(self):
        tp = attenuator_twoport(3.0, T0_KELVIN)
        assert tp.noise_figure_db == pytest.approx(3.0, abs=1e-6)

    def test_cold_attenuator_quieter(self):
        cold = attenuator_twoport(3.0, 77.0)
        warm = attenuator_twoport(3.0, T0_KELVIN)
        assert cold.noise_factor < warm.noise_factor

    def test_zero_loss_is_transparent(self):
        tp = attenuator_twoport(0.0)
        assert tp.gain_linear == pytest.approx(1.0)
        assert tp.noise_factor == pytest.approx(1.0)

    def test_rejects_negative_loss(self):
        with pytest.raises(ConfigurationError):
            attenuator_twoport(-1.0)
