"""Tests for repro.dsp.power."""

import numpy as np
import pytest

from repro.dsp.power import (
    band_power_from_spectrum,
    mean_square,
    power_ratio,
    power_ratio_db,
    snr_db,
)
from repro.errors import ConfigurationError
from repro.signals.waveform import Waveform


class TestMeanSquare:
    def test_waveform_input(self):
        assert mean_square(Waveform([3.0, -3.0], 1.0)) == 9.0

    def test_array_input(self):
        assert mean_square(np.array([1.0, 1.0])) == 1.0

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            mean_square(np.array([]))


class TestPowerRatio:
    def test_basic_ratio(self):
        a = Waveform([2.0, -2.0], 1.0)
        b = Waveform([1.0, -1.0], 1.0)
        assert power_ratio(a, b) == pytest.approx(4.0)

    def test_db_form(self):
        a = Waveform([np.sqrt(10.0)], 1.0)
        b = Waveform([1.0], 1.0)
        assert power_ratio_db(a, b) == pytest.approx(10.0)

    def test_zero_denominator_raises(self):
        with pytest.raises(ConfigurationError):
            power_ratio(Waveform([1.0], 1.0), Waveform([0.0], 1.0))


class TestSnr:
    def test_snr_10db(self):
        assert snr_db(10.0, 1.0) == pytest.approx(10.0)

    def test_rejects_zero_noise(self):
        with pytest.raises(ConfigurationError):
            snr_db(1.0, 0.0)

    def test_rejects_zero_signal(self):
        with pytest.raises(ConfigurationError):
            snr_db(0.0, 1.0)


class TestBandPowerWrapper:
    def test_matches_spectrum_method(self):
        from repro.dsp.spectrum import Spectrum

        s = Spectrum(np.arange(100.0), np.ones(100))
        assert band_power_from_spectrum(s, 10.0, 20.0) == s.band_power(10.0, 20.0)
