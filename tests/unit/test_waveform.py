"""Tests for repro.signals.waveform."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.signals.waveform import Waveform, concatenate


class TestConstruction:
    def test_basic_construction(self):
        w = Waveform([1.0, -1.0, 2.0], 100.0)
        assert len(w) == 3
        assert w.sample_rate == 100.0

    def test_samples_are_copied_and_readonly(self):
        data = np.array([1.0, 2.0])
        w = Waveform(data, 10.0)
        data[0] = 99.0
        assert w.samples[0] == 1.0
        with pytest.raises(ValueError):
            w.samples[0] = 5.0

    def test_rejects_2d_samples(self):
        with pytest.raises(ConfigurationError):
            Waveform(np.zeros((2, 2)), 10.0)

    def test_rejects_zero_sample_rate(self):
        with pytest.raises(ConfigurationError):
            Waveform([1.0], 0.0)

    def test_rejects_negative_sample_rate(self):
        with pytest.raises(ConfigurationError):
            Waveform([1.0], -5.0)

    def test_rejects_nan_sample_rate(self):
        with pytest.raises(ConfigurationError):
            Waveform([1.0], float("nan"))


class TestProperties:
    def test_duration(self):
        w = Waveform(np.zeros(100), 50.0)
        assert w.duration == pytest.approx(2.0)

    def test_nyquist(self):
        assert Waveform([0.0, 1.0], 300.0).nyquist == 150.0

    def test_times_start_at_zero(self):
        w = Waveform(np.zeros(5), 10.0)
        assert np.allclose(w.times, [0.0, 0.1, 0.2, 0.3, 0.4])


class TestStatistics:
    def test_mean(self):
        assert Waveform([1.0, 3.0], 1.0).mean() == 2.0

    def test_mean_square(self):
        assert Waveform([3.0, 4.0], 1.0).mean_square() == pytest.approx(12.5)

    def test_rms_of_constant(self):
        assert Waveform([2.0, 2.0, 2.0], 1.0).rms() == pytest.approx(2.0)

    def test_rms_of_sine_is_amplitude_over_sqrt2(self):
        t = np.arange(10000) / 10000.0
        w = Waveform(3.0 * np.sin(2 * np.pi * 100 * t), 10000.0)
        assert w.rms() == pytest.approx(3.0 / np.sqrt(2), rel=1e-3)

    def test_std_ignores_dc(self):
        t = np.arange(1000)
        w = Waveform(np.where(t % 2 == 0, 6.0, 4.0), 1.0)
        assert w.std() == pytest.approx(1.0)
        assert w.mean() == pytest.approx(5.0)

    def test_peak(self):
        assert Waveform([1.0, -5.0, 2.0], 1.0).peak() == 5.0

    def test_crest_factor_of_square_is_one(self):
        w = Waveform(np.array([1.0, -1.0] * 50), 1.0)
        assert w.crest_factor() == pytest.approx(1.0)

    def test_crest_factor_of_zero_waveform_is_inf(self):
        assert Waveform(np.zeros(4), 1.0).crest_factor() == float("inf")


class TestTransformations:
    def test_scaled(self):
        w = Waveform([1.0, 2.0], 1.0).scaled(3.0)
        assert np.allclose(w.samples, [3.0, 6.0])

    def test_offset(self):
        w = Waveform([1.0, 2.0], 1.0).offset(-1.0)
        assert np.allclose(w.samples, [0.0, 1.0])

    def test_remove_mean(self):
        w = Waveform([1.0, 3.0], 1.0).remove_mean()
        assert w.mean() == pytest.approx(0.0)

    def test_slice(self):
        w = Waveform([0.0, 1.0, 2.0, 3.0], 1.0).slice(1, 3)
        assert np.allclose(w.samples, [1.0, 2.0])

    def test_slice_out_of_range_raises(self):
        with pytest.raises(ConfigurationError):
            Waveform([0.0, 1.0], 1.0).slice(0, 3)


class TestArithmetic:
    def test_add_waveforms(self):
        a = Waveform([1.0, 2.0], 10.0)
        b = Waveform([10.0, 20.0], 10.0)
        assert np.allclose((a + b).samples, [11.0, 22.0])

    def test_subtract_waveforms(self):
        a = Waveform([1.0, 2.0], 10.0)
        b = Waveform([10.0, 20.0], 10.0)
        assert np.allclose((b - a).samples, [9.0, 18.0])

    def test_add_scalar(self):
        w = Waveform([1.0], 1.0) + 5.0
        assert w.samples[0] == 6.0

    def test_multiply_scalar(self):
        w = 2.0 * Waveform([1.0, 2.0], 1.0)
        assert np.allclose(w.samples, [2.0, 4.0])

    def test_rate_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            Waveform([1.0], 10.0) + Waveform([1.0], 20.0)

    def test_length_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            Waveform([1.0], 10.0) + Waveform([1.0, 2.0], 10.0)

    def test_equality(self):
        a = Waveform([1.0, 2.0], 10.0)
        b = Waveform([1.0, 2.0], 10.0)
        c = Waveform([1.0, 2.5], 10.0)
        assert a == b
        assert a != c


class TestConcatenate:
    def test_concatenate_two(self):
        a = Waveform([1.0], 10.0)
        b = Waveform([2.0, 3.0], 10.0)
        out = concatenate([a, b])
        assert np.allclose(out.samples, [1.0, 2.0, 3.0])

    def test_concatenate_empty_raises(self):
        with pytest.raises(ConfigurationError):
            concatenate([])

    def test_concatenate_rate_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            concatenate([Waveform([1.0], 10.0), Waveform([1.0], 20.0)])
