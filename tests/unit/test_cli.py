"""Tests for the repro CLI."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command(self):
        args = build_parser().parse_args(["run", "table1"])
        assert args.experiment == "table1"
        assert args.fast is False

    def test_fast_flag(self):
        args = build_parser().parse_args(["run", "table2", "--fast"])
        assert args.fast is True

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_prints_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert sorted(out) == sorted(EXPERIMENTS)

    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "RF mixer" in out

    def test_run_fig9_fast(self, capsys):
        assert main(["run", "fig9", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "after normalization" in out

    def test_run_uncertainty_fast(self, capsys):
        assert main(["run", "uncertainty", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "0.3" in out

    def test_registry_covers_all_paper_artifacts(self):
        for name in ("table1", "table2", "table3", "fig7", "fig8", "fig9",
                     "fig10", "fig13"):
            assert name in EXPERIMENTS

    def test_registry_includes_extensions(self):
        assert "spot_nf" in EXPERIMENTS
        assert "resources" in EXPERIMENTS

    def test_run_all_accepted_by_parser(self):
        args = build_parser().parse_args(["run", "all", "--fast"])
        assert args.experiment == "all"
