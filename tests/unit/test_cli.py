"""Tests for the repro CLI."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command(self):
        args = build_parser().parse_args(["run", "table1"])
        assert args.experiment == "table1"
        assert args.fast is False

    def test_fast_flag(self):
        args = build_parser().parse_args(["run", "table2", "--fast"])
        assert args.fast is True

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_prints_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert sorted(out) == sorted(EXPERIMENTS)

    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "RF mixer" in out

    def test_run_fig9_fast(self, capsys):
        assert main(["run", "fig9", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "after normalization" in out

    def test_run_uncertainty_fast(self, capsys):
        assert main(["run", "uncertainty", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "0.3" in out

    def test_registry_covers_all_paper_artifacts(self):
        for name in ("table1", "table2", "table3", "fig7", "fig8", "fig9",
                     "fig10", "fig13"):
            assert name in EXPERIMENTS

    def test_registry_includes_extensions(self):
        assert "spot_nf" in EXPERIMENTS
        assert "resources" in EXPERIMENTS

    def test_run_all_accepted_by_parser(self):
        args = build_parser().parse_args(["run", "all", "--fast"])
        assert args.experiment == "all"


class TestBackendOptions:
    def test_defaults(self):
        args = build_parser().parse_args(["run", "table1"])
        assert args.backend == "serial"
        assert args.workers is None

    def test_backend_and_workers_parsed(self):
        args = build_parser().parse_args(
            ["run", "production", "--backend", "process", "--workers", "2"]
        )
        assert args.backend == "process"
        assert args.workers == 2

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "production", "--backend", "threads"]
            )

    def test_workers_without_process_backend_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "production", "--fast", "--workers", "2"])

    def test_registry_includes_scheduler_experiments(self):
        for name in (
            "production",
            "record_length",
            "robustness",
            "gain_sensitivity",
        ):
            assert name in EXPERIMENTS

    def test_run_production_fast(self, capsys):
        assert main(["run", "production", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Production screen" in out
        assert "plan group" in out

    def test_run_gain_sensitivity_fast_process(self, capsys):
        assert (
            main(
                [
                    "run",
                    "gain_sensitivity",
                    "--fast",
                    "--backend",
                    "process",
                    "--workers",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Gain-drift sensitivity" in out
