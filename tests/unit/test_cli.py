"""Tests for the repro CLI."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command(self):
        args = build_parser().parse_args(["run", "table1"])
        assert args.experiment == "table1"
        assert args.fast is False

    def test_fast_flag(self):
        args = build_parser().parse_args(["run", "table2", "--fast"])
        assert args.fast is True

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_prints_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert sorted(out) == sorted(EXPERIMENTS)

    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "RF mixer" in out

    def test_run_fig9_fast(self, capsys):
        assert main(["run", "fig9", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "after normalization" in out

    def test_run_uncertainty_fast(self, capsys):
        assert main(["run", "uncertainty", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "0.3" in out

    def test_registry_covers_all_paper_artifacts(self):
        for name in ("table1", "table2", "table3", "fig7", "fig8", "fig9",
                     "fig10", "fig13"):
            assert name in EXPERIMENTS

    def test_registry_includes_extensions(self):
        assert "spot_nf" in EXPERIMENTS
        assert "resources" in EXPERIMENTS

    def test_run_all_accepted_by_parser(self):
        args = build_parser().parse_args(["run", "all", "--fast"])
        assert args.experiment == "all"


class TestBackendOptions:
    def test_defaults(self):
        args = build_parser().parse_args(["run", "table1"])
        assert args.backend == "serial"
        assert args.workers is None

    def test_backend_and_workers_parsed(self):
        args = build_parser().parse_args(
            ["run", "production", "--backend", "process", "--workers", "2"]
        )
        assert args.backend == "process"
        assert args.workers == 2

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "production", "--backend", "threads"]
            )

    def test_workers_without_process_backend_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "production", "--fast", "--workers", "2"])

    def test_registry_includes_scheduler_experiments(self):
        for name in (
            "production",
            "record_length",
            "robustness",
            "gain_sensitivity",
        ):
            assert name in EXPERIMENTS

    def test_run_production_fast(self, capsys):
        assert main(["run", "production", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Production screen" in out
        assert "plan group" in out

    def test_run_gain_sensitivity_fast_process(self, capsys):
        assert (
            main(
                [
                    "run",
                    "gain_sensitivity",
                    "--fast",
                    "--backend",
                    "process",
                    "--workers",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Gain-drift sensitivity" in out


class TestStoreOptions:
    def test_store_resume_json_parsed(self):
        args = build_parser().parse_args(
            ["run", "production", "--store", "/tmp/s", "--resume", "--json"]
        )
        assert args.store == "/tmp/s"
        assert args.resume is True
        assert args.as_json is True

    def test_resume_requires_store(self):
        with pytest.raises(SystemExit):
            main(["run", "production", "--fast", "--resume"])

    def test_json_restricted_to_supported_experiments(self):
        with pytest.raises(SystemExit):
            main(["run", "table1", "--json"])

    def test_resume_restricted_to_supported_experiments(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                ["run", "table1", "--resume", "--store", str(tmp_path / "s")]
            )

    def test_registry_includes_retest(self):
        assert "production_retest" in EXPERIMENTS

    def test_run_production_json(self, capsys):
        import json

        assert main(["run", "production", "--fast", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "production"
        assert payload["n_devices"] == 8
        assert len(payload["measured_nf_db"]) == 8
        assert {"n_pass", "n_fail", "n_escapes"} <= set(payload["rows"][0])

    def test_run_robustness_json(self, capsys):
        import json

        assert main(["run", "robustness", "--fast", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "robustness"
        assert payload["points"]

    def test_run_with_store_caches_and_resumes(self, tmp_path, capsys):
        import json

        store_dir = str(tmp_path / "nfstore")
        argv = ["run", "production", "--fast", "--store", store_dir, "--json"]
        assert main(argv) == 0
        cold = json.loads(capsys.readouterr().out)
        assert main(argv + ["--resume"]) == 0
        resumed = json.loads(capsys.readouterr().out)
        # Resumed values reproduce the stored screen bit for bit.
        assert resumed["measured_nf_db"] == cold["measured_nf_db"]
        assert resumed["rows"] == cold["rows"]


class TestStoreSubcommand:
    def _populate(self, store_dir):
        assert (
            main(["run", "production", "--fast", "--store", store_dir]) == 0
        )

    def test_ls_and_info(self, tmp_path, capsys):
        store_dir = str(tmp_path / "s")
        self._populate(store_dir)
        capsys.readouterr()
        assert main(["store", "ls", store_dir]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines and all("results" in l or "outcomes" in l for l in lines)

        import json

        assert main(["store", "info", store_dir]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["n_entries"] == len(lines)
        assert summary["kinds"]["results"]["n_entries"] >= 8

        key = lines[0].split()[0]
        assert main(["store", "info", store_dir, key[:12]]) == 0
        entry = json.loads(capsys.readouterr().out)
        assert entry["key"] == key
        assert entry["entries"][0]["meta"]["schema"] >= 1

    def test_info_ambiguous_prefix_fails(self, tmp_path, capsys):
        store_dir = str(tmp_path / "s")
        self._populate(store_dir)
        capsys.readouterr()
        assert main(["store", "info", store_dir, ""]) == 1

    def test_gc_clean_store_removes_nothing(self, tmp_path, capsys):
        store_dir = str(tmp_path / "s")
        self._populate(store_dir)
        capsys.readouterr()
        import json

        assert main(["store", "gc", store_dir]) == 0
        removed = json.loads(capsys.readouterr().out)
        assert removed["n_removed"] == 0

    def test_gc_all_empties_store(self, tmp_path, capsys):
        store_dir = str(tmp_path / "s")
        self._populate(store_dir)
        capsys.readouterr()
        import json

        assert main(["store", "gc", store_dir, "--all"]) == 0
        removed = json.loads(capsys.readouterr().out)
        assert removed["n_removed"] > 0
        assert main(["store", "info", store_dir]) == 0
        assert json.loads(capsys.readouterr().out)["n_entries"] == 0

    def test_store_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["store"])


class TestChaosSubcommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.plan == "transient"
        assert args.seed == 0
        assert args.backend == "process"
        assert args.max_retries is None
        assert args.task_timeout is None

    def test_retry_flags_parsed(self):
        args = build_parser().parse_args(
            ["chaos", "--max-retries", "5", "--task-timeout", "2.5"]
        )
        assert args.max_retries == 5
        assert args.task_timeout == 2.5

    def test_run_accepts_retry_flags(self, capsys):
        assert (
            main(
                [
                    "run",
                    "production",
                    "--fast",
                    "--max-retries",
                    "1",
                ]
            )
            == 0
        )
        assert "production screen" in capsys.readouterr().out.lower()

    def test_unknown_plan_rejected(self, capsys):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["chaos", "--plan", "nope", "--fast"])

    def test_chaos_serial_identity(self, tmp_path, capsys):
        # Serial backend keeps this test cheap: store and shm
        # faults still fire, and the faulted outcomes must match the
        # clean reference exactly (exit code 0).
        import json

        rc = main(
            [
                "chaos",
                "--plan",
                "store",
                "--seed",
                "3",
                "--backend",
                "serial",
                "--fast",
                "--store",
                str(tmp_path / "chaos"),
            ]
        )
        out = capsys.readouterr().out
        doc = json.loads(out[out.index("{"):])
        assert rc == 0
        assert doc["identical"] is True
        assert doc["injections"]["n_injected"] > 0
        assert set(doc["runs"]) == {"faulted", "faulted_resume"}


class TestKernelBackendOptions:
    def test_defaults_to_process_global(self):
        args = build_parser().parse_args(["run", "table1"])
        assert args.kernel_backend is None
        assert args.fft_backend is None

    def test_flags_parsed(self):
        args = build_parser().parse_args(
            [
                "run",
                "production",
                "--kernel-backend",
                "tuned",
                "--fft-backend",
                "numpy",
            ]
        )
        assert args.kernel_backend == "tuned"
        assert args.fft_backend == "numpy"

    def test_unknown_kernel_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "production", "--kernel-backend", "cuda"]
            )

    def test_numba_without_numba_errors_cleanly(self):
        from repro.kernels import available_backends

        if "numba" in available_backends():
            pytest.skip("numba installed on this host")
        # Parses (numba is a legal choice) but fails cleanly at
        # application time with a parser error, not a traceback.
        with pytest.raises(SystemExit):
            main(["run", "table1", "--kernel-backend", "numba"])

    def test_run_with_explicit_backends(self, capsys):
        from repro.dsp.fft_backend import set_fft_backend
        from repro.kernels import get_kernel_backend, set_kernel_backend

        before = get_kernel_backend()
        try:
            assert (
                main(
                    [
                        "run",
                        "table1",
                        "--kernel-backend",
                        "reference",
                        "--fft-backend",
                        "numpy",
                    ]
                )
                == 0
            )
            assert get_kernel_backend() == "reference"
        finally:
            set_kernel_backend(before)
            set_fft_backend("numpy")
        assert "Table 1" in capsys.readouterr().out

    def test_chaos_accepts_backend_flags(self):
        args = build_parser().parse_args(
            ["chaos", "--kernel-backend", "reference"]
        )
        assert args.kernel_backend == "reference"


class TestBenchCommand:
    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench"])

    def test_envinfo_prints_json(self, capsys):
        import json

        assert main(["bench", "envinfo"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kernel_backend"]
        assert doc["fft_backend"] in ("numpy", "scipy")
        assert "numpy" in doc
        assert "kernel_backends_available" in doc
        assert doc["kernels"]
        assert "numba" in doc


class TestStoreScaleSubcommands:
    """PR 8: indexed ls/info, compact, evict, reindex, --cache-budget."""

    def _populate(self, store_dir):
        assert (
            main(["run", "production", "--fast", "--store", store_dir]) == 0
        )

    def test_ls_uses_index_and_prints_stats_on_stderr(
        self, tmp_path, capsys
    ):
        store_dir = str(tmp_path / "s")
        self._populate(store_dir)
        capsys.readouterr()
        assert main(["store", "ls", store_dir]) == 0
        captured = capsys.readouterr()
        # stdout stays one parseable entry per line...
        assert all(
            len(line.split()) >= 3
            for line in captured.out.strip().splitlines()
        )
        # ...and the index stats ride on stderr.
        assert "# index:" in captured.err
        assert "via index" in captured.err
        assert "segment" in captured.err

    def test_ls_without_index_warns_and_walks(self, tmp_path, capsys):
        import shutil

        store_dir = str(tmp_path / "s")
        self._populate(store_dir)
        shutil.rmtree(tmp_path / "s" / "index")
        capsys.readouterr()
        assert main(["store", "ls", store_dir]) == 0
        captured = capsys.readouterr()
        assert captured.out.strip()  # the walk still lists everything
        assert "no persistent index" in captured.err
        assert "store reindex" in captured.err

    def test_info_embeds_index_stats(self, tmp_path, capsys):
        import json

        store_dir = str(tmp_path / "s")
        self._populate(store_dir)
        capsys.readouterr()
        assert main(["store", "info", store_dir]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["enumerated_via"] == "index"
        assert summary["index"]["n_entries"] == summary["n_entries"]
        assert summary["index"]["n_segments"] >= 1
        assert summary["index"]["payload_bytes"] == summary["total_bytes"]

    def test_compact_then_reads_unchanged(self, tmp_path, capsys):
        import json

        store_dir = str(tmp_path / "s")
        self._populate(store_dir)
        capsys.readouterr()
        assert main(["store", "ls", store_dir]) == 0
        before = capsys.readouterr().out
        assert main(["store", "compact", store_dir]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["n_files_after"] <= stats["n_files_before"]
        assert main(["store", "ls", store_dir]) == 0
        assert capsys.readouterr().out == before

    def test_evict_respects_budget_and_pins(self, tmp_path, capsys):
        import json

        store_dir = str(tmp_path / "s")
        self._populate(store_dir)
        capsys.readouterr()
        assert main(["store", "evict", store_dir, "--budget", "1"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["n_evicted"] > 0
        assert stats["n_pinned"] >= 1  # the production outcome survives
        assert main(["store", "info", store_dir]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["kinds"]["outcomes"]["n_entries"] == 1
        assert summary["kinds"]["results"]["n_entries"] == 0

    def test_evict_unpin_outcomes_empties_store(self, tmp_path, capsys):
        import json

        store_dir = str(tmp_path / "s")
        self._populate(store_dir)
        capsys.readouterr()
        assert (
            main(
                [
                    "store",
                    "evict",
                    store_dir,
                    "--budget",
                    "0",
                    "--unpin-outcomes",
                ]
            )
            == 0
        )
        stats = json.loads(capsys.readouterr().out)
        assert stats["total_bytes_after"] == 0

    def test_evict_requires_budget(self, tmp_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["store", "evict", str(tmp_path)])

    def test_reindex_rebuilds_and_verifies(self, tmp_path, capsys):
        import json
        import shutil

        store_dir = str(tmp_path / "s")
        self._populate(store_dir)
        shutil.rmtree(tmp_path / "s" / "index")
        capsys.readouterr()
        assert main(["store", "reindex", store_dir]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["n_entries"] > 0
        assert stats["verify"]["consistent"] is True

    def test_cache_budget_parsed(self):
        args = build_parser().parse_args(
            [
                "run",
                "production",
                "--store",
                "/tmp/s",
                "--cache-budget",
                "1000000",
            ]
        )
        assert args.cache_budget == 1_000_000

    def test_cache_budget_requires_store(self):
        with pytest.raises(SystemExit):
            main(["run", "production", "--fast", "--cache-budget", "1000"])

    def test_run_with_cache_budget_bounds_store(self, tmp_path, capsys):
        import json

        store_dir = str(tmp_path / "s")
        budget = 150_000
        assert (
            main(
                [
                    "run",
                    "production",
                    "--fast",
                    "--store",
                    store_dir,
                    "--cache-budget",
                    str(budget),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["store", "info", store_dir]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["total_bytes"] <= budget
        assert summary["kinds"]["outcomes"]["n_entries"] == 1


class TestServiceCommands:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve", "--store", "s"])
        assert args.command == "serve"
        assert args.store == "s"
        assert args.backend == "process"
        assert args.max_depth == 64
        assert args.max_group_devices == 8
        assert args.drain_grace == 30.0
        assert args.no_fsync is False

    def test_submit_parser(self):
        args = build_parser().parse_args(
            [
                "submit",
                "lot",
                "--socket",
                "svc.sock",
                "--param",
                "n_devices=4",
                "--deadline",
                "60",
                "--wait",
                "--json",
            ]
        )
        assert args.kind == "lot"
        assert args.param == ["n_devices=4"]
        assert args.deadline == 60.0
        assert args.wait is True
        assert args.as_json is True

    def test_submit_kind_restricted(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "destroy"])

    def test_submit_requires_address(self, capsys):
        assert main(["submit", "measure"]) == 2
        assert "--socket" in capsys.readouterr().err

    def test_submit_rejects_bad_params_json(self, capsys):
        assert (
            main(
                [
                    "submit",
                    "measure",
                    "--socket",
                    "s",
                    "--params",
                    "{not json",
                ]
            )
            == 2
        )
        assert "bad --params JSON" in capsys.readouterr().err

    def test_submit_rejects_bad_param_pair(self, capsys):
        assert (
            main(
                ["submit", "measure", "--socket", "s", "--param", "seed"]
            )
            == 2
        )
        assert "KEY=VALUE" in capsys.readouterr().err

    def test_submit_unreachable_daemon_fails(self, tmp_path, capsys):
        rc = main(
            [
                "submit",
                "measure",
                "--socket",
                str(tmp_path / "nothing.sock"),
                "--timeout",
                "2",
            ]
        )
        assert rc == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_submit_round_trip_against_daemon(self, tmp_path, capsys):
        import json
        import queue
        import threading

        from repro.service import MeasurementService, ServiceConfig

        config = ServiceConfig(
            store_root=str(tmp_path / "store"),
            backend="serial",
            journal_fsync=False,
        )
        service = MeasurementService(config)
        ready: "queue.Queue" = queue.Queue()
        thread = threading.Thread(
            target=lambda: service.run(ready.put), daemon=True
        )
        thread.start()
        socket_path = ready.get(timeout=30.0)["socket"]
        try:
            rc = main(
                [
                    "submit",
                    "measure",
                    "--socket",
                    socket_path,
                    "--param",
                    "seed=3",
                    "--param",
                    "n_samples=16384",
                    "--wait",
                    "--json",
                    "--timeout",
                    "120",
                ]
            )
            ack = json.loads(capsys.readouterr().out)
            assert rc == 0
            assert ack["status"] == "accepted"
            assert ack["job"]["state"] == "ok"
        finally:
            service.request_drain()
            thread.join(timeout=60.0)
