"""Tests for repro.instruments (generator, scope, testbench)."""

import numpy as np
import pytest

from repro.analog.opamp import OPAMP_LIBRARY, OpAmpNoiseModel
from repro.errors import ConfigurationError
from repro.instruments.function_generator import FunctionGenerator
from repro.instruments.scope import LogicScope
from repro.instruments.testbench import (
    PrototypeTestbench,
    build_prototype_testbench,
)
from repro.signals.waveform import Waveform

FS = 32768.0


class TestFunctionGenerator:
    def test_sine_vpp(self):
        gen = FunctionGenerator("sine", 1000.0, vpp=2.0)
        w = gen.output(32768, FS)
        assert w.peak() == pytest.approx(1.0, rel=1e-3)

    def test_square_levels(self):
        gen = FunctionGenerator("square", 1000.0, vpp=4.0)
        w = gen.output(1000, FS)
        assert set(np.unique(w.samples)) == {-2.0, 2.0}

    def test_noise_rms_from_vpp(self, rng):
        gen = FunctionGenerator("noise", vpp=6.0)
        w = gen.output(100000, FS, rng)
        assert w.std() == pytest.approx(1.0, rel=0.03)

    def test_offset(self):
        gen = FunctionGenerator("sine", 1000.0, vpp=2.0, offset_v=1.5)
        w = gen.output(32768, FS)
        assert w.mean() == pytest.approx(1.5, abs=1e-3)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            FunctionGenerator("triangle", 100.0)

    def test_sine_needs_frequency(self):
        with pytest.raises(ConfigurationError):
            FunctionGenerator("sine", 0.0)

    def test_noise_ignores_frequency(self):
        gen = FunctionGenerator("noise", vpp=1.0)
        assert gen.noise_rms == pytest.approx(1.0 / 6.0)


class TestLogicScope:
    def test_passthrough_within_limit(self):
        scope = LogicScope(100)
        w = Waveform(np.ones(50), FS)
        out = scope.capture(w)
        assert out == w
        assert scope.last_truncated is False

    def test_truncates_long_records(self):
        scope = LogicScope(100)
        w = Waveform(np.arange(250, dtype=float), FS)
        out = scope.capture(w)
        assert len(out) == 100
        assert scope.last_truncated is True
        assert out.samples[-1] == 99.0

    def test_rejects_zero_length(self):
        with pytest.raises(ConfigurationError):
            LogicScope(0)


class TestBuildPrototype:
    def test_default_build(self):
        bench = build_prototype_testbench(n_samples=2**14)
        assert bench.dut.gain == pytest.approx(101.0)
        assert bench.post_amplifier.gain == pytest.approx(1156.0)
        assert bench.reference.frequency_hz == 3000.0
        assert bench.noise_source.t_hot_k == 2900.0

    def test_reference_inside_recommended_window(self):
        bench = build_prototype_testbench(n_samples=2**14)
        assert 0.1 <= bench.reference_level_ratio("cold") <= 0.4
        assert 0.05 <= bench.reference_level_ratio("hot") <= 0.4

    def test_all_library_opamps_accepted(self):
        for name in OPAMP_LIBRARY:
            bench = build_prototype_testbench(name, n_samples=2**14)
            assert bench.dut.opamp.name == name

    def test_custom_opamp_model(self):
        model = OpAmpNoiseModel("custom", 5e-9, 0.0, gbw_hz=8e6)
        bench = build_prototype_testbench(model, n_samples=2**14)
        assert bench.dut.opamp.name == "custom"

    def test_unknown_opamp_raises(self):
        with pytest.raises(ConfigurationError):
            build_prototype_testbench("LM741", n_samples=2**14)

    def test_invalid_reference_ratio_raises(self):
        with pytest.raises(ConfigurationError):
            build_prototype_testbench(reference_ratio=1.5, n_samples=2**14)


class TestTestbenchBehaviour:
    def test_hot_output_larger_than_cold(self):
        bench = build_prototype_testbench(n_samples=2**15)
        hot = bench.analog_output("hot", rng=1)
        cold = bench.analog_output("cold", rng=2)
        assert hot.rms() > 1.5 * cold.rms()

    def test_predicted_rms_matches_simulation(self):
        bench = build_prototype_testbench(n_samples=2**17)
        for state in ("hot", "cold"):
            sim_rms = bench.analog_output(state, rng=3).rms()
            assert bench.predicted_output_rms(state) == pytest.approx(
                sim_rms, rel=0.1
            )

    def test_acquire_bitstream_is_pm1(self):
        bench = build_prototype_testbench(n_samples=2**14)
        bits = bench.acquire_bitstream("cold", rng=4)
        assert set(np.unique(bits.samples)) <= {-1.0, 1.0}
        assert len(bits) == 2**14

    def test_expected_nf_reasonable_for_op27(self):
        bench = build_prototype_testbench("OP27", n_samples=2**14)
        nf = bench.expected_nf_db(500.0, 1500.0)
        assert 2.0 < nf < 5.0

    def test_source_resistance_mismatch_rejected(self):
        from repro.analog.amplifier import NonInvertingAmplifier
        from repro.analog.noise_source import CalibratedNoiseSource
        from repro.digitizer.digitizer import OneBitDigitizer
        from repro.signals.sources import SineSource

        src = CalibratedNoiseSource(600.0, 2900.0)
        dut = NonInvertingAmplifier(
            OPAMP_LIBRARY["OP27"], 10000.0, 100.0, 1000.0
        )
        post = NonInvertingAmplifier(
            OPAMP_LIBRARY["OP27"], 115500.0, 100.0, 100.0
        )
        with pytest.raises(ConfigurationError):
            PrototypeTestbench(
                src, dut, post, SineSource(3000.0, 0.01), OneBitDigitizer(),
                FS, 2**14,
            )

    def test_make_estimator_calibration(self):
        bench = build_prototype_testbench(n_samples=2**14)
        est = bench.make_estimator()
        assert est.t_hot_k == 2900.0
        assert est.t_cold_k == 290.0
        assert est.config.reference_frequency_hz == 3000.0
