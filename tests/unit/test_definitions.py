"""Tests for repro.core.definitions (paper eqs 1-9)."""

import numpy as np
import pytest

from repro.core.definitions import (
    YFactorResult,
    enr_db,
    f_to_nf,
    friis_cascade_factor,
    nf_to_f,
    noise_factor_from_y,
    noise_factor_from_y_powers,
    noise_figure_from_y,
    noise_temperature_from_factor,
    snr_db_from_waveforms,
    y_factor_expected,
)
from repro.errors import ConfigurationError, MeasurementError
from repro.signals.waveform import Waveform


class TestConversions:
    def test_table1_values(self):
        # Paper Table 1: NF 0/3/10 dB <-> F 1/2/10.
        assert nf_to_f(0.0) == 1.0
        assert nf_to_f(3.0103) == pytest.approx(2.0, rel=1e-4)
        assert nf_to_f(10.0) == pytest.approx(10.0)

    def test_roundtrip(self):
        for f in (1.0, 1.5, 2.0, 10.0, 41.7):
            assert nf_to_f(f_to_nf(f)) == pytest.approx(f)

    def test_f_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            f_to_nf(0.9)

    def test_negative_nf_rejected(self):
        with pytest.raises(ConfigurationError):
            nf_to_f(-0.1)

    def test_noise_temperature(self):
        assert noise_temperature_from_factor(2.0) == pytest.approx(290.0)
        assert noise_temperature_from_factor(1.0) == 0.0

    def test_enr_2900k(self):
        assert enr_db(2900.0) == pytest.approx(9.542, abs=1e-3)

    def test_enr_requires_hot_above_t0(self):
        with pytest.raises(ConfigurationError):
            enr_db(290.0)


class TestSnr:
    def test_snr_from_waveforms(self):
        signal = Waveform([1.0, -1.0], 10.0)
        noise = Waveform([0.1, -0.1], 10.0)
        assert snr_db_from_waveforms(signal, noise) == pytest.approx(20.0)

    def test_zero_noise_rejected(self):
        with pytest.raises(MeasurementError):
            snr_db_from_waveforms(
                Waveform([1.0], 10.0), Waveform([0.0], 10.0)
            )


class TestYFactorEquations:
    def test_forward_model_paper_table2(self):
        # F=10 DUT with Th=10000, Tc=1000 -> Y = 12610/3610.
        y = y_factor_expected(10.0, 10000.0, 1000.0)
        assert y == pytest.approx(12610.0 / 3610.0)

    def test_eq8_inverts_forward_model(self):
        for f in (1.2, 2.0, 10.0, 41.7):
            y = y_factor_expected(f, 2900.0, 290.0)
            assert noise_factor_from_y(y, 2900.0, 290.0) == pytest.approx(f)

    def test_eq8_paper_table2_value(self):
        # The paper's measured mean-square ratio 3.4866 -> F = 10.03.
        f = noise_factor_from_y(3.4866, 10000.0, 1000.0)
        assert f == pytest.approx(10.03, abs=0.01)

    def test_cold_at_t0_reduces_to_enr_form(self):
        # With Tc = T0: F = ENR_lin / (Y-1).
        y = 4.0
        f = noise_factor_from_y(y, 2900.0, 290.0)
        assert f == pytest.approx((2900.0 / 290.0 - 1.0) / (y - 1.0))

    def test_eq9_matches_eq8_with_proportional_powers(self):
        # Powers proportional to temperatures give identical results.
        y = 3.4866
        f8 = noise_factor_from_y(y, 10000.0, 1000.0, 290.0)
        f9 = noise_factor_from_y_powers(y, 10000.0, 1000.0, 290.0)
        assert f9 == pytest.approx(f8)

    def test_y_below_one_rejected(self):
        with pytest.raises(MeasurementError):
            noise_factor_from_y(0.9, 2900.0, 290.0)

    def test_impossible_y_rejected(self):
        # A noiseless DUT gives Y = Th/Tc = 10; anything larger is
        # unphysical.
        with pytest.raises(MeasurementError):
            noise_factor_from_y(11.0, 2900.0, 290.0)

    def test_noise_figure_from_y(self):
        y = y_factor_expected(2.0, 2900.0, 290.0)
        assert noise_figure_from_y(y, 2900.0, 290.0) == pytest.approx(
            3.0103, abs=1e-3
        )

    def test_higher_f_gives_lower_y(self):
        ys = [
            y_factor_expected(f, 2900.0, 290.0) for f in (1.5, 2.0, 5.0, 10.0)
        ]
        assert ys == sorted(ys, reverse=True)


class TestYFactorResult:
    def test_from_y_populates_fields(self):
        y = y_factor_expected(2.0, 2900.0, 290.0)
        res = YFactorResult.from_y(y, 2900.0, 290.0, p_hot=2.0, p_cold=1.0)
        assert res.noise_factor == pytest.approx(2.0)
        assert res.noise_figure_db == pytest.approx(3.0103, abs=1e-3)
        assert res.noise_temperature_k == pytest.approx(290.0)
        assert res.p_hot == 2.0


class TestFriis:
    def test_two_stage(self):
        f = friis_cascade_factor([2.0, 11.0], [100.0, 10.0])
        assert f == pytest.approx(2.1)

    def test_matches_paper_claim_first_stage_dominates(self):
        f = friis_cascade_factor([2.0, 100.0], [101.0**2, 10.0])
        assert 10 * np.log10(f) == pytest.approx(10 * np.log10(2.0), abs=0.05)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            friis_cascade_factor([], [])
        with pytest.raises(ConfigurationError):
            friis_cascade_factor([2.0], [])
        with pytest.raises(ConfigurationError):
            friis_cascade_factor([0.5], [10.0])
        with pytest.raises(ConfigurationError):
            friis_cascade_factor([2.0], [0.0])
