"""Tests for repro.analog.opamp."""

import numpy as np
import pytest

from repro.analog.opamp import OPAMP_LIBRARY, OpAmpNoiseModel
from repro.constants import FOUR_K_T0, db_to_linear
from repro.errors import ConfigurationError


class TestDensities:
    def test_white_region_flat(self):
        op = OpAmpNoiseModel("x", 3e-9, 0.4e-12)
        d = op.en_density(np.array([1e3, 1e4, 1e5]))
        assert np.allclose(d, 9e-18)

    def test_one_over_f_doubles_at_corner(self):
        op = OpAmpNoiseModel("x", 3e-9, 0.0, en_corner_hz=100.0)
        assert op.en_density(100.0) == pytest.approx(2 * 9e-18)

    def test_current_noise_corner(self):
        op = OpAmpNoiseModel("x", 0.0, 1e-12, in_corner_hz=140.0)
        assert op.in_density(140.0) == pytest.approx(2e-24)

    def test_low_frequency_clamped(self):
        op = OpAmpNoiseModel("x", 1e-9, 0.0, en_corner_hz=10.0)
        assert np.isfinite(op.en_density(0.0))

    def test_with_name(self):
        op = OPAMP_LIBRARY["OP27"].with_name("renamed")
        assert op.name == "renamed"
        assert op.en_v_per_rthz == OPAMP_LIBRARY["OP27"].en_v_per_rthz


class TestValidation:
    def test_rejects_negative_en(self):
        with pytest.raises(ConfigurationError):
            OpAmpNoiseModel("x", -1e-9, 0.0)

    def test_rejects_negative_in(self):
        with pytest.raises(ConfigurationError):
            OpAmpNoiseModel("x", 1e-9, -1e-12)

    def test_rejects_negative_corner(self):
        with pytest.raises(ConfigurationError):
            OpAmpNoiseModel("x", 1e-9, 0.0, en_corner_hz=-1.0)

    def test_rejects_zero_gbw(self):
        with pytest.raises(ConfigurationError):
            OpAmpNoiseModel("x", 1e-9, 0.0, gbw_hz=0.0)


class TestLibrary:
    def test_contains_paper_devices(self):
        assert set(OPAMP_LIBRARY) == {"OP27", "OP07", "TL081", "CA3140"}

    def test_noise_ordering_matches_paper(self):
        # The paper's Table 3 NF ordering follows the en ordering.
        ens = [
            OPAMP_LIBRARY[n].en_v_per_rthz
            for n in ("OP27", "OP07", "TL081", "CA3140")
        ]
        assert ens == sorted(ens)

    def test_op27_is_quiet(self):
        assert OPAMP_LIBRARY["OP27"].en_v_per_rthz <= 3.5e-9


class TestFromExpectedNf:
    def test_achieves_target(self):
        rs = 600.0
        op = OpAmpNoiseModel.from_expected_nf(6.0, rs)
        factor = 1.0 + op.en_v_per_rthz**2 / (FOUR_K_T0 * rs)
        assert 10 * np.log10(factor) == pytest.approx(6.0, abs=1e-9)

    def test_accounts_for_feedback_network(self):
        rs = 600.0
        rp = 99.0
        op = OpAmpNoiseModel.from_expected_nf(6.0, rs, feedback_parallel_ohm=rp)
        total = op.en_v_per_rthz**2 + FOUR_K_T0 * rp
        factor = 1.0 + total / (FOUR_K_T0 * rs)
        assert 10 * np.log10(factor) == pytest.approx(6.0, abs=1e-9)

    def test_accounts_for_current_noise(self):
        rs = 10000.0
        in_a = 1e-12
        op = OpAmpNoiseModel.from_expected_nf(10.0, rs, in_a_per_rthz=in_a)
        total = op.en_v_per_rthz**2 + in_a**2 * rs**2
        factor = 1.0 + total / (FOUR_K_T0 * rs)
        assert 10 * np.log10(factor) == pytest.approx(10.0, abs=1e-9)

    def test_unreachable_target_raises(self):
        # Huge current noise into a big source resistor exceeds 0.1 dB NF.
        with pytest.raises(ConfigurationError):
            OpAmpNoiseModel.from_expected_nf(
                0.1, 10000.0, in_a_per_rthz=10e-12
            )

    def test_zero_db_target_needs_noiseless(self):
        op = OpAmpNoiseModel.from_expected_nf(0.0, 600.0)
        assert op.en_v_per_rthz == 0.0

    def test_rejects_negative_nf(self):
        with pytest.raises(ConfigurationError):
            OpAmpNoiseModel.from_expected_nf(-1.0, 600.0)

    def test_rejects_zero_source_resistance(self):
        with pytest.raises(ConfigurationError):
            OpAmpNoiseModel.from_expected_nf(3.0, 0.0)

    def test_synthesized_is_white(self):
        op = OpAmpNoiseModel.from_expected_nf(6.0, 600.0)
        assert op.en_corner_hz == 0.0
