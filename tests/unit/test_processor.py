"""Tests for repro.soc.processor."""

import pytest

from repro.errors import ConfigurationError
from repro.soc.processor import DSPProcessor


class TestAccounting:
    def test_starts_at_zero(self):
        assert DSPProcessor().total_cycles == 0

    def test_window_cost(self):
        proc = DSPProcessor(cycles_per_mac=2)
        proc.cost_window(1000)
        assert proc.total_cycles == 2000

    def test_fft_cost_power_of_two(self):
        proc = DSPProcessor(cycles_per_butterfly=6)
        proc.cost_fft(1024)
        assert proc.total_cycles == 6 * (512 * 10)

    def test_fft_cost_non_power_of_two_rounds_up(self):
        proc = DSPProcessor(cycles_per_butterfly=6)
        proc.cost_fft(1000)  # charged as 1024
        assert proc.total_cycles == 6 * (512 * 10)

    def test_magnitude_accumulate(self):
        proc = DSPProcessor()
        proc.cost_magnitude_accumulate(513)
        assert proc.total_cycles == 2 * 513

    def test_band_power(self):
        proc = DSPProcessor()
        proc.cost_band_power(250)
        assert proc.total_cycles == 250

    def test_welch_cost_composition(self):
        proc = DSPProcessor()
        total = proc.cost_welch(10000, 1000, overlap=0.0)
        # 10 segments x (window + fft + mag); the 1000-point FFT is
        # charged as the next power of two (1024 -> 512 x 10 butterflies).
        per_segment = 1000 + 6 * (512 * 10) + 2 * 501
        assert total == 10 * per_segment
        assert proc.total_cycles == total

    def test_welch_overlap_increases_segments(self):
        a = DSPProcessor()
        b = DSPProcessor()
        a.cost_welch(10000, 1000, overlap=0.0)
        b.cost_welch(10000, 1000, overlap=0.5)
        assert b.total_cycles > a.total_cycles

    def test_execution_time(self):
        proc = DSPProcessor(clock_hz=1e6)
        proc.cost_band_power(1000)
        assert proc.execution_time_s == pytest.approx(1e-3)

    def test_breakdown_aggregates_labels(self):
        proc = DSPProcessor()
        proc.cost_band_power(10, label="x")
        proc.cost_band_power(20, label="x")
        proc.cost_band_power(5, label="y")
        assert proc.breakdown() == {"x": 30, "y": 5}

    def test_reset(self):
        proc = DSPProcessor()
        proc.cost_window(100)
        proc.reset()
        assert proc.total_cycles == 0
        assert proc.operations() == []


class TestValidation:
    def test_rejects_zero_clock(self):
        with pytest.raises(ConfigurationError):
            DSPProcessor(clock_hz=0.0)

    def test_rejects_zero_mac_cost(self):
        with pytest.raises(ConfigurationError):
            DSPProcessor(cycles_per_mac=0)

    def test_rejects_zero_size(self):
        with pytest.raises(ConfigurationError):
            DSPProcessor().cost_fft(0)

    def test_welch_validates_lengths(self):
        with pytest.raises(ConfigurationError):
            DSPProcessor().cost_welch(100, 1000)

    def test_welch_validates_overlap(self):
        with pytest.raises(ConfigurationError):
            DSPProcessor().cost_welch(10000, 1000, overlap=1.5)
