"""Tests for repro.core.normalization (the paper's key trick)."""

import numpy as np
import pytest

from repro.core.normalization import ReferenceNormalizer
from repro.dsp.spectrum import Spectrum
from repro.errors import ConfigurationError, MeasurementError


def spectrum_with_line(line_power, floor, f_line=100.0, df=1.0, n=1001):
    freqs = np.arange(n) * df
    psd = np.full(n, floor)
    psd[int(round(f_line / df))] += line_power / df
    return Spectrum(freqs, psd, enbw_hz=df)


def normalizer(**kwargs):
    defaults = dict(
        reference_frequency_hz=100.0,
        search_halfwidth_hz=10.0,
        harmonic_kind="odd",
    )
    defaults.update(kwargs)
    return ReferenceNormalizer(**defaults)


class TestValidation:
    def test_rejects_zero_reference_frequency(self):
        with pytest.raises(ConfigurationError):
            normalizer(reference_frequency_hz=0.0)

    def test_rejects_zero_search_halfwidth(self):
        with pytest.raises(ConfigurationError):
            normalizer(search_halfwidth_hz=0.0)

    def test_rejects_search_wider_than_reference(self):
        with pytest.raises(ConfigurationError):
            normalizer(search_halfwidth_hz=150.0)

    def test_rejects_unknown_harmonic_kind(self):
        with pytest.raises(ConfigurationError):
            normalizer(harmonic_kind="even")


class TestLinePower:
    def test_measures_line(self):
        s = spectrum_with_line(50.0, 0.0)
        f, p = normalizer().line_power(s)
        assert f == 100.0
        assert p == pytest.approx(50.0)

    def test_tracks_off_nominal_line(self):
        # Low-quality generator at 104 Hz instead of 100 Hz (section 6).
        s = spectrum_with_line(50.0, 0.0, f_line=104.0)
        f, p = normalizer().line_power(s)
        assert f == 104.0
        assert p == pytest.approx(50.0)


class TestExclusionZones:
    def test_odd_harmonics(self):
        s = spectrum_with_line(50.0, 1.0)
        zones = normalizer(harmonic_kind="odd").exclusion_zones(s)
        centers = [c for c, _ in zones]
        assert centers[:4] == [100.0, 300.0, 500.0, 700.0]

    def test_all_harmonics(self):
        s = spectrum_with_line(50.0, 1.0)
        zones = normalizer(harmonic_kind="all").exclusion_zones(s)
        centers = [c for c, _ in zones]
        assert centers[:4] == [100.0, 200.0, 300.0, 400.0]

    def test_none_keeps_only_fundamental(self):
        s = spectrum_with_line(50.0, 1.0)
        zones = normalizer(harmonic_kind="none").exclusion_zones(s)
        assert len(zones) == 1

    def test_zones_bounded_by_spectrum(self):
        s = spectrum_with_line(50.0, 1.0)
        zones = normalizer(harmonic_kind="all").exclusion_zones(s)
        assert all(c <= s.f_max + zones[0][1] for c, _ in zones)

    def test_explicit_fundamental_override(self):
        s = spectrum_with_line(50.0, 1.0)
        zones = normalizer().exclusion_zones(s, fundamental_hz=90.0)
        assert zones[0][0] == 90.0

    def test_custom_exclusion_halfwidth(self):
        s = spectrum_with_line(50.0, 1.0)
        zones = normalizer(exclusion_halfwidth_hz=7.5).exclusion_zones(s)
        assert zones[0][1] == 7.5


class TestNormalizePair:
    def test_unit_line_power_after_normalization(self):
        hot = spectrum_with_line(10.0, 1.0)
        cold = spectrum_with_line(40.0, 1.0)
        result = normalizer().normalize_pair(hot, cold)
        _, p_hot = normalizer().line_power(result.hot)
        _, p_cold = normalizer().line_power(result.cold)
        assert p_hot == pytest.approx(1.0, rel=1e-6)
        assert p_cold == pytest.approx(1.0, rel=1e-6)

    def test_scales_are_reciprocal_line_powers(self):
        hot = spectrum_with_line(10.0, 1.0)
        cold = spectrum_with_line(40.0, 1.0)
        result = normalizer().normalize_pair(hot, cold)
        assert result.scale_hot == pytest.approx(1.0 / 10.0, rel=0.05)
        assert result.scale_cold == pytest.approx(1.0 / 40.0, rel=0.05)

    def test_recovers_power_ratio(self):
        # Hot floor 4x cold floor but weaker line: after normalization
        # the floor ratio must be (4/1) regardless of the line powers.
        hot = spectrum_with_line(10.0, 4.0)
        cold = spectrum_with_line(40.0, 1.0)
        norm = normalizer()
        result = norm.normalize_pair(hot, cold)
        p_hot, p_cold = norm.normalized_band_powers(result, 150.0, 250.0)
        # Expected ratio: (4/10)/(1/40) = 16.
        assert p_hot / p_cold == pytest.approx(16.0, rel=0.05)

    def test_line_power_ratio_property(self):
        hot = spectrum_with_line(10.0, 1.0)
        cold = spectrum_with_line(40.0, 1.0)
        result = normalizer().normalize_pair(hot, cold)
        assert result.line_power_ratio == pytest.approx(4.0, rel=0.05)

    def test_inconsistent_line_frequencies_rejected(self):
        hot = spectrum_with_line(50.0, 0.0, f_line=100.0)
        cold = spectrum_with_line(50.0, 0.0, f_line=109.0)
        with pytest.raises(MeasurementError):
            normalizer().normalize_pair(hot, cold)

    def test_missing_line_rejected(self):
        flat = Spectrum(np.arange(1001.0), np.ones(1001))
        hot = spectrum_with_line(50.0, 1.0)
        with pytest.raises(MeasurementError):
            normalizer().normalize_pair(hot, flat)

    def test_band_powers_exclude_harmonics(self):
        # Place a harmonic spur inside the noise band; it must not leak
        # into the band power.
        hot = spectrum_with_line(10.0, 1.0)
        cold_psd = spectrum_with_line(40.0, 1.0)
        norm = normalizer(harmonic_kind="odd")
        result = norm.normalize_pair(hot, cold_psd)
        # Band 250-350 contains the 3rd harmonic at 300 Hz.  Equal floors
        # scaled by 1/10 and 1/40 give ratio 4 once the harmonic zone is
        # excluded.
        p_hot, p_cold = norm.normalized_band_powers(result, 250.0, 350.0)
        assert p_hot / p_cold == pytest.approx(4.0, rel=0.05)
