"""Tests for repro.core.uncertainty (the +/-0.3 dB claim of ref [6])."""

import numpy as np
import pytest

from repro.core.definitions import noise_factor_from_y, y_factor_expected
from repro.core.uncertainty import (
    monte_carlo_nf,
    nf_uncertainty_budget,
)
from repro.errors import ConfigurationError


class TestAnalyticBudget:
    def test_paper_claim_3db(self):
        # 5 % hot-temperature error, NF 3 dB, Th 2900 K -> ~0.24 dB.
        budget = nf_uncertainty_budget(3.0, 2900.0, rel_sigma_t_hot=0.05)
        assert budget.sigma_nf_db == pytest.approx(0.24, abs=0.02)
        assert budget.sigma_nf_db <= 0.3

    def test_paper_claim_10db(self):
        budget = nf_uncertainty_budget(10.0, 2900.0, rel_sigma_t_hot=0.05)
        assert budget.sigma_nf_db <= 0.3

    def test_budget_scales_linearly_with_error(self):
        small = nf_uncertainty_budget(3.0, 2900.0, rel_sigma_t_hot=0.01)
        large = nf_uncertainty_budget(3.0, 2900.0, rel_sigma_t_hot=0.05)
        assert large.sigma_nf_db == pytest.approx(5 * small.sigma_nf_db, rel=1e-6)

    def test_dominant_source_identified(self):
        budget = nf_uncertainty_budget(
            3.0, 2900.0, rel_sigma_t_hot=0.05, rel_sigma_y=0.001
        )
        assert budget.dominant_source() == "t_hot"

    def test_y_error_contributes(self):
        no_y = nf_uncertainty_budget(3.0, 2900.0, rel_sigma_t_hot=0.05)
        with_y = nf_uncertainty_budget(
            3.0, 2900.0, rel_sigma_t_hot=0.05, rel_sigma_y=0.02
        )
        assert with_y.sigma_f > no_y.sigma_f

    def test_partial_derivative_against_finite_difference(self):
        # Verify the analytic dF/dTh against a numerical derivative.
        nf, th = 6.0, 2900.0
        budget = nf_uncertainty_budget(nf, th, rel_sigma_t_hot=0.05)
        f0 = budget.noise_factor
        y = budget.y_nominal
        delta = 1.0
        f_plus = noise_factor_from_y(y, th + delta, 290.0)
        dfdth_numeric = (f_plus - f0) / delta
        dfdth_analytic = budget.sigma_f / (0.05 * th)
        assert dfdth_analytic == pytest.approx(abs(dfdth_numeric), rel=1e-3)

    def test_rejects_negative_sigmas(self):
        with pytest.raises(ConfigurationError):
            nf_uncertainty_budget(3.0, 2900.0, rel_sigma_t_hot=-0.01)


class TestMonteCarlo:
    def test_matches_analytic_for_small_errors(self):
        budget = nf_uncertainty_budget(3.0, 2900.0, rel_sigma_t_hot=0.05)
        mc = monte_carlo_nf(
            3.0, 2900.0, rel_sigma_t_hot=0.05, n_trials=50000, rng=1
        )
        assert mc.nf_std_db == pytest.approx(budget.sigma_nf_db, rel=0.1)

    def test_mean_near_nominal(self):
        mc = monte_carlo_nf(10.0, 2900.0, rel_sigma_t_hot=0.05, n_trials=50000, rng=2)
        assert mc.nf_mean_db == pytest.approx(10.0, abs=0.05)

    def test_percentiles_bracket_mean(self):
        mc = monte_carlo_nf(3.0, 2900.0, rel_sigma_t_hot=0.05, n_trials=20000, rng=3)
        assert mc.nf_p05_db < mc.nf_mean_db < mc.nf_p95_db

    def test_rejection_counting(self):
        # Gigantic errors produce rejected (unphysical) trials.
        mc = monte_carlo_nf(
            0.5, 400.0, rel_sigma_t_hot=0.8, n_trials=2000, rng=4
        )
        assert mc.n_rejected > 0

    def test_too_few_trials_rejected(self):
        with pytest.raises(ConfigurationError):
            monte_carlo_nf(3.0, 2900.0, n_trials=5)

    def test_reproducible(self):
        a = monte_carlo_nf(3.0, 2900.0, n_trials=1000, rng=9)
        b = monte_carlo_nf(3.0, 2900.0, n_trials=1000, rng=9)
        assert a.nf_mean_db == b.nf_mean_db
