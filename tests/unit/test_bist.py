"""Tests for repro.core.bist (the end-to-end 1-bit pipeline)."""

import numpy as np
import pytest

from repro.core.bist import (
    BISTMeasurementConfig,
    BISTResult,
    OneBitNoiseFigureBIST,
)
from repro.core.definitions import y_factor_expected
from repro.digitizer.digitizer import OneBitDigitizer
from repro.errors import ConfigurationError
from repro.signals.sources import GaussianNoiseSource, SquareSource
from repro.signals.waveform import Waveform

FS = 10000.0


def make_config(**kwargs):
    defaults = dict(
        sample_rate_hz=FS,
        n_samples=100000,
        nperseg=5000,
        reference_frequency_hz=60.0,
        noise_band_hz=(100.0, 4500.0),
        harmonic_kind="odd",
    )
    defaults.update(kwargs)
    return BISTMeasurementConfig(**defaults)


def synth_bitstreams(f_dut=2.0, t_hot=2900.0, t_cold=290.0, n=200000, seed=1):
    """Digitize synthetic DUT-output noise for both states."""
    from repro.signals.random import spawn_rngs

    te = (f_dut - 1.0) * 290.0
    ref = SquareSource(60.0, 0.2).render(n, FS)
    dig = OneBitDigitizer()
    rng_h, rng_c = spawn_rngs(seed, 2)
    sigma_h = np.sqrt(t_hot + te)
    sigma_c = np.sqrt(t_cold + te)
    scale = 1.0 / sigma_c  # normalize cold to 1 V RMS
    hot = GaussianNoiseSource(sigma_h * scale).render(n, FS, rng_h)
    cold = GaussianNoiseSource(sigma_c * scale).render(n, FS, rng_c)
    ref = SquareSource(60.0, 0.2).render(n, FS)
    return dig.digitize(hot, ref), dig.digitize(cold, ref)


class TestConfigValidation:
    def test_valid_config(self):
        cfg = make_config()
        assert cfg.bin_spacing_hz == pytest.approx(2.0)
        assert cfg.duration_s == pytest.approx(10.0)

    def test_rejects_band_above_nyquist(self):
        with pytest.raises(ConfigurationError):
            make_config(noise_band_hz=(100.0, 6000.0))

    def test_rejects_inverted_band(self):
        with pytest.raises(ConfigurationError):
            make_config(noise_band_hz=(2000.0, 100.0))

    def test_rejects_reference_above_nyquist(self):
        with pytest.raises(ConfigurationError):
            make_config(reference_frequency_hz=5000.0)

    def test_rejects_nperseg_above_n_samples(self):
        with pytest.raises(ConfigurationError):
            make_config(n_samples=1000, nperseg=5000)

    def test_rejects_zero_sample_rate(self):
        with pytest.raises(ConfigurationError):
            make_config(sample_rate_hz=0.0)

    def test_normalizer_inherits_settings(self):
        cfg = make_config(harmonic_kind="all", subtract_line_floor=False)
        norm = cfg.make_normalizer()
        assert norm.harmonic_kind == "all"
        assert norm.subtract_floor is False
        assert norm.search_halfwidth_hz == pytest.approx(5 * cfg.bin_spacing_hz)


class TestEstimatorValidation:
    def test_rejects_bad_config_type(self):
        with pytest.raises(ConfigurationError):
            OneBitNoiseFigureBIST("config", 2900.0)

    def test_rejects_hot_below_cold(self):
        with pytest.raises(ConfigurationError):
            OneBitNoiseFigureBIST(make_config(), 290.0, 290.0)

    def test_rejects_non_bitstream(self):
        est = OneBitNoiseFigureBIST(make_config(), 2900.0)
        analog = Waveform(np.random.default_rng(0).normal(size=100000), FS)
        bits = Waveform(np.sign(analog.samples - 0.5) * 1.0, FS)
        with pytest.raises(ConfigurationError):
            est.estimate_from_bitstreams(analog, bits)

    def test_rejects_rate_mismatch(self):
        est = OneBitNoiseFigureBIST(make_config(), 2900.0)
        bits = Waveform(np.ones(100000), FS / 2)
        with pytest.raises(ConfigurationError):
            est.estimate_from_bitstreams(bits, bits)


class TestEstimation:
    def test_recovers_known_noise_figure(self):
        bits_hot, bits_cold = synth_bitstreams(f_dut=2.0, n=400000, seed=3)
        est = OneBitNoiseFigureBIST(make_config(n_samples=400000), 2900.0, 290.0)
        result = est.estimate_from_bitstreams(bits_hot, bits_cold)
        assert result.noise_figure_db == pytest.approx(3.01, abs=0.5)

    def test_y_matches_forward_model(self):
        bits_hot, bits_cold = synth_bitstreams(f_dut=4.0, n=400000, seed=4)
        est = OneBitNoiseFigureBIST(make_config(n_samples=400000), 2900.0, 290.0)
        result = est.estimate_from_bitstreams(bits_hot, bits_cold)
        expected_y = y_factor_expected(4.0, 2900.0, 290.0)
        assert result.y == pytest.approx(expected_y, rel=0.06)

    def test_result_fields_consistent(self):
        bits_hot, bits_cold = synth_bitstreams(n=200000, seed=5)
        est = OneBitNoiseFigureBIST(make_config(n_samples=200000), 2900.0, 290.0)
        result = est.estimate_from_bitstreams(bits_hot, bits_cold)
        assert isinstance(result, BISTResult)
        assert result.y == pytest.approx(
            result.band_power_hot / result.band_power_cold
        )
        assert result.noise_figure_db == pytest.approx(
            10 * np.log10(result.noise_factor)
        )
        yfr = result.y_factor_result
        assert yfr.y == result.y

    def test_measure_drives_acquisition(self):
        est = OneBitNoiseFigureBIST(make_config(n_samples=200000), 2900.0, 290.0)
        calls = []

        def acquire(state, rng):
            calls.append(state)
            bits_hot, bits_cold = synth_bitstreams(n=200000, seed=6)
            return bits_hot if state == "hot" else bits_cold

        result = est.measure(acquire, rng=1)
        assert calls == ["hot", "cold"]
        assert result.noise_figure_db > 0

    def test_spectrum_of_uses_config(self):
        bits_hot, _ = synth_bitstreams(n=200000, seed=7)
        est = OneBitNoiseFigureBIST(make_config(n_samples=200000), 2900.0, 290.0)
        spec = est.spectrum_of(bits_hot)
        assert spec.df == pytest.approx(FS / 5000)
