"""Tests for repro.analog.inverting."""

import numpy as np
import pytest

from repro.analog.amplifier import NonInvertingAmplifier
from repro.analog.inverting import InvertingAmplifier
from repro.analog.opamp import OPAMP_LIBRARY, OpAmpNoiseModel
from repro.errors import ConfigurationError
from repro.signals.sources import SineSource
from repro.signals.waveform import Waveform

FS = 32768.0


def make_inv(opamp=None, rf=10000.0, rin=400.0, rs=600.0):
    return InvertingAmplifier(
        opamp if opamp is not None else OPAMP_LIBRARY["OP27"],
        r_feedback_ohm=rf,
        r_input_ohm=rin,
        source_resistance_ohm=rs,
    )


class TestTopology:
    def test_gain_magnitude(self):
        # G = Rf / (Rs + Rin) = 10000 / 1000 = 10.
        assert make_inv().gain_magnitude == pytest.approx(10.0)

    def test_noise_gain_exceeds_signal_gain(self):
        amp = make_inv()
        assert amp.noise_gain == pytest.approx(11.0)
        assert amp.noise_gain > amp.gain_magnitude

    def test_bandwidth_uses_noise_gain(self):
        amp = make_inv()
        assert amp.bandwidth_hz == pytest.approx(8e6 / 11.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_inv(rf=0.0)
        with pytest.raises(ConfigurationError):
            make_inv(rin=0.0)
        with pytest.raises(ConfigurationError):
            make_inv(rs=0.0)
        with pytest.raises(ConfigurationError):
            InvertingAmplifier("OP27", 1000.0, 100.0, 600.0)


class TestSignalPath:
    def test_inverts_and_scales(self):
        amp = make_inv()
        w = SineSource(1000.0, 1e-3, phase_rad=np.pi / 2).render(4096, FS)
        out = amp.process(w, include_noise=False)
        # Cosine start: the first sample is at +amplitude; the output
        # must start near -gain*amplitude.
        assert out.samples[0] == pytest.approx(-10.0 * 1e-3, rel=0.05)

    def test_amplitude_scaling(self):
        amp = make_inv()
        w = SineSource(1000.0, 1e-3).render(8192, FS)
        out = amp.process(w, include_noise=False)
        assert out.slice(2000, 8192).rms() == pytest.approx(
            10.0 * 1e-3 / np.sqrt(2), rel=0.02
        )


class TestNoise:
    def test_rendered_noise_matches_analytic(self, rng):
        amp = make_inv()
        noise = amp.render_input_noise(200000, FS, rng)
        expected_ms = float(amp.amplifier_noise_density(1000.0)) * FS / 2
        assert noise.mean_square() == pytest.approx(expected_ms, rel=0.06)

    def test_inverting_noisier_than_noninverting_same_opamp(self):
        # Same opamp, same signal gain magnitude, same source, and a
        # low-impedance feedback network in both: the inverting stage's
        # NF is worse (input-resistor Johnson + noise-gain penalty).
        opamp = OPAMP_LIBRARY["OP27"]
        inv = make_inv(opamp)  # |G| = 10
        noninv = NonInvertingAmplifier(
            opamp, 900.0, 100.0, 600.0
        )  # G = 10, Rp = 90 ohm
        assert inv.spot_noise_factor(1000.0) > noninv.spot_noise_factor(1000.0)

    def test_low_gain_penalty_grows(self):
        # The (1+G)/G factor hurts most at low gain.
        low = InvertingAmplifier(OPAMP_LIBRARY["OP27"], 1000.0, 400.0, 600.0)
        high = InvertingAmplifier(OPAMP_LIBRARY["OP27"], 100000.0, 400.0, 600.0)
        en2 = low.opamp.en_density(1000.0)

        def en_referred(amp):
            return en2 * (amp.noise_gain / amp.gain_magnitude) ** 2

        assert en_referred(low) > en_referred(high)

    def test_spot_noise_factor_above_one(self):
        assert make_inv().spot_noise_factor(1000.0) > 1.0


class TestBistIntegration:
    def test_measurable_with_onebit_bist(self, rng):
        # Drive the inverting amplifier from the calibrated source and
        # measure its NF with the standard pipeline.
        from repro.analog.noise_source import CalibratedNoiseSource
        from repro.core.bist import BISTMeasurementConfig, OneBitNoiseFigureBIST
        from repro.digitizer.digitizer import OneBitDigitizer
        from repro.signals.random import spawn_rngs
        from repro.signals.sources import SineSource

        amp = make_inv()
        # Expected NF over the measurement band (flat device).
        expected_f = amp.spot_noise_factor(1000.0)
        expected_nf = 10 * np.log10(expected_f)

        source = CalibratedNoiseSource(600.0, 2900.0, 290.0)
        n, fs = 2**18, 32768.0
        post_gain = 5000.0  # ideal conditioning gain for comparator levels
        dig = OneBitDigitizer()

        def acquire(state, child):
            a, b = spawn_rngs(child, 2)
            analog = amp.process(source.render(state, n, fs, a), b)
            ref_amp = 0.25 * analog.std() if state == "cold" else None
            return analog, ref_amp

        rng_h, rng_c = spawn_rngs(7, 2)
        cold_analog, ref_amp = acquire("cold", rng_c)
        hot_analog, _ = acquire("hot", rng_h)
        reference = SineSource(3000.0, ref_amp).render(n, fs)
        bits_hot = dig.digitize(hot_analog, reference)
        bits_cold = dig.digitize(cold_analog, reference)

        config = BISTMeasurementConfig(
            sample_rate_hz=fs,
            n_samples=n,
            nperseg=8192,
            reference_frequency_hz=3000.0,
            noise_band_hz=(500.0, 1500.0),
            harmonic_kind="all",
        )
        est = OneBitNoiseFigureBIST(config, 2900.0, 290.0)
        result = est.estimate_from_bitstreams(bits_hot, bits_cold)
        assert result.noise_figure_db == pytest.approx(expected_nf, abs=1.2)
