"""Tests for repro.dsp.fft_backend — the opt-in scipy.fft backend."""

import numpy as np
import pytest

from repro.dsp import welch
from repro.dsp.fft_backend import (
    fft_backend,
    get_fft_backend,
    rfft,
    scipy_fft_available,
    set_fft_backend,
)
from repro.errors import ConfigurationError

needs_scipy = pytest.mark.skipif(
    not scipy_fft_available(), reason="scipy not installed"
)


@pytest.fixture(autouse=True)
def restore_backend():
    yield
    set_fft_backend("numpy")


class TestSelection:
    def test_default_is_numpy(self):
        assert get_fft_backend() == ("numpy", None)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            set_fft_backend("fftw")

    def test_zero_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            set_fft_backend("numpy", workers=0)

    @needs_scipy
    def test_context_manager_restores(self):
        with fft_backend("scipy", workers=2):
            assert get_fft_backend() == ("scipy", 2)
        assert get_fft_backend() == ("numpy", None)

    @needs_scipy
    def test_context_manager_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with fft_backend("scipy"):
                raise RuntimeError("boom")
        assert get_fft_backend() == ("numpy", None)


class TestBitIdentical:
    @needs_scipy
    def test_rfft_bit_identical(self, rng):
        block = rng.normal(0.0, 1.0, size=(16, 1000))
        reference = np.fft.rfft(block, axis=-1)
        with fft_backend("scipy", workers=2):
            assert np.array_equal(rfft(block, axis=-1), reference)

    @needs_scipy
    def test_welch_bit_identical_across_backends(self, rng):
        x = rng.normal(0.0, 1.0, size=50000)
        reference = welch(x, 2000, sample_rate=1e4)
        with fft_backend("scipy", workers=2):
            threaded = welch(x, 2000, sample_rate=1e4)
        assert np.array_equal(threaded.psd, reference.psd)

    def test_numpy_fallback_always_works(self, rng):
        x = rng.normal(0.0, 1.0, size=(4, 256))
        assert np.array_equal(rfft(x), np.fft.rfft(x))


class TestPlanRegistry:
    @pytest.fixture(autouse=True)
    def fresh_cache(self):
        from repro.dsp.fft_backend import clear_plan_cache

        clear_plan_cache()
        yield
        clear_plan_cache()

    def test_plan_bit_identical_to_numpy_rfft(self, rng):
        from repro.dsp.fft_backend import plan_rfft

        block = rng.normal(0.0, 1.0, size=(16, 1000))
        plan = plan_rfft(block.shape, block.dtype)
        assert np.array_equal(plan.execute(block), np.fft.rfft(block, axis=-1))

    def test_plan_cached_per_shape_and_dtype(self):
        from repro.dsp.fft_backend import plan_cache_info, plan_rfft

        a = plan_rfft((4, 256))
        assert plan_rfft((4, 256)) is a
        b = plan_rfft((8, 256))
        assert b is not a
        info = plan_cache_info()
        assert info["plans"] == 2
        assert info["misses"] == 2
        assert info["hits"] == 1

    def test_plan_rejects_wrong_shape(self, rng):
        from repro.dsp.fft_backend import plan_rfft

        plan = plan_rfft((4, 256))
        with pytest.raises(ConfigurationError):
            plan.execute(rng.normal(size=(5, 256)))

    def test_plan_rejects_invalid_shape(self):
        from repro.dsp.fft_backend import plan_rfft

        with pytest.raises(ConfigurationError):
            plan_rfft((0, 16))

    @needs_scipy
    def test_backend_switch_gets_fresh_plans(self, rng):
        from repro.dsp.fft_backend import plan_rfft

        numpy_plan = plan_rfft((2, 128))
        with fft_backend("scipy", workers=1):
            scipy_plan = plan_rfft((2, 128))
            assert scipy_plan is not numpy_plan
            assert scipy_plan.backend == "scipy"
            block = rng.normal(size=(2, 128))
            assert np.array_equal(
                scipy_plan.execute(block), np.fft.rfft(block, axis=-1)
            )

    def test_clear_plan_cache_resets_counters(self):
        from repro.dsp.fft_backend import (
            clear_plan_cache,
            plan_cache_info,
            plan_rfft,
        )

        plan_rfft((2, 64))
        clear_plan_cache()
        assert plan_cache_info() == {"plans": 0, "hits": 0, "misses": 0}
