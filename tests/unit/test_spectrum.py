"""Tests for repro.dsp.spectrum."""

import numpy as np
import pytest

from repro.dsp.spectrum import Spectrum
from repro.errors import ConfigurationError, MeasurementError


def flat_spectrum(density=1.0, df=1.0, n=1001):
    freqs = np.arange(n) * df
    return Spectrum(freqs, np.full(n, density), enbw_hz=df)


def spectrum_with_line(f_line=100.0, line_density=50.0, floor=1.0, df=1.0, n=1001):
    freqs = np.arange(n) * df
    psd = np.full(n, floor)
    psd[int(f_line / df)] += line_density
    return Spectrum(freqs, psd, enbw_hz=df)


class TestConstruction:
    def test_basic(self):
        s = flat_spectrum()
        assert len(s) == 1001
        assert s.df == 1.0

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            Spectrum(np.arange(5.0), np.zeros(4))

    def test_rejects_non_uniform_grid(self):
        with pytest.raises(ConfigurationError):
            Spectrum(np.array([0.0, 1.0, 3.0]), np.zeros(3))

    def test_rejects_negative_psd(self):
        with pytest.raises(ConfigurationError):
            Spectrum(np.arange(3.0), np.array([0.0, -1.0, 0.0]))

    def test_rejects_single_bin(self):
        with pytest.raises(ConfigurationError):
            Spectrum(np.array([0.0]), np.array([1.0]))

    def test_default_enbw_is_df(self):
        s = Spectrum(np.arange(3.0) * 2.0, np.zeros(3))
        assert s.enbw_hz == 2.0

    def test_arrays_readonly(self):
        s = flat_spectrum()
        with pytest.raises(ValueError):
            s.psd[0] = 99.0


class TestBandPower:
    def test_flat_band_power(self):
        s = flat_spectrum(density=2.0)
        assert s.band_power(100.0, 200.0) == pytest.approx(2.0 * 101)

    def test_total_power(self):
        s = flat_spectrum(density=3.0, n=11)
        assert s.total_power() == pytest.approx(33.0)

    def test_exclusion_removes_line(self):
        s = spectrum_with_line(f_line=150.0, line_density=1000.0)
        with_line = s.band_power(100.0, 200.0)
        without = s.band_power(100.0, 200.0, exclude=[(150.0, 2.0)])
        assert with_line == pytest.approx(without + 1000.0 + 5 * 1.0)

    def test_fully_excluded_band_raises(self):
        s = flat_spectrum()
        with pytest.raises(MeasurementError):
            s.band_power(100.0, 110.0, exclude=[(105.0, 50.0)])

    def test_empty_band_raises(self):
        s = flat_spectrum(df=10.0, n=101)
        with pytest.raises(MeasurementError):
            s.band_power(1001.0, 1002.0)

    def test_inverted_band_raises(self):
        s = flat_spectrum()
        with pytest.raises(ConfigurationError):
            s.band_power(200.0, 100.0)

    def test_negative_exclusion_halfwidth_raises(self):
        s = flat_spectrum()
        with pytest.raises(ConfigurationError):
            s.band_power(10.0, 20.0, exclude=[(15.0, -1.0)])

    def test_band_mean_density(self):
        s = flat_spectrum(density=4.0)
        assert s.band_mean_density(10.0, 20.0) == pytest.approx(4.0)


class TestPeaksAndLines:
    def test_find_peak(self):
        s = spectrum_with_line(f_line=123.0)
        f, v = s.find_peak(120.0, 10.0)
        assert f == 123.0
        assert v == pytest.approx(51.0)

    def test_find_peak_needs_positive_halfwidth(self):
        s = flat_spectrum()
        with pytest.raises(ConfigurationError):
            s.find_peak(100.0, 0.0)

    def test_line_power_without_floor_subtraction(self):
        s = spectrum_with_line(line_density=50.0, floor=1.0)
        _, p = s.line_power(100.0, 10.0, subtract_floor=False)
        # Window +/- 1 bin: line 50 + floor 3 bins.
        assert p == pytest.approx(53.0)

    def test_line_power_with_floor_subtraction(self):
        s = spectrum_with_line(line_density=50.0, floor=1.0)
        _, p = s.line_power(100.0, 10.0, subtract_floor=True)
        assert p == pytest.approx(50.0)

    def test_line_power_all_floor_raises(self):
        s = flat_spectrum()
        with pytest.raises(MeasurementError):
            s.line_power(500.0, 10.0, subtract_floor=True)

    def test_line_frequency_tracked_off_nominal(self):
        # Line actually at 108 Hz, nominal 100 Hz: peak search finds it.
        s = spectrum_with_line(f_line=108.0)
        f, _ = s.line_power(100.0, 10.0)
        assert f == 108.0


class TestTransforms:
    def test_scaled(self):
        s = flat_spectrum(density=1.0).scaled(2.5)
        assert s.band_mean_density(10.0, 20.0) == pytest.approx(2.5)

    def test_scaled_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            flat_spectrum().scaled(-1.0)

    def test_slice_band(self):
        s = flat_spectrum()
        sl = s.slice_band(100.0, 200.0)
        assert sl.frequencies[0] >= 100.0
        assert sl.frequencies[-1] <= 200.0

    def test_to_db(self):
        s = flat_spectrum(density=10.0)
        assert np.allclose(s.to_db(), 10.0)

    def test_to_db_clips_zeros(self):
        freqs = np.arange(3.0)
        s = Spectrum(freqs, np.array([0.0, 1.0, 1.0]))
        db = s.to_db()
        assert db[0] == pytest.approx(-300.0)
