"""Tests for the shared-memory result return path (repro.engine.shm).

The outbound leg (packed batches to workers) is covered by the packed
equivalence suite; this file covers the return leg introduced with the
kernel tier: :class:`SharedResultBlock`, :func:`publish_results`,
:func:`collect_results`, the pickle fallback and its fault injection.
"""

import numpy as np
import pytest

from repro.bitstream import PackedRecordBatch
from repro.dsp.psd import welch_batch
from repro.engine.shm import (
    SharedResultBlock,
    SharedResultDescriptor,
    WelchParams,
    _as_slice,
    collect_results,
    publish_results,
    welch_batch_shared,
)
from repro.errors import ConfigurationError
from repro.faults import FaultPlan, inject

RATE = 10_000.0


def _batch(n_records=4, n_samples=4096, seed=0):
    rng = np.random.default_rng(seed)
    records = np.where(rng.random((n_records, n_samples)) < 0.5, 1.0, -1.0)
    return PackedRecordBatch.pack(records, RATE)


def _params(nperseg=256, bit_domain=True):
    return WelchParams(
        nperseg=nperseg,
        window="hann",
        overlap=0.5,
        detrend=True,
        block_segments=16,
        bit_domain=bit_domain,
    )


class TestAsSlice:
    def test_contiguous_run_becomes_slice(self):
        assert _as_slice([3, 4, 5]) == slice(3, 6)
        assert _as_slice([0]) == slice(0, 1)

    def test_gaps_and_disorder_stay_lists(self):
        assert _as_slice([1, 3, 4]) == [1, 3, 4]
        assert _as_slice([2, 1, 0]) == [2, 1, 0]
        assert _as_slice([]) == []


class TestSharedResultBlock:
    def test_roundtrip(self):
        rows = np.random.default_rng(1).random((3, 7))
        with SharedResultBlock(3, 7) as block:
            assert publish_results(block.descriptor, [0, 1, 2], rows)
            assert np.array_equal(block.rows(), rows)

    def test_partial_and_noncontiguous_publish(self):
        rows = np.random.default_rng(2).random((2, 5))
        with SharedResultBlock(4, 5) as block:
            block.rows()[:] = 0.0
            assert publish_results(block.descriptor, [0, 3], rows)
            view = block.rows()
            assert np.array_equal(view[[0, 3]], rows)
            assert np.all(view[[1, 2]] == 0.0)

    def test_invalid_dims_rejected(self):
        with pytest.raises(ConfigurationError):
            SharedResultBlock(0, 10)
        with pytest.raises(ConfigurationError):
            SharedResultBlock(10, -1)

    def test_publish_to_missing_block_returns_false(self):
        bogus = SharedResultDescriptor(
            shm_name="repro_no_such_block", n_records=2, n_bins=3
        )
        assert not publish_results(bogus, [0], np.zeros((1, 3)))

    def test_creation_draws_the_shm_publish_fault_site(self):
        with inject(FaultPlan(shm_publish=1.0)) as injector:
            with pytest.raises(OSError):
                SharedResultBlock(2, 3)
        assert injector.counts() == {"shm_publish": 1}


class TestCollectResults:
    def test_pickle_outcomes_scatter_in_index_order(self):
        psd = np.zeros((4, 3))
        a = np.full((2, 3), 1.0)
        b = np.full((2, 3), 2.0)
        collect_results([([2, 3], a), ([0, 1], b)], None, psd)
        assert np.array_equal(psd, np.vstack([b, a]))

    def test_mixed_shm_and_pickle_outcomes(self):
        rows = np.random.default_rng(3).random((4, 5))
        psd = np.zeros((4, 5))
        with SharedResultBlock(4, 5) as block:
            assert publish_results(block.descriptor, [1, 3], rows[[1, 3]])
            collect_results(
                [([1], None), ([0, 2], rows[[0, 2]]), ([3], None)],
                block,
                psd,
            )
        assert np.array_equal(psd, rows)

    def test_shared_rows_without_block_rejected(self):
        with pytest.raises(ConfigurationError):
            collect_results([([0], None)], None, np.zeros((1, 3)))


class TestWelchBatchShared:
    def test_matches_inprocess_psd(self):
        batch = _batch()
        params = _params()
        expected = welch_batch(batch, params.nperseg, bit_domain=True).psd
        psd = welch_batch_shared(batch, params, max_workers=2)
        assert np.array_equal(psd, expected)

    def test_injected_publish_faults_fall_back_bit_identically(self):
        # Every shm creation fails: both legs (outbound batch and the
        # result return) must degrade to pickle with identical output.
        batch = _batch(seed=7)
        params = _params()
        expected = welch_batch_shared(batch, params, max_workers=2)
        with inject(FaultPlan(shm_publish=1.0)) as injector:
            psd = welch_batch_shared(batch, params, max_workers=2)
        assert injector.counts()["shm_publish"] >= 2
        assert np.array_equal(psd, expected)
