"""Tests for repro.core.production."""

import numpy as np
import pytest

from repro.core.bist import BISTMeasurementConfig, OneBitNoiseFigureBIST
from repro.core.production import (
    ProductionNfScreen,
    Verdict,
    screen_population,
)
from repro.errors import ConfigurationError


def make_estimator():
    config = BISTMeasurementConfig(
        sample_rate_hz=10000.0,
        n_samples=100000,
        nperseg=5000,
        reference_frequency_hz=60.0,
        noise_band_hz=(100.0, 4500.0),
    )
    return OneBitNoiseFigureBIST(config, 2900.0, 290.0)


def make_screen(limit=8.0, sigma=0.4, guardband=2.0):
    return ProductionNfScreen(
        make_estimator(),
        limit_db=limit,
        measurement_sigma_db=sigma,
        guardband_sigmas=guardband,
    )


class TestClassify:
    def test_pass_below_guardbanded_limit(self):
        screen = make_screen()
        assert screen.classify(7.0) is Verdict.PASS

    def test_fail_above_limit(self):
        screen = make_screen()
        assert screen.classify(8.5) is Verdict.FAIL

    def test_retest_in_guard_band(self):
        screen = make_screen()  # guard band 0.8 dB: retest in (7.2, 8.0]
        assert screen.classify(7.5) is Verdict.RETEST
        assert screen.classify(8.0) is Verdict.RETEST

    def test_zero_guardband_has_no_retest_zone(self):
        screen = make_screen(guardband=0.0)
        assert screen.classify(7.999) is Verdict.PASS
        assert screen.classify(8.001) is Verdict.FAIL

    def test_guardband_db(self):
        assert make_screen(sigma=0.5, guardband=3.0).guardband_db == 1.5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ProductionNfScreen("est", 8.0, 0.4)
        with pytest.raises(ConfigurationError):
            make_screen(limit=0.0)
        with pytest.raises(ConfigurationError):
            make_screen(sigma=-0.1)
        with pytest.raises(ConfigurationError):
            make_screen(guardband=-1.0)


class TestPopulation:
    def test_perfect_measurement_no_errors(self):
        screen = make_screen(guardband=0.0)
        true = [6.0, 7.0, 9.0, 10.0]
        outcome = screen_population(screen, true, true)
        assert outcome.n_escapes == 0
        assert outcome.n_overkill == 0
        assert outcome.n_pass == 2
        assert outcome.n_fail == 2

    def test_escape_detected(self):
        screen = make_screen(guardband=0.0)
        # True 8.5 (bad) measured 7.5 (passes) -> escape.
        outcome = screen_population(screen, [8.5], [7.5])
        assert outcome.n_escapes == 1
        assert outcome.escape_rate == 1.0

    def test_overkill_detected(self):
        screen = make_screen(guardband=0.0)
        # True 7.5 (good) measured 8.5 (fails) -> overkill.
        outcome = screen_population(screen, [7.5], [8.5])
        assert outcome.n_overkill == 1

    def test_guardband_blocks_escape_into_retest(self):
        # The same borderline device: without guard band it escapes,
        # with it it lands in RETEST.
        loose = make_screen(guardband=0.0)
        tight = make_screen(guardband=2.0)  # 0.8 dB band
        true, measured = [8.3], [7.6]
        assert screen_population(loose, true, measured).n_escapes == 1
        outcome = screen_population(tight, true, measured)
        assert outcome.n_escapes == 0
        assert outcome.n_retest == 1

    def test_counts_sum(self):
        screen = make_screen()
        rng = np.random.default_rng(0)
        true = rng.uniform(6.0, 10.0, size=50)
        measured = true + rng.normal(0, 0.4, size=50)
        outcome = screen_population(screen, true, measured)
        assert (
            outcome.n_pass + outcome.n_fail + outcome.n_retest
            == outcome.n_devices
        )

    def test_validation(self):
        screen = make_screen()
        with pytest.raises(ConfigurationError):
            screen_population(screen, [8.0], [8.0, 9.0])
        with pytest.raises(ConfigurationError):
            screen_population(screen, [], [])
