"""Tests for repro.constants."""

import numpy as np
import pytest

from repro.constants import (
    BOLTZMANN,
    FOUR_K_T0,
    T0_KELVIN,
    amplitude_to_db,
    db_to_amplitude,
    db_to_linear,
    linear_to_db,
)


class TestConstants:
    def test_boltzmann_value(self):
        assert BOLTZMANN == pytest.approx(1.380649e-23)

    def test_reference_temperature_is_290(self):
        assert T0_KELVIN == 290.0

    def test_four_k_t0_consistency(self):
        assert FOUR_K_T0 == pytest.approx(4 * BOLTZMANN * T0_KELVIN)


class TestPowerDb:
    def test_linear_to_db_of_10_is_10(self):
        assert linear_to_db(10.0) == pytest.approx(10.0)

    def test_linear_to_db_of_2_is_3dB(self):
        assert linear_to_db(2.0) == pytest.approx(3.0103, abs=1e-4)

    def test_db_to_linear_roundtrip(self):
        for db in (-30.0, -3.0, 0.0, 3.0, 17.5):
            assert linear_to_db(db_to_linear(db)) == pytest.approx(db)

    def test_linear_to_db_rejects_zero(self):
        with pytest.raises(ValueError):
            linear_to_db(0.0)

    def test_linear_to_db_rejects_negative(self):
        with pytest.raises(ValueError):
            linear_to_db(-1.0)

    def test_array_input_returns_array(self):
        out = linear_to_db(np.array([1.0, 10.0, 100.0]))
        assert np.allclose(out, [0.0, 10.0, 20.0])

    def test_scalar_input_returns_python_float(self):
        assert isinstance(linear_to_db(2.0), float)
        assert isinstance(db_to_linear(3.0), float)


class TestAmplitudeDb:
    def test_amplitude_to_db_of_10_is_20(self):
        assert amplitude_to_db(10.0) == pytest.approx(20.0)

    def test_amplitude_roundtrip(self):
        for db in (-12.0, 0.0, 6.0):
            assert amplitude_to_db(db_to_amplitude(db)) == pytest.approx(db)

    def test_amplitude_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            amplitude_to_db(0.0)
