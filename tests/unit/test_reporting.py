"""Tests for repro.reporting."""

import pytest

from repro.errors import ConfigurationError
from repro.reporting.series import render_series
from repro.reporting.tables import render_table


class TestRenderTable:
    def test_basic_layout(self):
        out = render_table(["a", "bb"], [[1, 2.5], ["x", "y"]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "bb" in lines[0]
        assert len(lines) == 4  # header, rule, two rows

    def test_title(self):
        out = render_table(["a"], [[1]], title="Table 1")
        assert out.splitlines()[0] == "Table 1"

    def test_float_formatting(self):
        out = render_table(["v"], [[3.14159265]], float_format=".2f")
        assert "3.14" in out
        assert "3.1415" not in out

    def test_alignment(self):
        out = render_table(["col"], [["short"], ["a much longer cell"]])
        lines = out.splitlines()
        assert len(lines[-1]) >= len("a much longer cell")

    def test_row_length_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            render_table(["a", "b"], [[1]])

    def test_empty_headers_raise(self):
        with pytest.raises(ConfigurationError):
            render_table([], [])

    def test_bool_rendering(self):
        out = render_table(["ok"], [[True]])
        assert "True" in out


class TestRenderSeries:
    def test_contains_values_and_bars(self):
        out = render_series([1.0, 2.0], [10.0, 20.0], "x", "y")
        assert "|" in out
        assert "10" in out and "20" in out

    def test_bar_lengths_track_values(self):
        out = render_series([1, 2, 3], [0.0, 5.0, 10.0])
        bars = [line.split("|")[1] for line in out.splitlines() if "|" in line]
        assert len(bars[0]) < len(bars[1]) < len(bars[2])

    def test_constant_series_ok(self):
        out = render_series([1, 2], [5.0, 5.0])
        assert "5" in out

    def test_title(self):
        out = render_series([1], [1], title="Figure 10")
        assert out.splitlines()[0] == "Figure 10"

    def test_length_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            render_series([1, 2], [1])

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            render_series([], [])

    def test_narrow_width_rejected(self):
        with pytest.raises(ConfigurationError):
            render_series([1], [1], width=5)
