"""Unit tests for the counter-based batch noise generator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.signals.batch_rng import (
    RNG_MODES,
    BatchNoiseGenerator,
    bernoulli_thresholds_u32,
    gaussian_exceed_probability,
    validate_rng_mode,
    white_noise_matrix,
)
from repro.signals.random import make_rng, spawn_rngs


class TestValidateRngMode:
    def test_accepts_known_modes(self):
        for mode in RNG_MODES:
            assert validate_rng_mode(mode) == mode

    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError):
            validate_rng_mode("pcg")


class TestWhiteNoiseMatrixCompat:
    def test_bit_identical_to_per_record_loop(self):
        rngs = spawn_rngs(7, 4)
        out = white_noise_matrix(rngs, 500, mean=0.1, scale=0.3)
        replay = spawn_rngs(7, 4)
        for i in range(4):
            expected = make_rng(replay[i]).normal(0.1, 0.3, size=500)
            assert np.array_equal(out[i], expected)

    def test_per_row_scale(self):
        rngs = spawn_rngs(3, 3)
        scales = np.array([0.1, 0.2, 0.3])
        out = white_noise_matrix(rngs, 400, scale=scales)
        replay = spawn_rngs(3, 3)
        for i in range(3):
            expected = make_rng(replay[i]).normal(0.0, scales[i], size=400)
            assert np.array_equal(out[i], expected)

    def test_out_buffer_reuse(self):
        rngs = spawn_rngs(5, 2)
        buf = np.empty((2, 100))
        out = white_noise_matrix(rngs, 100, out=buf)
        assert out is buf

    def test_bad_out_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            white_noise_matrix(spawn_rngs(5, 2), 100, out=np.empty((3, 100)))

    def test_bad_scale_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            white_noise_matrix(spawn_rngs(5, 2), 100, scale=np.ones(3))


class TestWhiteNoiseMatrixPhilox:
    def test_deterministic_per_seed(self):
        a = white_noise_matrix(spawn_rngs(7, 4), 500, rng_mode="philox")
        b = white_noise_matrix(spawn_rngs(7, 4), 500, rng_mode="philox")
        assert np.array_equal(a, b)

    def test_rows_are_independent_streams(self):
        out = white_noise_matrix(spawn_rngs(7, 4), 500, rng_mode="philox")
        for i in range(1, 4):
            assert not np.array_equal(out[0], out[i])

    def test_differs_from_compat_realization(self):
        compat = white_noise_matrix(spawn_rngs(7, 2), 500)
        philox = white_noise_matrix(spawn_rngs(7, 2), 500, rng_mode="philox")
        assert not np.array_equal(compat, philox)

    def test_successive_fills_from_same_generators_differ(self):
        # The counter-based counterpart of compat's advancing stream:
        # reusing one generator must not replay the same noise (the
        # amplifier's en/in/Johnson contributors rely on this).
        gens = spawn_rngs(11, 2)
        first = white_noise_matrix(gens, 300, rng_mode="philox")
        second = white_noise_matrix(gens, 300, rng_mode="philox")
        assert not np.array_equal(first, second)

    def test_scale_and_mean_applied(self):
        out = white_noise_matrix(
            spawn_rngs(3, 4), 200_000, mean=1.5, scale=0.25, rng_mode="philox"
        )
        assert abs(out.mean() - 1.5) < 0.01
        assert abs(out.std() - 0.25) < 0.01

    def test_statistics_are_gaussian(self):
        out = white_noise_matrix(spawn_rngs(3, 2), 500_000, rng_mode="philox")
        flat = out.ravel()
        assert abs(flat.mean()) < 0.01
        assert abs(flat.std() - 1.0) < 0.01
        # fourth moment of a standard normal is 3
        assert abs((flat**4).mean() - 3.0) < 0.1


class TestBatchNoiseGenerator:
    def test_zero_samples(self):
        gen = BatchNoiseGenerator(spawn_rngs(1, 3))
        out = gen.normal_matrix(0)
        assert out.shape == (3, 0)

    def test_int_seeds_accepted(self):
        gen = BatchNoiseGenerator([1, 2, 3])
        out = gen.normal_matrix(100)
        assert out.shape == (3, 100)
        again = BatchNoiseGenerator([1, 2, 3]).normal_matrix(100)
        assert np.array_equal(out, again)

    def test_packed_bernoulli_deterministic(self):
        p = bernoulli_thresholds_u32(np.full(1000, 0.5))
        a = BatchNoiseGenerator(spawn_rngs(9, 2)).packed_bernoulli_words(p)
        b = BatchNoiseGenerator(spawn_rngs(9, 2)).packed_bernoulli_words(p)
        assert np.array_equal(a, b)
        assert a.shape == (2, 125)

    def test_packed_bernoulli_extremes(self):
        zero = bernoulli_thresholds_u32(np.zeros(800))
        one = bernoulli_thresholds_u32(np.ones(800))
        gen = BatchNoiseGenerator(spawn_rngs(9, 1))
        assert not np.unpackbits(gen.packed_bernoulli_words(zero)).any()
        assert np.unpackbits(
            BatchNoiseGenerator(spawn_rngs(9, 1)).packed_bernoulli_words(one)
        ).all()

    def test_packed_bernoulli_probability(self):
        p = bernoulli_thresholds_u32(np.full(200_000, 0.3))
        words = BatchNoiseGenerator(spawn_rngs(1, 2)).packed_bernoulli_words(p)
        frac = np.unpackbits(words, axis=-1, count=200_000).mean()
        assert abs(frac - 0.3) < 0.005

    def test_packed_bernoulli_per_row_thresholds(self):
        lo = bernoulli_thresholds_u32(np.full(80_000, 0.2))
        hi = bernoulli_thresholds_u32(np.full(80_000, 0.8))
        words = BatchNoiseGenerator(spawn_rngs(4, 2)).packed_bernoulli_words(
            [lo, hi]
        )
        bits = np.unpackbits(words, axis=-1, count=80_000)
        assert abs(bits[0].mean() - 0.2) < 0.01
        assert abs(bits[1].mean() - 0.8) < 0.01

    def test_packed_bernoulli_rejects_mismatched_rows(self):
        gen = BatchNoiseGenerator(spawn_rngs(4, 3))
        p = bernoulli_thresholds_u32(np.full(100, 0.5))
        with pytest.raises(ConfigurationError):
            gen.packed_bernoulli_words([p, p])

    def test_packed_bernoulli_rejects_bad_dtype(self):
        gen = BatchNoiseGenerator(spawn_rngs(4, 1))
        with pytest.raises(ConfigurationError):
            gen.packed_bernoulli_words(np.full(100, 0.5))


class TestThresholdMath:
    def test_thresholds_quantize_within_half_ulp(self):
        p = np.array([0.0, 0.25, 0.5, 1.0])
        t = bernoulli_thresholds_u32(p)
        assert t.dtype == np.uint32
        assert t[0] == 0
        assert t[1] == 1 << 30
        assert t[2] == 1 << 31
        assert t[3] == (1 << 32) - 1  # p=1 saturates one ulp short

    def test_thresholds_reject_out_of_range(self):
        with pytest.raises(ConfigurationError):
            bernoulli_thresholds_u32(np.array([1.5]))
        with pytest.raises(ConfigurationError):
            bernoulli_thresholds_u32(np.array([np.nan]))

    def test_exceed_probability_matches_erfc(self):
        import math

        x = np.linspace(-6, 6, 101)
        p = gaussian_exceed_probability(x)
        expected = np.array(
            [0.5 * math.erfc(v / math.sqrt(2.0)) for v in x]
        )
        assert np.allclose(p, expected, rtol=1e-12, atol=1e-300)


class TestThreadedNormalFill:
    """The threaded standard_normal(out=) row fan-out.

    numpy releases the GIL while filling a preallocated row, and every
    row is written by its own stream — so the threaded fill must be
    bit-identical to the serial loop for any worker count.
    """

    def _fill(self, threads, n=4, samples=70_000):
        gen = BatchNoiseGenerator(spawn_rngs(42, n))
        return gen.normal_matrix(
            samples, mean=0.5, scale=2.0, threads=threads
        )

    def test_threaded_equals_serial(self):
        serial = self._fill(threads=1)
        for workers in (2, 3, 8):
            assert np.array_equal(self._fill(threads=workers), serial)

    def test_auto_equals_serial(self):
        assert np.array_equal(self._fill(threads=None), self._fill(threads=1))

    def test_white_noise_matrix_philox_unchanged(self):
        # The auto fan-out must not change white_noise_matrix output.
        rows = white_noise_matrix(
            spawn_rngs(7, 4), 70_000, rng_mode="philox"
        )
        expected = BatchNoiseGenerator(spawn_rngs(7, 4)).normal_matrix(
            70_000, threads=1
        )
        assert np.array_equal(rows, expected)

    def test_threaded_fill_into_out_buffer(self):
        out = np.empty((4, 70_000))
        gen = BatchNoiseGenerator(spawn_rngs(42, 4))
        result = gen.normal_matrix(
            70_000, mean=0.5, scale=2.0, out=out, threads=4
        )
        assert result is out
        assert np.array_equal(out, self._fill(threads=1))

    def test_invalid_threads_rejected(self):
        gen = BatchNoiseGenerator(spawn_rngs(42, 2))
        with pytest.raises(ConfigurationError):
            gen.normal_matrix(100, threads=0)

    def test_auto_resolution_policy(self):
        import os

        resolve = BatchNoiseGenerator._resolve_fill_threads
        # small rows and single rows stay serial
        assert resolve(None, 8, 1000) == 1
        assert resolve(None, 1, 1 << 20) == 1
        # large multi-row fills scale with the host, capped by rows
        expected = max(1, min(3, os.cpu_count() or 1))
        assert resolve(None, 3, 1 << 20) == expected
        # explicit counts are honored (capped by rows)
        assert resolve(16, 4, 100) == 4
        assert resolve(2, 4, 100) == 2
