"""Tests for repro.core.yfactor (full-ADC reference estimator)."""

import numpy as np
import pytest

from repro.core.definitions import y_factor_expected
from repro.core.yfactor import YFactorMethod
from repro.dsp.spectrum import Spectrum
from repro.errors import ConfigurationError, MeasurementError
from repro.signals.sources import GaussianNoiseSource


class TestFromPowers:
    def test_recovers_factor(self):
        method = YFactorMethod(2900.0, 290.0)
        y = y_factor_expected(2.0, 2900.0, 290.0)
        res = method.from_powers(y * 1.0, 1.0)
        assert res.noise_factor == pytest.approx(2.0)

    def test_gain_invariance(self):
        # Eq 11: scaling both powers by any gain leaves the result alone.
        method = YFactorMethod(2900.0, 290.0)
        a = method.from_powers(5.5, 1.0)
        b = method.from_powers(5.5e6, 1.0e6)
        assert a.noise_factor == pytest.approx(b.noise_factor)

    def test_hot_below_cold_rejected(self):
        method = YFactorMethod(2900.0, 290.0)
        with pytest.raises(MeasurementError):
            method.from_powers(1.0, 2.0)

    def test_zero_power_rejected(self):
        method = YFactorMethod(2900.0, 290.0)
        with pytest.raises(MeasurementError):
            method.from_powers(0.0, 1.0)

    def test_temperature_validation(self):
        with pytest.raises(ConfigurationError):
            YFactorMethod(290.0, 290.0)


class TestFromRecords:
    def test_simulated_measurement(self, rng):
        # Source + DUT noise in voltage domain: powers proportional to
        # (T_state + Te).
        te = 290.0  # F = 2
        method = YFactorMethod(2900.0, 290.0)
        hot = GaussianNoiseSource(np.sqrt(2900.0 + te)).render(200000, 1e4, rng)
        cold = GaussianNoiseSource(np.sqrt(290.0 + te)).render(200000, 1e4, rng)
        res = method.from_records(hot, cold)
        assert res.noise_figure_db == pytest.approx(3.01, abs=0.15)


class TestFromSpectra:
    def test_band_limited_estimate(self):
        freqs = np.arange(1000.0)
        hot = Spectrum(freqs, np.full(1000, 5.5))
        cold = Spectrum(freqs, np.ones(1000))
        method = YFactorMethod(2900.0, 290.0)
        res = method.from_spectra(hot, cold, 100.0, 400.0)
        assert res.y == pytest.approx(5.5)

    def test_exclusions_applied(self):
        freqs = np.arange(1000.0)
        hot_psd = np.full(1000, 5.5)
        hot_psd[200] = 1e6  # spur that must be excluded
        hot = Spectrum(freqs, hot_psd)
        cold = Spectrum(freqs, np.ones(1000))
        method = YFactorMethod(2900.0, 290.0)
        res = method.from_spectra(
            hot, cold, 100.0, 400.0, exclude=[(200.0, 2.0)]
        )
        assert res.y == pytest.approx(5.5)
