"""Tests for repro.signals.filters."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.signals.filters import (
    bandpass,
    decimate,
    equivalent_noise_bandwidth_single_pole,
    highpass,
    lowpass,
    single_pole_lowpass,
    single_pole_magnitude,
)
from repro.signals.sources import GaussianNoiseSource, SineSource
from repro.signals.waveform import Waveform

FS = 10000.0
N = 40000


def sine(freq, n=N):
    return SineSource(freq, 1.0).render(n, FS)


class TestLowpass:
    def test_passes_low_frequency(self):
        out = lowpass(sine(50.0), 1000.0)
        assert out.slice(N // 2, N).rms() == pytest.approx(1 / np.sqrt(2), rel=0.02)

    def test_attenuates_high_frequency(self):
        out = lowpass(sine(4000.0), 500.0)
        assert out.slice(N // 2, N).rms() < 0.01

    def test_rejects_cutoff_above_nyquist(self):
        with pytest.raises(ConfigurationError):
            lowpass(sine(100.0), 6000.0)

    def test_rejects_zero_order(self):
        with pytest.raises(ConfigurationError):
            lowpass(sine(100.0), 100.0, order=0)


class TestHighpass:
    def test_attenuates_low_frequency(self):
        out = highpass(sine(20.0), 1000.0)
        assert out.slice(N // 2, N).rms() < 0.01

    def test_passes_high_frequency(self):
        out = highpass(sine(4000.0), 500.0)
        assert out.slice(N // 2, N).rms() == pytest.approx(1 / np.sqrt(2), rel=0.02)


class TestBandpass:
    def test_passes_in_band(self):
        out = bandpass(sine(1000.0), 500.0, 2000.0)
        assert out.slice(N // 2, N).rms() == pytest.approx(1 / np.sqrt(2), rel=0.05)

    def test_rejects_out_of_band(self):
        low = bandpass(sine(50.0), 500.0, 2000.0)
        high = bandpass(sine(4500.0), 500.0, 2000.0)
        assert low.slice(N // 2, N).rms() < 0.02
        assert high.slice(N // 2, N).rms() < 0.02

    def test_rejects_inverted_band(self):
        with pytest.raises(ConfigurationError):
            bandpass(sine(100.0), 2000.0, 500.0)


class TestSinglePole:
    def test_minus_3db_at_pole(self):
        out = single_pole_lowpass(sine(1000.0), 1000.0)
        assert out.slice(N // 2, N).rms() == pytest.approx(
            1 / np.sqrt(2) / np.sqrt(2), rel=0.02
        )

    def test_dc_gain_is_unity(self):
        w = Waveform(np.ones(N), FS)
        out = single_pole_lowpass(w, 100.0)
        assert out.samples[-1] == pytest.approx(1.0, rel=1e-3)

    def test_magnitude_function_matches_filter(self):
        mag = single_pole_magnitude(np.array([1000.0]), 1000.0)[0]
        assert mag == pytest.approx(1 / np.sqrt(2))

    def test_enbw(self):
        assert equivalent_noise_bandwidth_single_pole(100.0) == pytest.approx(
            np.pi / 2 * 100.0
        )

    def test_noise_power_through_pole_matches_enbw(self, rng):
        # White noise with density S through a single pole keeps power
        # S * ENBW.  The pole must sit far below Nyquist so the truncated
        # (and bilinear-warped) integral matches the analog ENBW.
        density = 1e-4
        src = GaussianNoiseSource.from_density(density, FS)
        w = src.render(400000, FS, rng)
        pole = 50.0
        out = single_pole_lowpass(w, pole)
        expected = density * equivalent_noise_bandwidth_single_pole(pole)
        assert out.mean_square() == pytest.approx(expected, rel=0.05)


class TestDecimate:
    def test_halves_rate(self, white_noise):
        out = decimate(white_noise, 2)
        assert out.sample_rate == white_noise.sample_rate / 2

    def test_factor_one_is_identity(self, white_noise):
        assert decimate(white_noise, 1) is white_noise

    def test_rejects_zero_factor(self, white_noise):
        with pytest.raises(ConfigurationError):
            decimate(white_noise, 0)
