"""Tests for repro.dsp.psd (periodogram and Welch)."""

import numpy as np
import pytest

from repro.dsp.psd import periodogram, welch
from repro.errors import ConfigurationError
from repro.signals.sources import GaussianNoiseSource, SineSource
from repro.signals.waveform import Waveform

FS = 10000.0


class TestPeriodogramScaling:
    def test_parseval_white_noise(self, white_noise):
        spec = periodogram(white_noise)
        assert spec.total_power() == pytest.approx(
            white_noise.mean_square(), rel=1e-6
        )

    def test_white_noise_density_level(self, rng):
        sigma = 0.7
        w = GaussianNoiseSource(sigma).render(100000, FS, rng)
        spec = periodogram(w)
        expected = 2 * sigma**2 / FS
        assert spec.band_mean_density(100.0, 4900.0) == pytest.approx(
            expected, rel=0.05
        )

    def test_sine_line_power(self):
        w = SineSource(1000.0, 2.0).render(20000, FS)
        spec = periodogram(w)
        _, p = spec.line_power(1000.0, 50.0, subtract_floor=False)
        assert p == pytest.approx(2.0, rel=1e-3)  # A^2/2

    def test_windowed_sine_line_power_preserved(self):
        w = SineSource(1000.0, 2.0).render(20000, FS)
        spec = periodogram(w, window="hann")
        _, p = spec.line_power(
            1000.0, 50.0, integration_halfwidth_hz=5 * spec.df, subtract_floor=False
        )
        assert p == pytest.approx(2.0, rel=0.02)

    def test_raw_array_requires_sample_rate(self):
        with pytest.raises(ConfigurationError):
            periodogram(np.zeros(100))

    def test_raw_array_with_rate(self):
        spec = periodogram(np.ones(100), sample_rate=10.0)
        assert spec.f_max == pytest.approx(5.0)

    def test_detrend_removes_dc(self):
        w = Waveform(np.ones(1000) * 5.0, FS)
        spec = periodogram(w, detrend=True)
        assert spec.psd[0] == pytest.approx(0.0, abs=1e-20)

    def test_too_short_raises(self):
        with pytest.raises(ConfigurationError):
            periodogram(Waveform([1.0], FS))


class TestWelch:
    def test_parseval_approximate(self, rng):
        w = GaussianNoiseSource(1.0).render(100000, FS, rng)
        spec = welch(w, nperseg=4096)
        assert spec.total_power() == pytest.approx(w.mean_square(), rel=0.03)

    def test_variance_reduction_vs_periodogram(self, rng):
        w = GaussianNoiseSource(1.0).render(200000, FS, rng)
        p_spec = periodogram(w)
        w_spec = welch(w, nperseg=2048)
        band = (500.0, 4500.0)
        # Compare scatter of bin values around the (flat) mean density.
        p_sl = p_spec.slice_band(*band)
        w_sl = w_spec.slice_band(*band)
        p_rel_std = np.std(p_sl.psd) / np.mean(p_sl.psd)
        w_rel_std = np.std(w_sl.psd) / np.mean(w_sl.psd)
        assert w_rel_std < p_rel_std / 3

    def test_bin_spacing(self, white_noise):
        spec = welch(white_noise, nperseg=2000)
        assert spec.df == pytest.approx(FS / 2000)

    def test_sine_line_frequency(self):
        w = SineSource(1200.0, 1.0).render(50000, FS)
        spec = welch(w, nperseg=5000)
        f, _ = spec.find_peak(1200.0, 100.0)
        assert f == pytest.approx(1200.0, abs=spec.df)

    def test_nperseg_larger_than_signal_raises(self, white_noise):
        with pytest.raises(ConfigurationError):
            welch(white_noise, nperseg=10**6)

    def test_invalid_overlap_raises(self, white_noise):
        with pytest.raises(ConfigurationError):
            welch(white_noise, nperseg=1000, overlap=1.0)

    def test_zero_overlap_works(self, white_noise):
        spec = welch(white_noise, nperseg=1000, overlap=0.0)
        assert spec.total_power() == pytest.approx(
            white_noise.mean_square(), rel=0.1
        )

    def test_rectangular_window(self, white_noise):
        spec = welch(white_noise, nperseg=1000, window="rectangular")
        assert spec.total_power() == pytest.approx(
            white_noise.mean_square(), rel=0.1
        )

    def test_enbw_hann(self, white_noise):
        spec = welch(white_noise, nperseg=1000, window="hann")
        assert spec.enbw_hz == pytest.approx(1.5 * FS / 1000, rel=1e-3)
