"""Tests for repro.analog.noise_source."""

import numpy as np
import pytest

from repro.analog.noise_source import CalibratedNoiseSource
from repro.constants import BOLTZMANN
from repro.errors import ConfigurationError


class TestCalibratedNoiseSource:
    def test_densities(self):
        src = CalibratedNoiseSource(600.0, 2900.0, 290.0)
        assert src.density("hot") == pytest.approx(
            4 * BOLTZMANN * 2900.0 * 600.0
        )
        assert src.density("cold") == pytest.approx(
            4 * BOLTZMANN * 290.0 * 600.0
        )

    def test_y_factor_true(self):
        src = CalibratedNoiseSource(600.0, 2900.0, 290.0)
        assert src.y_factor_true == pytest.approx(10.0)

    def test_rendered_power_ratio(self, rng):
        src = CalibratedNoiseSource(1e9, 2900.0, 290.0)
        hot = src.render("hot", 50000, 10000.0, rng)
        cold = src.render("cold", 50000, 10000.0, rng)
        assert hot.mean_square() / cold.mean_square() == pytest.approx(
            10.0, rel=0.05
        )

    def test_invalid_state_raises(self):
        src = CalibratedNoiseSource(600.0, 2900.0)
        with pytest.raises(ConfigurationError):
            src.density("warm")

    def test_hot_must_exceed_cold(self):
        with pytest.raises(ConfigurationError):
            CalibratedNoiseSource(600.0, 290.0, 290.0)

    def test_rejects_zero_resistance(self):
        with pytest.raises(ConfigurationError):
            CalibratedNoiseSource(0.0, 2900.0)


class TestHotLevelError:
    def test_actual_vs_calibrated(self):
        src = CalibratedNoiseSource(600.0, 2900.0, hot_level_error=0.05)
        assert src.calibrated_temperature("hot") == 2900.0
        assert src.actual_temperature("hot") == pytest.approx(3045.0)

    def test_cold_unaffected(self):
        src = CalibratedNoiseSource(600.0, 2900.0, hot_level_error=0.05)
        assert src.actual_temperature("cold") == src.calibrated_temperature("cold")

    def test_density_uses_actual(self):
        biased = CalibratedNoiseSource(600.0, 2900.0, hot_level_error=0.10)
        clean = CalibratedNoiseSource(600.0, 2900.0)
        assert biased.density("hot") == pytest.approx(1.1 * clean.density("hot"))

    def test_rejects_error_below_minus_one(self):
        with pytest.raises(ConfigurationError):
            CalibratedNoiseSource(600.0, 2900.0, hot_level_error=-1.5)


class TestFromEnr:
    def test_enr_954_gives_2900k(self):
        src = CalibratedNoiseSource.from_enr_db(600.0, 9.542)
        assert src.t_hot_k == pytest.approx(2900.0, rel=1e-3)
