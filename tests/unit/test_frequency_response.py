"""Tests for repro.core.frequency_response (the BIST cell's other use)."""

import numpy as np
import pytest

from repro.core.frequency_response import FrequencyResponseBIST
from repro.errors import ConfigurationError, MeasurementError
from repro.signals.filters import single_pole_lowpass
from repro.signals.waveform import Waveform

FS = 32768.0


def make_bist(freqs=(500.0, 1000.0, 2000.0, 4000.0, 8000.0)):
    return FrequencyResponseBIST(
        frequencies_hz=freqs,
        stimulus_amplitude=0.2,
        dither_rms=1.0,
        n_samples=2**17,
        sample_rate_hz=FS,
        nperseg=8192,
    )


class TestValidation:
    def test_needs_frequencies(self):
        with pytest.raises(ConfigurationError):
            FrequencyResponseBIST([], 0.1, 1.0, 1000, FS, 100)

    def test_rejects_frequency_above_nyquist(self):
        with pytest.raises(ConfigurationError):
            FrequencyResponseBIST([20000.0], 0.1, 1.0, 10000, FS, 1000)

    def test_rejects_zero_amplitude(self):
        with pytest.raises(ConfigurationError):
            FrequencyResponseBIST([100.0], 0.0, 1.0, 10000, FS, 1000)

    def test_rejects_zero_dither(self):
        with pytest.raises(ConfigurationError):
            FrequencyResponseBIST([100.0], 0.1, 0.0, 10000, FS, 1000)

    def test_rejects_short_record(self):
        with pytest.raises(ConfigurationError):
            FrequencyResponseBIST([100.0], 0.1, 1.0, 100, FS, 1000)


class TestMeasure:
    def test_flat_dut_is_flat(self):
        bist = make_bist((500.0, 1000.0, 2000.0))

        def unity(wave, rng):
            return wave

        result = bist.measure(unity, rng=1)
        # Line-power estimation noise at 31 Welch segments leaves a few
        # tenths of a dB of scatter.
        assert np.all(np.abs(result.magnitudes_db) < 0.8)

    def test_single_pole_shape_recovered(self):
        pole = 2000.0
        bist = make_bist((250.0, 500.0, 1000.0, 2000.0, 4000.0, 8000.0))

        def dut(wave, rng):
            return single_pole_lowpass(wave, pole)

        result = bist.measure(dut, rng=2)
        # At the pole the response must be ~-3 dB relative to the lowest
        # frequency.
        mags = dict(zip(result.frequencies_hz, result.magnitudes_db))
        assert mags[2000.0] - mags[250.0] == pytest.approx(-3.0, abs=0.7)
        # Monotonically decreasing overall.
        assert mags[8000.0] < mags[2000.0] < mags[500.0] + 0.5

    def test_minus_3db_frequency_interpolation(self):
        pole = 2000.0
        bist = make_bist((250.0, 1000.0, 2000.0, 4000.0, 8000.0))

        def dut(wave, rng):
            return single_pole_lowpass(wave, pole)

        result = bist.measure(dut, rng=3)
        assert result.minus_3db_frequency() == pytest.approx(pole, rel=0.35)

    def test_minus_3db_raises_when_flat(self):
        bist = make_bist((500.0, 1000.0))
        result = bist.measure(lambda w, r: w, rng=4)
        with pytest.raises(MeasurementError):
            result.minus_3db_frequency()

    def test_gain_scaling_does_not_change_shape(self):
        bist = make_bist((500.0, 2000.0))
        flat = bist.measure(lambda w, r: w, rng=5)
        scaled = bist.measure(lambda w, r: w.scaled(3.0), rng=5)
        assert flat.magnitudes_db == pytest.approx(scaled.magnitudes_db, abs=0.3)
