"""Tests for repro.dsp.windows."""

import numpy as np
import pytest

from repro.dsp.windows import (
    blackman,
    enbw_bins,
    flattop,
    get_window,
    hamming,
    hann,
    rectangular,
    window_gains,
)
from repro.errors import ConfigurationError


class TestShapes:
    @pytest.mark.parametrize(
        "name", ["rectangular", "hann", "hamming", "blackman", "flattop"]
    )
    def test_length(self, name):
        assert get_window(name, 128).size == 128

    @pytest.mark.parametrize("name", ["hann", "hamming", "blackman"])
    def test_values_in_unit_range(self, name):
        w = get_window(name, 256)
        assert np.all(w >= -1e-12)
        assert np.all(w <= 1.0 + 1e-12)

    def test_rectangular_all_ones(self):
        assert np.all(rectangular(10) == 1.0)

    def test_hann_starts_at_zero(self):
        assert hann(64)[0] == pytest.approx(0.0, abs=1e-12)

    def test_hann_periodic_peak(self):
        # Periodic Hann of even length peaks at exactly n/2.
        w = hann(64)
        assert w[32] == pytest.approx(1.0)

    def test_hamming_endpoint(self):
        assert hamming(64)[0] == pytest.approx(0.08, abs=1e-12)

    def test_length_one_window_is_one(self):
        for name in ("hann", "hamming", "blackman", "flattop"):
            assert get_window(name, 1)[0] == 1.0


class TestLookup:
    def test_case_insensitive(self):
        assert np.allclose(get_window("HANN", 16), hann(16))

    def test_alias_boxcar(self):
        assert np.all(get_window("boxcar", 8) == 1.0)

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            get_window("kaiser", 16)

    def test_zero_length_raises(self):
        with pytest.raises(ConfigurationError):
            get_window("hann", 0)


class TestGains:
    def test_rectangular_gains(self):
        coherent, noise = window_gains(rectangular(100))
        assert coherent == 1.0
        assert noise == 1.0

    def test_hann_coherent_gain_half(self):
        coherent, _ = window_gains(hann(4096))
        assert coherent == pytest.approx(0.5, abs=1e-3)

    def test_hann_noise_gain(self):
        _, noise = window_gains(hann(4096))
        assert noise == pytest.approx(0.375, abs=1e-3)

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            window_gains(np.array([]))


class TestEnbw:
    def test_rectangular_enbw_is_one_bin(self):
        assert enbw_bins(rectangular(512)) == pytest.approx(1.0)

    def test_hann_enbw_is_1p5_bins(self):
        assert enbw_bins(hann(4096)) == pytest.approx(1.5, abs=1e-3)

    def test_flattop_enbw_is_largest(self):
        assert enbw_bins(flattop(1024)) > enbw_bins(blackman(1024)) > enbw_bins(
            hann(1024)
        )

    def test_zero_sum_window_raises(self):
        with pytest.raises(ConfigurationError):
            enbw_bins(np.array([1.0, -1.0]))


class TestCoefficientCache:
    def test_cache_hit_returns_same_object(self):
        from repro.dsp.windows import clear_window_cache

        clear_window_cache()
        first = get_window("hann", 512)
        second = get_window("hann", 512)
        assert second is first

    def test_cached_window_bit_identical_to_generator(self):
        # The promise in the get_window docstring: serving from the
        # cache never changes a single bit vs a fresh generation.
        from repro.dsp.windows import clear_window_cache

        clear_window_cache()
        for name, fn in [
            ("hann", hann),
            ("hamming", hamming),
            ("blackman", blackman),
            ("flattop", flattop),
            ("rectangular", rectangular),
        ]:
            get_window(name, 10_000)  # populate
            assert np.array_equal(get_window(name, 10_000), fn(10_000))

    def test_cached_window_is_read_only(self):
        w = get_window("hann", 64)
        with pytest.raises(ValueError):
            w[0] = 1.0

    def test_cache_keys_on_length_and_dtype(self):
        from repro.dsp.windows import clear_window_cache, window_cache_info

        clear_window_cache()
        get_window("hann", 64)
        get_window("hann", 128)
        get_window("hann", 64, dtype=np.float32)
        get_window("hann", 64)  # hit, no growth
        assert window_cache_info()["windows"] == 3
        assert window_cache_info()["nbytes"] > 0

    def test_aliases_share_cache_entry(self):
        from repro.dsp.windows import clear_window_cache, window_cache_info

        clear_window_cache()
        assert get_window("boxcar", 32) is get_window("rectangular", 32)
        assert window_cache_info()["windows"] == 1

    def test_clear_window_cache(self):
        from repro.dsp.windows import clear_window_cache, window_cache_info

        get_window("hann", 256)
        clear_window_cache()
        assert window_cache_info() == {"windows": 0, "nbytes": 0}
