"""Tests for per-tap reference support in MultiPointBIST and the
hot-temperature selection rule used for high-NF devices."""

import numpy as np
import pytest

from repro.analog.opamp import OPAMP_LIBRARY, OpAmpNoiseModel
from repro.core.bist import BISTMeasurementConfig
from repro.core.multipoint import MultiPointBIST, TestPoint
from repro.digitizer.digitizer import OneBitDigitizer
from repro.errors import ConfigurationError
from repro.experiments.table3 import _hot_temperature_for
from repro.signals.sources import GaussianNoiseSource, SquareSource

FS = 10000.0
N = 50000


def make_multipoint():
    config = BISTMeasurementConfig(
        sample_rate_hz=FS,
        n_samples=N,
        nperseg=5000,
        reference_frequency_hz=60.0,
        noise_band_hz=(100.0, 4500.0),
    )
    points = [TestPoint(n, OneBitDigitizer()) for n in ("a", "b")]
    return MultiPointBIST(points, config, t_hot_k=2900.0)


class TestPerTapReferences:
    def test_mapping_accepted(self):
        mp = make_multipoint()
        signals = {
            "a": GaussianNoiseSource(1.0).render(N, FS, 1),
            "b": GaussianNoiseSource(5.0).render(N, FS, 2),
        }
        refs = {
            "a": SquareSource(60.0, 0.2).render(N, FS),
            "b": SquareSource(60.0, 1.0).render(N, FS),
        }
        bits = mp.digitize_state(signals, refs, rng=3)
        assert set(bits) == {"a", "b"}

    def test_missing_tap_reference_raises(self):
        mp = make_multipoint()
        signals = {
            "a": GaussianNoiseSource(1.0).render(N, FS, 1),
            "b": GaussianNoiseSource(1.0).render(N, FS, 2),
        }
        refs = {"a": SquareSource(60.0, 0.2).render(N, FS)}
        with pytest.raises(ConfigurationError):
            mp.digitize_state(signals, refs, rng=3)

    def test_shared_waveform_still_works(self):
        mp = make_multipoint()
        signals = {
            "a": GaussianNoiseSource(1.0).render(N, FS, 1),
            "b": GaussianNoiseSource(1.0).render(N, FS, 2),
        }
        shared = SquareSource(60.0, 0.2).render(N, FS)
        bits = mp.digitize_state(signals, shared, rng=4)
        assert set(bits) == {"a", "b"}


class TestHotTemperatureRule:
    def test_quiet_device_keeps_paper_temperature(self):
        assert _hot_temperature_for(OPAMP_LIBRARY["OP27"], 600.0) == 2900.0

    def test_noisy_device_gets_hotter_source(self):
        t_hot = _hot_temperature_for(OPAMP_LIBRARY["CA3140"], 600.0)
        assert t_hot > 2900.0

    def test_rule_targets_usable_y(self):
        from repro.analog.amplifier import NonInvertingAmplifier
        from repro.analog.noise_analysis import noise_budget
        from repro.core.definitions import y_factor_expected

        model = OPAMP_LIBRARY["CA3140"]
        t_hot = _hot_temperature_for(model, 600.0)
        amp = NonInvertingAmplifier(model, 10000.0, 100.0, 600.0)
        f = noise_budget(amp, 500.0, 1500.0).noise_factor
        assert y_factor_expected(f, t_hot, 290.0) >= 1.5 - 0.01
