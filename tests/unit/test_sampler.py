"""Tests for repro.digitizer.sampler."""

import numpy as np
import pytest

from repro.digitizer.sampler import SampledLatch
from repro.errors import ConfigurationError
from repro.signals.waveform import Waveform


class TestSampledLatch:
    def test_divider_one_is_identity(self):
        w = Waveform([1.0, -1.0, 1.0], 100.0)
        out = SampledLatch(1).sample(w)
        assert out == w

    def test_divider_two_halves_rate_and_length(self):
        w = Waveform(np.arange(10, dtype=float), 100.0)
        out = SampledLatch(2).sample(w)
        assert out.sample_rate == 50.0
        assert np.allclose(out.samples, [0, 2, 4, 6, 8])

    def test_empty_input(self):
        out = SampledLatch(2).sample(Waveform(np.zeros(0), 100.0))
        assert len(out) == 0
        assert out.sample_rate == 50.0

    def test_rejects_zero_divider(self):
        with pytest.raises(ConfigurationError):
            SampledLatch(0)

    def test_rejects_float_divider(self):
        with pytest.raises(ConfigurationError):
            SampledLatch(1.5)

    def test_rejects_negative_jitter(self):
        with pytest.raises(ConfigurationError):
            SampledLatch(1, jitter_rms_samples=-1.0)


class TestJitter:
    def test_jitter_changes_sampling(self):
        w = Waveform(np.arange(1000, dtype=float), 1000.0)
        clean = SampledLatch(10).sample(w)
        jittered = SampledLatch(10, jitter_rms_samples=2.0).sample(w, rng=5)
        assert not np.allclose(clean.samples, jittered.samples)

    def test_jitter_is_bounded_to_record(self):
        w = Waveform(np.arange(100, dtype=float), 1000.0)
        out = SampledLatch(10, jitter_rms_samples=50.0).sample(w, rng=1)
        assert np.all(out.samples >= 0)
        assert np.all(out.samples <= 99)

    def test_jitter_reproducible(self):
        w = Waveform(np.arange(1000, dtype=float), 1000.0)
        a = SampledLatch(10, jitter_rms_samples=1.0).sample(w, rng=4)
        b = SampledLatch(10, jitter_rms_samples=1.0).sample(w, rng=4)
        assert a == b

    def test_output_length_unchanged_by_jitter(self):
        w = Waveform(np.arange(1000, dtype=float), 1000.0)
        out = SampledLatch(7, jitter_rms_samples=3.0).sample(w, rng=2)
        assert len(out) == len(SampledLatch(7).sample(w))
