"""Tests for repro.core.averaging."""

import numpy as np
import pytest

from repro.core.averaging import RepeatedMeasurement
from repro.core.bist import BISTMeasurementConfig, OneBitNoiseFigureBIST
from repro.digitizer.digitizer import OneBitDigitizer
from repro.errors import ConfigurationError, MeasurementError
from repro.signals.sources import GaussianNoiseSource, SquareSource
from repro.signals.waveform import Waveform

FS = 10000.0
N = 100000


def make_estimator():
    config = BISTMeasurementConfig(
        sample_rate_hz=FS,
        n_samples=N,
        nperseg=5000,
        reference_frequency_hz=60.0,
        noise_band_hz=(100.0, 4500.0),
    )
    return OneBitNoiseFigureBIST(config, 2900.0, 290.0)


def make_acquire(f_dut=2.0):
    te = (f_dut - 1.0) * 290.0
    ref = SquareSource(60.0, 0.2).render(N, FS)
    dig = OneBitDigitizer()

    def acquire(state, rng):
        t = 2900.0 if state == "hot" else 290.0
        sigma = np.sqrt((t + te) / (290.0 + te))
        return dig.digitize(
            GaussianNoiseSource(sigma).render(N, FS, rng), ref
        )

    return acquire


class TestRepeatedMeasurement:
    def test_mean_near_target(self):
        rm = RepeatedMeasurement(make_estimator(), n_repeats=4)
        result = rm.measure(make_acquire(f_dut=2.0), rng=1)
        assert result.nf_mean_db == pytest.approx(3.01, abs=0.8)
        assert result.n_measurements == 4
        assert result.n_failed == 0

    def test_confidence_interval_brackets_mean(self):
        rm = RepeatedMeasurement(make_estimator(), n_repeats=4)
        result = rm.measure(make_acquire(), rng=2)
        low, high = result.confidence_interval_db
        assert low < result.nf_mean_db < high
        assert high - low == pytest.approx(
            2 * result.confidence_halfwidth_db
        )

    def test_reproducible(self):
        rm = RepeatedMeasurement(make_estimator(), n_repeats=3)
        a = rm.measure(make_acquire(), rng=5)
        b = rm.measure(make_acquire(), rng=5)
        assert a.nf_values_db == b.nf_values_db

    def test_failures_propagate_by_default(self):
        rm = RepeatedMeasurement(make_estimator(), n_repeats=2)

        def broken(state, rng):
            raise MeasurementError("no line")

        with pytest.raises(MeasurementError):
            rm.measure(broken, rng=1)

    def test_allow_failures_counts_and_continues(self):
        calls = {"n": 0}
        good = make_acquire()

        def flaky(state, rng):
            calls["n"] += 1
            # Fail the first measurement (it aborts on its first call).
            if calls["n"] <= 1:
                raise MeasurementError("no line")
            return good(state, rng)

        rm = RepeatedMeasurement(
            make_estimator(), n_repeats=4, allow_failures=True
        )
        result = rm.measure(flaky, rng=3)
        assert result.n_failed == 1
        assert result.n_measurements == 3

    def test_too_many_failures_raise(self):
        rm = RepeatedMeasurement(
            make_estimator(), n_repeats=3, allow_failures=True
        )

        def broken(state, rng):
            raise MeasurementError("no line")

        with pytest.raises(MeasurementError):
            rm.measure(broken, rng=1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RepeatedMeasurement("est", 4)
        with pytest.raises(ConfigurationError):
            RepeatedMeasurement(make_estimator(), n_repeats=1)
