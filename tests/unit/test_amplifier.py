"""Tests for repro.analog.amplifier."""

import numpy as np
import pytest

from repro.analog.amplifier import NonInvertingAmplifier
from repro.analog.opamp import OPAMP_LIBRARY, OpAmpNoiseModel
from repro.errors import ConfigurationError
from repro.signals.sources import SineSource
from repro.signals.waveform import Waveform

FS = 32768.0


def make_amp(opamp=None, rf=10000.0, rg=100.0, rs=600.0, **kwargs):
    return NonInvertingAmplifier(
        opamp if opamp is not None else OPAMP_LIBRARY["OP27"],
        r_feedback_ohm=rf,
        r_ground_ohm=rg,
        source_resistance_ohm=rs,
        **kwargs,
    )


class TestTopology:
    def test_gain_is_1_plus_rf_over_rg(self):
        assert make_amp().gain == pytest.approx(101.0)

    def test_unity_gain_with_zero_rf(self):
        assert make_amp(rf=0.0).gain == 1.0

    def test_bandwidth_is_gbw_over_gain(self):
        amp = make_amp()
        assert amp.bandwidth_hz == pytest.approx(8e6 / 101.0)

    def test_feedback_parallel(self):
        assert make_amp().feedback_parallel_ohm == pytest.approx(
            10000 * 100 / 10100
        )

    def test_feedback_parallel_zero_when_rf_zero(self):
        assert make_amp(rf=0.0).feedback_parallel_ohm == 0.0

    def test_rejects_zero_rg(self):
        with pytest.raises(ConfigurationError):
            make_amp(rg=0.0)

    def test_rejects_zero_rs(self):
        with pytest.raises(ConfigurationError):
            make_amp(rs=0.0)

    def test_rejects_bad_opamp_type(self):
        with pytest.raises(ConfigurationError):
            NonInvertingAmplifier("OP27", 1000.0, 100.0, 600.0)


class TestGainDrift:
    def test_nominal_gain_unaffected(self):
        amp = make_amp().with_gain_drift(1.1)
        assert amp.gain == pytest.approx(101.0)
        assert amp.actual_gain == pytest.approx(111.1)

    def test_rejects_zero_drift(self):
        with pytest.raises(ConfigurationError):
            make_amp(gain_drift=0.0)


class TestNoiseDensities:
    def test_amplifier_noise_includes_all_terms(self):
        opamp = OpAmpNoiseModel("x", 3e-9, 0.4e-12)
        amp = make_amp(opamp)
        density = float(amp.amplifier_noise_density(1000.0))
        en2 = 9e-18
        rs, rp = 600.0, 10000 * 100 / 10100
        in2_terms = (0.4e-12) ** 2 * (rs**2 + rp**2)
        johnson = 4 * 1.380649e-23 * 290.0 * rp
        assert density == pytest.approx(en2 + in2_terms + johnson, rel=1e-6)

    def test_source_density_scales_with_temperature(self):
        amp = make_amp()
        assert amp.source_noise_density(2900.0) == pytest.approx(
            10 * amp.source_noise_density(290.0)
        )

    def test_spot_noise_factor_above_one(self):
        assert make_amp().spot_noise_factor(1000.0) > 1.0

    def test_quieter_opamp_lower_nf(self):
        quiet = make_amp(OpAmpNoiseModel("q", 1e-9, 0.0))
        loud = make_amp(OpAmpNoiseModel("l", 30e-9, 0.0))
        assert quiet.spot_noise_factor(1e3) < loud.spot_noise_factor(1e3)


class TestProcess:
    def test_amplifies_signal_without_noise(self):
        amp = make_amp()
        w = SineSource(1000.0, 1e-3).render(8192, FS)
        out = amp.process(w, include_noise=False)
        # 1 kHz is far below the ~79 kHz closed-loop pole.
        assert out.slice(1000, 8192).rms() == pytest.approx(
            101.0 * 1e-3 / np.sqrt(2), rel=0.01
        )

    def test_noise_floor_present(self, rng):
        amp = make_amp()
        silent = Waveform(np.zeros(16384), FS)
        out = amp.process(silent, rng=rng)
        assert out.rms() > 0.0

    def test_output_noise_scales_with_gain(self, rng):
        opamp = OpAmpNoiseModel("x", 10e-9, 0.0, gbw_hz=100e6)
        low = NonInvertingAmplifier(opamp, 900.0, 100.0, 600.0)  # x10
        high = NonInvertingAmplifier(opamp, 9900.0, 100.0, 600.0)  # x100
        silent = Waveform(np.zeros(32768), FS)
        out_low = low.process(silent, rng=1)
        out_high = high.process(silent, rng=1)
        # Same input noise realization, 10x gain -> ~10x output RMS
        # (feedback-network Johnson differs slightly between the two).
        assert out_high.rms() / out_low.rms() == pytest.approx(10.0, rel=0.1)

    def test_gain_drift_applies_to_output(self):
        amp = make_amp()
        drifted = amp.with_gain_drift(1.2)
        w = SineSource(1000.0, 1e-3).render(4096, FS)
        a = amp.process(w, include_noise=False)
        b = drifted.process(w, include_noise=False)
        assert b.rms() / a.rms() == pytest.approx(1.2, rel=1e-6)

    def test_bandwidth_limits_high_frequency(self):
        opamp = OpAmpNoiseModel("slow", 1e-9, 0.0, gbw_hz=101e3)  # BW=1kHz
        amp = make_amp(opamp)
        w = SineSource(8000.0, 1e-3).render(32768, FS)
        out = amp.process(w, include_noise=False)
        # The discrete single-pole filter uses the bilinear transform, so
        # 8 kHz (half Nyquist) is warped to an equivalent analog
        # frequency f_eq = fs/pi * tan(pi*f/fs) before the pole applies.
        f_eq = FS / np.pi * np.tan(np.pi * 8000.0 / FS)
        expected = 101.0 * 1e-3 / np.sqrt(2) / np.sqrt(1 + (f_eq / 1000.0) ** 2)
        assert out.slice(8000, 32768).rms() == pytest.approx(expected, rel=0.05)

    def test_rendered_noise_matches_analytic_density(self, rng):
        # Time-domain synthesis must integrate to the analytic density.
        opamp = OpAmpNoiseModel("x", 10e-9, 0.5e-12, gbw_hz=100e6)
        amp = make_amp(opamp)
        noise = amp.render_input_noise(200000, FS, rng)
        expected_ms = float(amp.amplifier_noise_density(1000.0)) * FS / 2
        assert noise.mean_square() == pytest.approx(expected_ms, rel=0.05)

    def test_rejects_non_waveform(self):
        with pytest.raises(ConfigurationError):
            make_amp().process(np.zeros(10))
