"""Unit tests for the popcount bit-domain statistics kernels."""

import numpy as np
import pytest

from repro.bitstream import PackedBitstream
from repro.dsp.bitstats import (
    packed_mean,
    packed_mean_square,
    packed_ones,
    packed_segment_means,
    packed_segment_ones,
    popcount,
    segment_grid_aligned,
)
from repro.errors import ConfigurationError
from repro.kernels import kernel_backend


def _random_record(n, seed, bias=0.5):
    rng = np.random.default_rng(seed)
    samples = np.where(rng.random(n) < bias, 1.0, -1.0)
    return samples, PackedBitstream.pack(samples, 10_000.0)


class TestPopcount:
    def test_all_byte_values(self):
        words = np.arange(256, dtype=np.uint8)
        expected = np.array([bin(v).count("1") for v in range(256)])
        assert np.array_equal(popcount(words), expected)

    def test_lookup_table_fallback_matches(self):
        words = np.random.default_rng(0).integers(
            0, 256, size=10_000
        ).astype(np.uint8)
        fast = popcount(words)
        with kernel_backend("reference"):
            assert np.array_equal(popcount(words), fast)


class TestPackedMoments:
    @pytest.mark.parametrize("n", [8, 64, 1000, 12_345])
    @pytest.mark.parametrize("bias", [0.1, 0.5, 0.9])
    def test_mean_bit_identical_to_float(self, n, bias):
        samples, packed = _random_record(n, seed=n, bias=bias)
        assert packed_mean(packed) == samples.mean()

    def test_ones_count(self):
        samples, packed = _random_record(999, seed=3)
        assert packed_ones(packed) == int((samples > 0).sum())

    def test_mean_square_is_one(self):
        _, packed = _random_record(100, seed=1)
        assert packed_mean_square(packed) == 1.0

    def test_empty_record_rejected(self):
        packed = PackedBitstream.pack(np.empty(0), 10_000.0)
        with pytest.raises(ConfigurationError):
            packed_mean(packed)
        with pytest.raises(ConfigurationError):
            packed_mean_square(packed)


class TestSegmentGrid:
    def test_alignment_predicate(self):
        assert segment_grid_aligned(10_000, 5_000)
        assert segment_grid_aligned(8192, 2048)
        assert not segment_grid_aligned(10_000, 4_999)
        assert not segment_grid_aligned(9_999, 5_000)
        assert not segment_grid_aligned(0, 8)

    @pytest.mark.parametrize(
        "n,nperseg,step",
        [
            (100_000, 10_000, 5_000),   # the paper's 50 % overlap grid
            (100_000, 8_192, 2_048),    # 75 % overlap
            (100_000, 8_000, 8_000),    # no overlap
            (123_457, 8_000, 4_000),    # record length not a word multiple
            (100_000, 9_984, 5_016),    # coprime-ish aligned grid
        ],
    )
    def test_segment_means_bit_identical_to_float(self, n, nperseg, step):
        samples, packed = _random_record(n, seed=nperseg, bias=0.47)
        means = packed_segment_means(packed, nperseg, step)
        n_segments = 1 + (n - nperseg) // step
        assert means.shape == (n_segments,)
        for s in range(n_segments):
            segment = samples[s * step : s * step + nperseg]
            assert means[s] == segment.mean()

    def test_segment_ones(self):
        samples, packed = _random_record(50_000, seed=5)
        ones = packed_segment_ones(packed, 8_000, 4_000)
        for s, count in enumerate(ones):
            assert count == int(
                (samples[s * 4_000 : s * 4_000 + 8_000] > 0).sum()
            )

    def test_misaligned_grid_rejected(self):
        _, packed = _random_record(50_000, seed=5)
        with pytest.raises(ConfigurationError):
            packed_segment_ones(packed, 8_001, 4_000)

    def test_short_record_rejected(self):
        _, packed = _random_record(1_000, seed=5)
        with pytest.raises(ConfigurationError):
            packed_segment_ones(packed, 8_000, 4_000)
