"""Tests for repro.experiments.matlab_sim (the section-5.2 environment)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.matlab_sim import MatlabSimConfig, MatlabSimulation


class TestConfig:
    def test_defaults_match_paper(self):
        c = MatlabSimConfig()
        assert c.t_hot_k == 10000.0
        assert c.t_cold_k == 1000.0
        assert c.n_samples == 1_000_000
        assert c.nperseg == 10000
        assert c.reference_frequency_hz == 60.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MatlabSimConfig(t_hot_k=500.0, t_cold_k=1000.0)
        with pytest.raises(ConfigurationError):
            MatlabSimConfig(reference_ratio=0.0)
        with pytest.raises(ConfigurationError):
            MatlabSimConfig(cold_rms_v=0.0)


class TestSimulation:
    def test_true_ratio_matches_eq(self):
        sim = MatlabSimulation()
        # Te for a 10 dB DUT is 2610 K.
        assert sim.te_k == pytest.approx(2610.0, rel=1e-4)
        assert sim.true_power_ratio == pytest.approx(12610.0 / 3610.0)

    def test_noise_rms_anchored_to_cold(self):
        sim = MatlabSimulation()
        assert sim.noise_rms("cold") == 0.30
        assert sim.noise_rms("hot") == pytest.approx(
            0.30 * np.sqrt(sim.true_power_ratio)
        )

    def test_invalid_state_rejected(self):
        with pytest.raises(ConfigurationError):
            MatlabSimulation().noise_rms("lukewarm")

    def test_reference_amplitude(self):
        sim = MatlabSimulation()
        assert sim.reference_amplitude_v == pytest.approx(0.06)

    def test_rendered_noise_levels(self):
        cfg = MatlabSimConfig(n_samples=100000, nperseg=5000)
        sim = MatlabSimulation(cfg)
        hot = sim.render_noise("hot", rng=1)
        cold = sim.render_noise("cold", rng=2)
        assert hot.rms() == pytest.approx(sim.noise_rms("hot"), rel=0.02)
        assert cold.rms() == pytest.approx(sim.noise_rms("cold"), rel=0.02)

    def test_reference_is_square_at_60hz(self):
        cfg = MatlabSimConfig(n_samples=10000, nperseg=5000)
        ref = MatlabSimulation(cfg).reference_waveform()
        assert set(np.unique(ref.samples)) == {-0.06, 0.06}

    def test_bitstream_is_pm_one(self):
        cfg = MatlabSimConfig(n_samples=20000, nperseg=5000)
        bits = MatlabSimulation(cfg).bitstream("cold", rng=3)
        assert set(np.unique(bits.samples)) <= {-1.0, 1.0}

    def test_estimator_calibration(self):
        sim = MatlabSimulation()
        est = sim.make_estimator()
        assert est.t_hot_k == 10000.0
        assert est.t_cold_k == 1000.0
        assert est.config.harmonic_kind == "odd"


class TestPhiloxFallbackPaths:
    """Philox packed acquisition outside the Bernoulli model.

    Hysteresis makes comparator decisions state-dependent and latch
    jitter randomizes the sampling instants, so direct Bernoulli
    synthesis must *fall back* to counter-based noise fills plus the
    regular digitize path — deterministically, and bit-identical to the
    float-path philox digitization of the same streams.
    """

    def _sim(self):
        return MatlabSimulation(
            MatlabSimConfig(n_samples=20_000, nperseg=1000)
        )

    def _digitizer(self, kind):
        from repro.digitizer.comparator import Comparator
        from repro.digitizer.digitizer import OneBitDigitizer
        from repro.digitizer.sampler import SampledLatch

        if kind == "hysteresis":
            return OneBitDigitizer(
                comparator=Comparator(hysteresis_v=0.02)
            )
        if kind == "jitter":
            return OneBitDigitizer(
                sampler=SampledLatch(1, jitter_rms_samples=0.5)
            )
        raise AssertionError(kind)

    def _acquire(self, sim, dig, packed, seed=3):
        from repro.signals.random import spawn_rngs

        return sim.acquire_bitstreams(
            ["hot", "cold"],
            spawn_rngs(seed, 2),
            digitizer=dig,
            packed=packed,
            rng_mode="philox",
        )

    @pytest.mark.parametrize("kind", ["hysteresis", "jitter"])
    def test_fallback_thresholds_refused(self, kind):
        sim = self._sim()
        assert (
            sim._bernoulli_thresholds("hot", self._digitizer(kind)) is None
        )

    @pytest.mark.parametrize("kind", ["hysteresis", "jitter"])
    def test_fallback_is_deterministic(self, kind):
        sim = self._sim()
        batch_a, rate_a = self._acquire(sim, self._digitizer(kind), True)
        batch_b, rate_b = self._acquire(sim, self._digitizer(kind), True)
        assert rate_a == rate_b
        assert np.array_equal(batch_a.words, batch_b.words)

    @pytest.mark.parametrize("kind", ["hysteresis", "jitter"])
    def test_fallback_matches_float_philox_path(self, kind):
        # The packed fallback draws the same philox noise and runs the
        # same digitizer as the float path, record by record — so the
        # unpacked bits must match the float digitization exactly.
        sim = self._sim()
        packed, rate_packed = self._acquire(sim, self._digitizer(kind), True)
        floats, rate_float = self._acquire(sim, self._digitizer(kind), False)
        assert rate_packed == rate_float
        assert np.array_equal(packed.unpack(), np.asarray(floats))

    @pytest.mark.parametrize("kind", ["hysteresis", "jitter"])
    def test_fallback_records_carry_philox_provenance(self, kind):
        batch, _ = self._acquire(self._sim(), self._digitizer(kind), True)
        assert batch.provenance is not None
        assert all(p.rng_mode == "philox" for p in batch.provenance)

    def test_fallback_statistics_match_fast_path(self):
        # Same stochastic process either side of the model boundary: the
        # hysteresis-free bench takes the direct Bernoulli path, the
        # hysteretic one the fallback; with a tiny hysteresis their bit
        # fractions must agree to well under binomial scatter.
        from repro.digitizer.comparator import Comparator
        from repro.digitizer.digitizer import OneBitDigitizer

        sim = self._sim()
        fast, _ = self._acquire(sim, OneBitDigitizer(), True)
        tiny = OneBitDigitizer(comparator=Comparator(hysteresis_v=1e-9))
        slow, _ = self._acquire(sim, tiny, True)
        frac_fast = np.unpackbits(
            fast.words, axis=-1, count=fast.n_samples
        ).mean(axis=-1)
        frac_slow = np.unpackbits(
            slow.words, axis=-1, count=slow.n_samples
        ).mean(axis=-1)
        assert np.abs(frac_fast - frac_slow).max() < 0.02

    def test_fast_path_still_taken_when_model_allows(self):
        # Offset, comparator input noise and clock division fold into
        # the Bernoulli model — these digitizers must NOT fall back.
        from repro.digitizer.comparator import Comparator
        from repro.digitizer.digitizer import OneBitDigitizer
        from repro.digitizer.sampler import SampledLatch

        sim = self._sim()
        for dig in (
            OneBitDigitizer(comparator=Comparator(offset_v=0.01)),
            OneBitDigitizer(
                comparator=Comparator(input_noise_rms=0.01)
            ),
            OneBitDigitizer(sampler=SampledLatch(2)),
        ):
            assert sim._bernoulli_thresholds("cold", dig) is not None
