"""Tests for repro.experiments.matlab_sim (the section-5.2 environment)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.matlab_sim import MatlabSimConfig, MatlabSimulation


class TestConfig:
    def test_defaults_match_paper(self):
        c = MatlabSimConfig()
        assert c.t_hot_k == 10000.0
        assert c.t_cold_k == 1000.0
        assert c.n_samples == 1_000_000
        assert c.nperseg == 10000
        assert c.reference_frequency_hz == 60.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MatlabSimConfig(t_hot_k=500.0, t_cold_k=1000.0)
        with pytest.raises(ConfigurationError):
            MatlabSimConfig(reference_ratio=0.0)
        with pytest.raises(ConfigurationError):
            MatlabSimConfig(cold_rms_v=0.0)


class TestSimulation:
    def test_true_ratio_matches_eq(self):
        sim = MatlabSimulation()
        # Te for a 10 dB DUT is 2610 K.
        assert sim.te_k == pytest.approx(2610.0, rel=1e-4)
        assert sim.true_power_ratio == pytest.approx(12610.0 / 3610.0)

    def test_noise_rms_anchored_to_cold(self):
        sim = MatlabSimulation()
        assert sim.noise_rms("cold") == 0.30
        assert sim.noise_rms("hot") == pytest.approx(
            0.30 * np.sqrt(sim.true_power_ratio)
        )

    def test_invalid_state_rejected(self):
        with pytest.raises(ConfigurationError):
            MatlabSimulation().noise_rms("lukewarm")

    def test_reference_amplitude(self):
        sim = MatlabSimulation()
        assert sim.reference_amplitude_v == pytest.approx(0.06)

    def test_rendered_noise_levels(self):
        cfg = MatlabSimConfig(n_samples=100000, nperseg=5000)
        sim = MatlabSimulation(cfg)
        hot = sim.render_noise("hot", rng=1)
        cold = sim.render_noise("cold", rng=2)
        assert hot.rms() == pytest.approx(sim.noise_rms("hot"), rel=0.02)
        assert cold.rms() == pytest.approx(sim.noise_rms("cold"), rel=0.02)

    def test_reference_is_square_at_60hz(self):
        cfg = MatlabSimConfig(n_samples=10000, nperseg=5000)
        ref = MatlabSimulation(cfg).reference_waveform()
        assert set(np.unique(ref.samples)) == {-0.06, 0.06}

    def test_bitstream_is_pm_one(self):
        cfg = MatlabSimConfig(n_samples=20000, nperseg=5000)
        bits = MatlabSimulation(cfg).bitstream("cold", rng=3)
        assert set(np.unique(bits.samples)) <= {-1.0, 1.0}

    def test_estimator_calibration(self):
        sim = MatlabSimulation()
        est = sim.make_estimator()
        assert est.t_hot_k == 10000.0
        assert est.t_cold_k == 1000.0
        assert est.config.harmonic_kind == "odd"
