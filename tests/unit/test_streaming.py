"""Tests for repro.soc.streaming."""

import numpy as np
import pytest

from repro.dsp.psd import welch
from repro.errors import ConfigurationError, MeasurementError
from repro.signals.sources import GaussianNoiseSource, SineSource
from repro.signals.waveform import Waveform
from repro.soc.memory import SampleMemory
from repro.soc.streaming import StreamingWelch, accumulate_stream

FS = 10000.0


def chunked(wave: Waveform, chunk: int):
    for start in range(0, wave.n_samples, chunk):
        yield wave.slice(start, min(start + chunk, wave.n_samples))


class TestStreamingWelch:
    def test_matches_batch_welch_zero_overlap(self, rng):
        wave = GaussianNoiseSource(1.0).render(100000, FS, rng)
        batch = welch(wave, nperseg=2000, overlap=0.0)
        streamer = StreamingWelch(2000, FS, overlap=0.0)
        for piece in chunked(wave, 3777):
            streamer.push(piece)
        stream = streamer.result()
        assert np.allclose(stream.psd, batch.psd, rtol=1e-9)

    def test_matches_batch_welch_half_overlap(self, rng):
        wave = GaussianNoiseSource(1.0).render(100000, FS, rng)
        batch = welch(wave, nperseg=2000, overlap=0.5)
        streamer = StreamingWelch(2000, FS, overlap=0.5)
        streamer.push(wave)
        stream = streamer.result()
        assert streamer.n_segments > 0
        assert np.allclose(stream.psd, batch.psd, rtol=1e-9)

    def test_chunk_boundaries_irrelevant(self, rng):
        wave = GaussianNoiseSource(1.0).render(50000, FS, rng)
        results = []
        for chunk in (1, 997, 2000, 50000):
            streamer = StreamingWelch(1000, FS)
            for piece in chunked(wave, chunk):
                streamer.push(piece)
            results.append(streamer.result().psd)
        for other in results[1:]:
            assert np.allclose(results[0], other, rtol=1e-12)

    def test_line_preserved(self):
        wave = SineSource(1000.0, 1.0).render(50000, FS)
        streamer = StreamingWelch(5000, FS)
        streamer.push(wave)
        f, p = streamer.result().line_power(1000.0, 20.0, subtract_floor=False)
        assert f == pytest.approx(1000.0, abs=2.0)
        assert p == pytest.approx(0.5, rel=0.05)

    def test_result_before_first_segment_raises(self):
        streamer = StreamingWelch(1000, FS)
        streamer.push(np.zeros(10))
        with pytest.raises(MeasurementError):
            streamer.result()

    def test_counters(self, rng):
        streamer = StreamingWelch(1000, FS, overlap=0.0)
        streamer.push(GaussianNoiseSource(1.0).render(2500, FS, rng))
        assert streamer.n_samples_seen == 2500
        assert streamer.n_segments == 2
        assert streamer.buffer_samples == 500

    def test_reset(self, rng):
        streamer = StreamingWelch(1000, FS)
        streamer.push(GaussianNoiseSource(1.0).render(5000, FS, rng))
        streamer.reset()
        assert streamer.n_segments == 0
        assert streamer.buffer_samples == 0

    def test_rate_mismatch_rejected(self):
        streamer = StreamingWelch(1000, FS)
        with pytest.raises(ConfigurationError):
            streamer.push(Waveform(np.zeros(100), FS / 2))

    def test_unsupported_overlap_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamingWelch(1000, FS, overlap=0.25)

    def test_memory_far_below_full_capture(self):
        streamer = StreamingWelch(8192, 32768.0, packed=True)
        full_capture = SampleMemory.bytes_required_bits(2**20)
        # The packed staging buffer is real (allocated words), not an
        # estimate, and sits far below even the packed full capture.
        assert streamer.memory_bytes() < full_capture / 2
        assert streamer.memory_bytes(packed_bits=True) == streamer.memory_bytes()

    def test_float_mode_has_no_packed_footprint(self):
        streamer = StreamingWelch(8192, 32768.0)
        with pytest.raises(ConfigurationError):
            streamer.memory_bytes(packed_bits=True)
        # The float staging buffer is reported at its actual size.
        assert streamer.memory_bytes() > 8 * 8192


class TestAccumulateStream:
    def test_convenience_matches_streamer(self, rng):
        wave = GaussianNoiseSource(1.0).render(20000, FS, rng)
        spec = accumulate_stream(chunked(wave, 1500), nperseg=2000)
        batch = welch(wave, nperseg=2000)
        assert np.allclose(spec.psd, batch.psd, rtol=1e-9)

    def test_empty_stream_rejected(self):
        with pytest.raises(ConfigurationError):
            accumulate_stream(iter(()), nperseg=100)
