"""Tests for repro.buffers — the generalized scratch-array pools."""

import numpy as np
import pytest

from repro.buffers import ArrayPool, default_pool
from repro.errors import ConfigurationError


class TestArrayPool:
    def test_same_key_reuses_array(self):
        pool = ArrayPool()
        a = pool.take("scratch", (4, 8))
        b = pool.take("scratch", (4, 8))
        assert a is b

    def test_shape_change_reallocates(self):
        pool = ArrayPool()
        a = pool.take("scratch", 16)
        b = pool.take("scratch", 32)
        assert a is not b
        assert b.shape == (32,)

    def test_dtype_change_reallocates(self):
        pool = ArrayPool()
        a = pool.take("scratch", 8)
        b = pool.take("scratch", 8, dtype=np.uint8)
        assert b.dtype == np.uint8
        assert a is not b

    def test_int_shape_accepted(self):
        pool = ArrayPool()
        assert pool.take("row", 7).shape == (7,)

    def test_negative_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            ArrayPool().take("bad", (-1,))

    def test_accounting_and_clear(self):
        pool = ArrayPool()
        pool.take("a", 10)
        pool.take("b", (2, 5), dtype=np.float32)
        assert len(pool) == 2
        assert pool.nbytes == 10 * 8 + 10 * 4
        pool.clear()
        assert len(pool) == 0
        assert pool.nbytes == 0

    def test_default_pool_exists(self):
        arr = default_pool.take("test_buffers.unit", 3)
        assert arr.shape == (3,)
