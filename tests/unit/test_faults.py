"""Tests for repro.faults: plans, the injector, hooks, directives."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    FAULT_PLANS,
    SITES,
    FaultInjector,
    FaultPlan,
    InjectedTaskError,
    active_injector,
    inject,
    resolve_plan,
)
from repro.faults.injector import (
    faulted_call,
    shm_fault,
    store_fault,
    task_fault,
)


class TestFaultPlan:
    def test_default_plan_is_inert(self):
        plan = FaultPlan()
        assert plan.active_sites == ()
        assert all(p == 0.0 for p in plan.probabilities.values())

    @pytest.mark.parametrize("site", SITES)
    def test_bad_probability_rejected(self, site):
        with pytest.raises(ConfigurationError):
            FaultPlan(**{site: 1.5})
        with pytest.raises(ConfigurationError):
            FaultPlan(**{site: -0.1})

    def test_bad_cap_and_hang_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(max_per_site=-1)
        with pytest.raises(ConfigurationError):
            FaultPlan(hang_seconds=0)

    def test_with_seed_rekeys(self):
        plan = FaultPlan(task_exception=0.5)
        rekeyed = plan.with_seed(9)
        assert rekeyed.seed == 9
        assert rekeyed.task_exception == 0.5

    def test_registry_plans_valid(self):
        for name, plan in FAULT_PLANS.items():
            assert isinstance(plan, FaultPlan), name
        assert FAULT_PLANS["none"].active_sites == ()
        assert "worker_crash" in FAULT_PLANS["transient"].active_sites

    def test_resolve_plan(self):
        assert resolve_plan("none") is FAULT_PLANS["none"]
        assert resolve_plan("transient", seed=4).seed == 4
        plan = FaultPlan(worker_hang=0.1)
        assert resolve_plan(plan) is plan
        with pytest.raises(ConfigurationError):
            resolve_plan("nope")

    def test_describe_round_trips_fields(self):
        doc = FaultPlan(seed=3, store_corrupt=0.25).describe()
        assert doc["seed"] == 3
        assert doc["store_corrupt"] == 0.25


class TestInjectorDeterminism:
    def test_same_coordinates_same_decision(self):
        plan = FaultPlan(seed=11, task_exception=0.5)
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        for coords in [(0, i, 1) for i in range(50)]:
            da = a.task_directive(*coords)
            db = b.task_directive(*coords)
            assert (da is None) == (db is None)
            if da is not None:
                assert da.action == db.action

    def test_decisions_independent_of_order(self):
        plan = FaultPlan(seed=11, task_exception=0.5)
        forward = FaultInjector(plan)
        backward = FaultInjector(plan)
        hits_f = {
            i for i in range(40)
            if forward.task_directive(0, i, 1) is not None
        }
        hits_b = {
            i for i in reversed(range(40))
            if backward.task_directive(0, i, 1) is not None
        }
        assert hits_f == hits_b

    def test_retry_draws_fresh(self):
        # With p=1 every attempt faults; with p=0.5 a faulted attempt's
        # retry must not be doomed to the same decision.
        plan = FaultPlan(seed=2, task_exception=0.5)
        injector = FaultInjector(plan)
        outcomes = {
            attempt: injector.task_directive(0, 7, attempt) is not None
            for attempt in range(1, 40)
        }
        assert any(outcomes.values()) and not all(outcomes.values())

    def test_sites_consulted_in_order(self):
        plan = FaultPlan(worker_crash=1.0, task_exception=1.0)
        directive = FaultInjector(plan).task_directive(0, 0, 1)
        assert directive.action == "crash"

    def test_store_directive_keys_on_write_seq(self):
        plan = FaultPlan(seed=5, store_truncate=0.5)
        injector = FaultInjector(plan)
        key = "ab" * 32
        outcomes = {
            seq: injector.store_directive(key, seq) for seq in range(40)
        }
        assert any(v is not None for v in outcomes.values())
        assert any(v is None for v in outcomes.values())

    def test_max_per_site_caps_firing(self):
        plan = FaultPlan(task_exception=1.0, max_per_site=3)
        injector = FaultInjector(plan)
        fired = sum(
            injector.task_directive(0, i, 1) is not None for i in range(10)
        )
        assert fired == 3
        assert injector.counts() == {"task_exception": 3}

    def test_log_records_coordinates(self):
        injector = FaultInjector(FaultPlan(worker_hang=1.0, hang_seconds=5.0))
        directive = injector.task_directive(2, 4, 1)
        assert directive.action == "hang"
        assert directive.hang_seconds == 5.0
        record = injector.log[0]
        assert record.site == "worker_hang"
        assert record.coordinates == (2, 4, 1)
        assert record.sequence == 0

    def test_shm_sequence_advances(self):
        injector = FaultInjector(FaultPlan(shm_publish=1.0))
        assert injector.shm_directive()
        assert injector.shm_directive()
        assert [r.coordinates for r in injector.log] == [(0,), (1,)]

    def test_summary_shape(self):
        injector = FaultInjector(FaultPlan(task_exception=1.0))
        injector.task_directive(0, 0, 1)
        doc = injector.summary()
        assert doc["n_injected"] == 1
        assert doc["by_site"] == {"task_exception": 1}
        assert doc["plan"]["task_exception"] == 1.0


class TestInjectScope:
    def test_idle_hooks_are_inert(self):
        assert active_injector() is None
        assert task_fault(0, 0, 1) is None
        assert store_fault("ab" * 32, 0) is None
        assert shm_fault() is False

    def test_install_and_teardown(self):
        with inject(FaultPlan(task_exception=1.0)) as injector:
            assert active_injector() is injector
            assert task_fault(0, 0, 1) is not None
        assert active_injector() is None

    def test_teardown_on_error(self):
        with pytest.raises(RuntimeError, match="boom"):
            with inject(FaultPlan()):
                raise RuntimeError("boom")
        assert active_injector() is None

    def test_nested_install_rejected(self):
        with inject(FaultPlan()):
            with pytest.raises(RuntimeError):
                with inject(FaultPlan()):
                    pass  # pragma: no cover - never reached

    def test_existing_injector_reused(self):
        injector = FaultInjector(FaultPlan())
        with inject(injector) as installed:
            assert installed is injector


class TestFaultedCall:
    def test_raise_directive(self):
        from repro.faults import FaultDirective

        with pytest.raises(InjectedTaskError):
            faulted_call((FaultDirective("raise"), abs, -3))

    def test_hang_directive_still_returns(self):
        from repro.faults import FaultDirective

        directive = FaultDirective("hang", hang_seconds=0.01)
        assert faulted_call((directive, abs, -3)) == 3

    def test_injected_error_is_retryable(self):
        from repro.engine.scheduler import RetryPolicy
        from repro.errors import MeasurementError

        policy = RetryPolicy()
        assert policy.is_retryable(InjectedTaskError("x"))
        assert not policy.is_retryable(MeasurementError("x"))


class TestStoreLockSites:
    """The PR 8 fault sites: shard/index locks and torn index appends."""

    def test_sites_registered(self):
        assert "store_lock" in SITES
        assert "index_torn_write" in SITES

    def test_hooks_inert_without_injector(self):
        from repro.faults.injector import index_torn_fault, store_lock_fault

        assert active_injector() is None
        assert store_lock_fault() is False
        assert index_torn_fault() is False

    def test_locks_plan_registered(self):
        plan = resolve_plan("locks", seed=3)
        assert plan.store_lock > 0
        assert plan.index_torn_write > 0

    def test_storm_covers_lock_sites(self):
        plan = FAULT_PLANS["storm"]
        assert plan.store_lock > 0
        assert plan.index_torn_write > 0

    def test_lock_directives_deterministic_per_seed(self):
        def draws(seed):
            with inject(FaultPlan(seed=seed, store_lock=0.5,
                                  index_torn_write=0.5)) as injector:
                lock = [injector.lock_directive() for _ in range(16)]
                torn = [injector.index_torn_directive() for _ in range(16)]
            return lock, torn

        assert draws(7) == draws(7)
        assert draws(7) != draws(8)

    def test_lock_directives_respect_site_cap(self):
        plan = FaultPlan(seed=1, store_lock=1.0, max_per_site=2)
        with inject(plan) as injector:
            fired = sum(injector.lock_directive() for _ in range(10))
        assert fired == 2
