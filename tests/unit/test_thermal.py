"""Tests for repro.signals.thermal."""

import numpy as np
import pytest

from repro.constants import BOLTZMANN, T0_KELVIN
from repro.errors import ConfigurationError
from repro.signals.thermal import (
    available_noise_power,
    enr_db_from_temperatures,
    excess_noise_ratio,
    johnson_noise_density,
    johnson_noise_rms,
    temperature_from_enr_db,
    temperature_from_power,
)


class TestAvailablePower:
    def test_ktb_at_290(self):
        p = available_noise_power(290.0, 1.0)
        assert p == pytest.approx(BOLTZMANN * 290.0)

    def test_scales_with_bandwidth(self):
        assert available_noise_power(100.0, 2e6) == pytest.approx(
            2 * available_noise_power(100.0, 1e6)
        )

    def test_rejects_negative_temperature(self):
        with pytest.raises(ConfigurationError):
            available_noise_power(-1.0, 1.0)

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ConfigurationError):
            available_noise_power(290.0, 0.0)

    def test_roundtrip_with_temperature_from_power(self):
        p = available_noise_power(1234.0, 5e3)
        assert temperature_from_power(p, 5e3) == pytest.approx(1234.0)


class TestJohnson:
    def test_density_1k_at_290(self):
        # 4kTR for 1 kohm at 290 K is ~1.6e-17 V^2/Hz (~4 nV/rtHz).
        d = johnson_noise_density(1000.0)
        assert d == pytest.approx(4 * BOLTZMANN * 290.0 * 1000.0)
        assert np.sqrt(d) == pytest.approx(4.0e-9, rel=0.02)

    def test_density_zero_resistance(self):
        assert johnson_noise_density(0.0) == 0.0

    def test_rms_scaling(self):
        rms1 = johnson_noise_rms(1000.0, 1e4)
        rms4 = johnson_noise_rms(4000.0, 1e4)
        assert rms4 == pytest.approx(2 * rms1)

    def test_rejects_negative_resistance(self):
        with pytest.raises(ConfigurationError):
            johnson_noise_density(-1.0)


class TestEnr:
    def test_excess_noise_ratio_linear(self):
        # Th = 2900 K over T0 = 290 K gives ENR = 9 (9.54 dB).
        assert excess_noise_ratio(2900.0) == pytest.approx(9.0)

    def test_enr_db(self):
        assert enr_db_from_temperatures(2900.0) == pytest.approx(9.542, abs=1e-3)

    def test_enr_roundtrip(self):
        th = temperature_from_enr_db(enr_db_from_temperatures(5000.0))
        assert th == pytest.approx(5000.0)

    def test_hot_must_exceed_reference(self):
        with pytest.raises(ConfigurationError):
            excess_noise_ratio(290.0)
