"""Tests for repro.engine (MeasurementEngine API and executors)."""

import numpy as np
import pytest

from repro.core.averaging import RepeatedMeasurement
from repro.dsp.psd import welch, welch_batch
from repro.engine import Engine, MeasurementEngine
from repro.engine.executors import run_serial, run_with_processes
from repro.errors import ConfigurationError
from repro.experiments.matlab_sim import MatlabSimConfig, MatlabSimulation
from repro.signals.random import make_rng, spawn_rngs

FS = 10000.0


def small_sim(n_samples=60_000, nperseg=3000):
    return MatlabSimulation(
        MatlabSimConfig(n_samples=n_samples, nperseg=nperseg)
    )


def square(task, rng):
    """Module-level worker so the process backend can pickle it."""
    return task * task


def draw(task, rng):
    """Worker whose result depends only on the per-task generator."""
    return float(rng.normal())


class TestEngineConstruction:
    def test_engine_alias(self):
        assert Engine is MeasurementEngine

    def test_bad_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            MeasurementEngine(backend="threads")

    def test_bad_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            MeasurementEngine(max_workers=0)

    def test_bad_block_rejected(self):
        with pytest.raises(ConfigurationError):
            MeasurementEngine(block_segments=0)


class TestWelchBatch:
    def test_rows_match_single_record_welch(self, rng):
        records = rng.normal(size=(3, 30000))
        batch = welch_batch(records, nperseg=2000, sample_rate=FS)
        assert batch.n_records == 3
        for i in range(3):
            single = welch(records[i], nperseg=2000, sample_rate=FS)
            assert np.array_equal(batch.psd[i], single.psd)
            assert np.array_equal(batch.frequencies, single.frequencies)
            assert batch.enbw_hz == single.enbw_hz

    def test_1d_input_promoted(self, rng):
        record = rng.normal(size=10000)
        batch = welch_batch(record, nperseg=1000, sample_rate=FS)
        assert batch.psd.shape[0] == 1

    def test_3d_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            welch_batch(np.zeros((2, 2, 100)), nperseg=10, sample_rate=FS)

    def test_spectrum_rows(self, rng):
        records = rng.normal(size=(2, 10000))
        batch = welch_batch(records, nperseg=1000, sample_rate=FS)
        spectra = batch.spectra()
        assert len(spectra) == 2
        assert np.array_equal(spectra[1].psd, batch.psd[1])


class TestRunBatch:
    def test_result_count_and_order(self):
        sim = small_sim()
        eng = MeasurementEngine()
        results = eng.run_batch(sim, sim.make_estimator(), 3, rng=9)
        assert len(results) == 3
        assert all(r is not None for r in results)

    def test_invalid_repeats(self):
        sim = small_sim()
        with pytest.raises(ConfigurationError):
            MeasurementEngine().run_batch(sim, sim.make_estimator(), 0)

    def test_reproducible_from_seed(self):
        sim = small_sim()
        eng = MeasurementEngine()
        a = eng.run_batch(sim, sim.make_estimator(), 2, rng=77)
        b = eng.run_batch(sim, sim.make_estimator(), 2, rng=77)
        assert [r.noise_figure_db for r in a] == [r.noise_figure_db for r in b]

    def test_sample_rate_mismatch_rejected(self):
        sim = small_sim()
        other = MatlabSimulation(
            MatlabSimConfig(
                n_samples=60_000, nperseg=3000, sample_rate_hz=8000.0
            )
        )
        with pytest.raises(ConfigurationError):
            MeasurementEngine().run_batch(sim, other.make_estimator(), 2, rng=1)

    def test_short_rngs_rejected_in_batch_digitizer(self):
        from repro.digitizer.comparator import Comparator
        from repro.digitizer.sampler import SampledLatch

        comparator = Comparator(input_noise_rms=1e-6)
        with pytest.raises(ConfigurationError):
            comparator.compare_batch(
                np.zeros((3, 50)), np.zeros(50), rngs=[make_rng(0)]
            )
        latch = SampledLatch(divider=2, jitter_rms_samples=0.5)
        with pytest.raises(ConfigurationError):
            latch.sample_batch(np.ones((3, 50)), rngs=[make_rng(0)])

    def test_non_bitstream_rejected(self):
        class BadSource:
            def acquire_bitstreams(self, states, rngs):
                return np.full((len(list(states)), 6000), 0.5), FS

        sim = small_sim(nperseg=3000)
        with pytest.raises(ConfigurationError):
            MeasurementEngine().run_batch(
                BadSource(), sim.make_estimator(), 1, rng=1
            )


class TestMeasureBatchAveraging:
    def test_statistics_match_serial(self):
        sim = small_sim()
        est = sim.make_estimator()
        rep = RepeatedMeasurement(est, n_repeats=3)
        serial = rep.measure(lambda s, r: sim.bitstream(s, r), rng=4)
        batched = rep.measure_batch(sim, rng=4)
        assert batched.n_measurements == serial.n_measurements
        assert batched.nf_mean_db == pytest.approx(serial.nf_mean_db, abs=1e-9)
        assert batched.nf_std_db == pytest.approx(serial.nf_std_db, abs=1e-9)


class TestMapSweep:
    def test_serial_order_preserved(self):
        eng = MeasurementEngine()
        assert eng.map_sweep(square, [3, 1, 2], seed=0) == [9, 1, 4]

    def test_empty_tasks(self):
        assert MeasurementEngine().map_sweep(square, [], seed=0) == []

    def test_explicit_rngs_length_checked(self):
        with pytest.raises(ConfigurationError):
            MeasurementEngine().map_sweep(square, [1, 2], rngs=[make_rng(0)])

    def test_per_task_seeds_deterministic(self):
        a = MeasurementEngine().map_sweep(draw, [0, 1, 2], seed=5)
        b = MeasurementEngine().map_sweep(draw, [0, 1, 2], seed=5)
        assert a == b
        # Different tasks get different child generators.
        assert len(set(a)) == 3

    def test_process_backend_matches_serial(self):
        tasks = [0, 1, 2, 3]
        serial = MeasurementEngine().map_sweep(draw, tasks, seed=11)
        with MeasurementEngine(backend="process", max_workers=2) as eng:
            procs = eng.map_sweep(draw, tasks, seed=11)
        assert procs == serial

    def test_executor_helpers(self):
        rngs = spawn_rngs(make_rng(3), 2)
        rngs_copy = spawn_rngs(make_rng(3), 2)
        assert run_serial(draw, [0, 1], rngs) == run_with_processes(
            draw, [0, 1], rngs_copy, max_workers=2
        )
