"""Tests for repro.analog.noise_analysis."""

import numpy as np
import pytest

from repro.analog.amplifier import NonInvertingAmplifier
from repro.analog.noise_analysis import (
    cascade_noise_factor,
    expected_noise_figure_db,
    noise_budget,
)
from repro.analog.opamp import OPAMP_LIBRARY, OpAmpNoiseModel
from repro.errors import ConfigurationError


def make_amp(opamp, rs=600.0):
    return NonInvertingAmplifier(opamp, 10000.0, 100.0, rs)


class TestNoiseBudget:
    def test_contributions_sum_to_amplifier_total(self):
        budget = noise_budget(make_amp(OPAMP_LIBRARY["OP27"]), 500.0, 1500.0)
        assert sum(budget.contributions.values()) == pytest.approx(
            budget.amplifier_v2
        )

    def test_noise_factor_definition(self):
        budget = noise_budget(make_amp(OPAMP_LIBRARY["OP27"]), 500.0, 1500.0)
        assert budget.noise_factor == pytest.approx(
            1.0 + budget.amplifier_v2 / budget.source_v2
        )

    def test_en_dominates_for_quiet_network(self):
        op = OpAmpNoiseModel("big_en", 100e-9, 0.0)
        budget = noise_budget(make_amp(op), 500.0, 1500.0)
        assert budget.dominant_contributor() == "opamp_voltage_noise"

    def test_current_noise_dominates_large_rs(self):
        op = OpAmpNoiseModel("big_in", 1e-9, 10e-12)
        budget = noise_budget(make_amp(op, rs=100000.0), 500.0, 1500.0)
        assert budget.dominant_contributor() == "opamp_current_noise_rs"

    def test_flat_device_matches_spot_factor(self):
        op = OpAmpNoiseModel("flat", 10e-9, 0.0, gbw_hz=1e9)
        amp = make_amp(op)
        budget = noise_budget(amp, 500.0, 1500.0)
        assert budget.noise_factor == pytest.approx(
            amp.spot_noise_factor(1000.0), rel=1e-6
        )

    def test_one_over_f_raises_low_band_nf(self):
        op = OpAmpNoiseModel("flicker", 10e-9, 0.0, en_corner_hz=1000.0)
        low = expected_noise_figure_db(make_amp(op), 10.0, 100.0)
        high = expected_noise_figure_db(make_amp(op), 5000.0, 10000.0)
        assert low > high + 1.0

    def test_hot_source_lowers_relative_factor(self):
        amp = make_amp(OPAMP_LIBRARY["CA3140"])
        hot = noise_budget(amp, 500.0, 1500.0, source_temperature_k=2900.0)
        cold = noise_budget(amp, 500.0, 1500.0, source_temperature_k=290.0)
        assert hot.noise_factor < cold.noise_factor

    def test_invalid_band_raises(self):
        with pytest.raises(ConfigurationError):
            noise_budget(make_amp(OPAMP_LIBRARY["OP27"]), 1500.0, 500.0)

    def test_too_few_points_raises(self):
        with pytest.raises(ConfigurationError):
            noise_budget(
                make_amp(OPAMP_LIBRARY["OP27"]), 500.0, 1500.0, n_points=4
            )


class TestExpectedNf:
    def test_paper_device_ordering(self):
        values = [
            expected_noise_figure_db(make_amp(OPAMP_LIBRARY[name]), 500.0, 1500.0)
            for name in ("OP27", "OP07", "TL081", "CA3140")
        ]
        assert values == sorted(values)

    def test_synthesized_opamp_hits_target(self):
        op = OpAmpNoiseModel.from_expected_nf(
            6.5, 600.0, feedback_parallel_ohm=10000 * 100 / 10100, gbw_hz=1e9
        )
        nf = expected_noise_figure_db(make_amp(op), 500.0, 1500.0)
        assert nf == pytest.approx(6.5, abs=0.02)


class TestCascade:
    def test_post_amp_negligible_after_gain(self):
        dut = make_amp(OPAMP_LIBRARY["OP27"])
        post = NonInvertingAmplifier(
            OPAMP_LIBRARY["OP27"], 115500.0, 100.0, 100.0
        )
        chain = cascade_noise_factor(dut, post, 500.0, 1500.0)
        alone = noise_budget(dut, 500.0, 1500.0).noise_factor
        assert chain == pytest.approx(alone, rel=0.01)

    def test_cascade_always_at_least_first_stage(self):
        dut = make_amp(OPAMP_LIBRARY["OP07"])
        post = NonInvertingAmplifier(
            OPAMP_LIBRARY["CA3140"], 115500.0, 100.0, 100.0
        )
        chain = cascade_noise_factor(dut, post, 500.0, 1500.0)
        assert chain >= noise_budget(dut, 500.0, 1500.0).noise_factor
