"""Tests for repro.core.direct (paper section 4.1, eqs 4/10)."""

import numpy as np
import pytest

from repro.constants import BOLTZMANN, T0_KELVIN
from repro.core.direct import DirectMethod, direct_method_gain_error_db
from repro.errors import ConfigurationError, MeasurementError
from repro.signals.waveform import Waveform


class TestDirectMethod:
    def test_recovers_known_factor(self):
        gain, band = 1e4, 1000.0
        n0 = BOLTZMANN * T0_KELVIN * band
        method = DirectMethod(gain, band)
        # Output power of an F=2 DUT.
        p_out = 2.0 * n0 * gain
        assert method.noise_factor_from_power(p_out) == pytest.approx(2.0)

    def test_nf_in_db(self):
        gain, band = 100.0, 100.0
        n0 = BOLTZMANN * T0_KELVIN * band
        method = DirectMethod(gain, band)
        assert method.noise_figure_from_power(10.0 * n0 * gain) == pytest.approx(
            10.0
        )

    def test_custom_source_power(self):
        method = DirectMethod(4.0, 100.0, source_power_n0=1.0)
        assert method.noise_factor_from_power(8.0) == pytest.approx(2.0)

    def test_measure_from_record(self):
        method = DirectMethod(1.0, 100.0, source_power_n0=1.0)
        record = Waveform([2.0, -2.0], 1000.0)  # mean square 4
        assert method.measure(record) == pytest.approx(10 * np.log10(4.0))

    def test_subunity_factor_rejected(self):
        method = DirectMethod(10.0, 100.0, source_power_n0=1.0)
        with pytest.raises(MeasurementError):
            method.noise_factor_from_power(5.0)

    def test_zero_power_rejected(self):
        method = DirectMethod(1.0, 100.0, source_power_n0=1.0)
        with pytest.raises(MeasurementError):
            method.noise_factor_from_power(0.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DirectMethod(0.0, 100.0)
        with pytest.raises(ConfigurationError):
            DirectMethod(1.0, 0.0)
        with pytest.raises(ConfigurationError):
            DirectMethod(1.0, 100.0, source_power_n0=0.0)


class TestGainErrorEq10:
    def test_error_is_gain_drift_in_db(self):
        # Eq 10: the estimate scales by the drift, so the NF error in dB
        # is 10*log10(drift) regardless of the DUT.
        for f in (1.5, 2.0, 10.0):
            err = direct_method_gain_error_db(f, 1.2)
            assert err == pytest.approx(10 * np.log10(1.2))

    def test_negative_drift_gives_negative_error(self):
        assert direct_method_gain_error_db(2.0, 0.8) < 0

    def test_no_drift_no_error(self):
        assert direct_method_gain_error_db(2.0, 1.0) == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            direct_method_gain_error_db(0.5, 1.0)
        with pytest.raises(ConfigurationError):
            direct_method_gain_error_db(2.0, 0.0)
