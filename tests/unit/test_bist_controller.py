"""Tests for repro.soc.bist_controller."""

import numpy as np
import pytest

from repro.core.bist import BISTMeasurementConfig, OneBitNoiseFigureBIST
from repro.digitizer.digitizer import OneBitDigitizer
from repro.errors import ConfigurationError, ResourceError
from repro.signals.sources import GaussianNoiseSource, SquareSource
from repro.signals.random import spawn_rngs
from repro.soc.bist_controller import BISTController
from repro.soc.memory import SampleMemory
from repro.soc.processor import DSPProcessor

FS = 10000.0
N = 200000


def make_estimator():
    config = BISTMeasurementConfig(
        sample_rate_hz=FS,
        n_samples=N,
        nperseg=5000,
        reference_frequency_hz=60.0,
        noise_band_hz=(100.0, 4500.0),
        harmonic_kind="odd",
    )
    return OneBitNoiseFigureBIST(config, 2900.0, 290.0)


def make_acquire(f_dut=2.0):
    te = (f_dut - 1.0) * 290.0
    ref = SquareSource(60.0, 0.2).render(N, FS)
    dig = OneBitDigitizer()

    def acquire(state, rng):
        t = 2900.0 if state == "hot" else 290.0
        sigma = np.sqrt((t + te) / (290.0 + te))
        noise = GaussianNoiseSource(sigma).render(N, FS, rng)
        return dig.digitize(noise, ref)

    return acquire


def make_controller(capacity=64 * 1024):
    return BISTController(
        make_estimator(), SampleMemory(capacity), DSPProcessor(clock_hz=100e6)
    )


class TestRun:
    def test_produces_result_and_report(self):
        controller = make_controller()
        outcome = controller.run(make_acquire(), rng=1)
        assert outcome.result.noise_figure_db == pytest.approx(3.0, abs=1.0)
        report = outcome.resources
        # Two bit-packed captures of 200000 samples = 2 x 25000 B.
        assert report.memory_bytes_peak == 50000
        assert report.dsp_cycles > 0
        assert report.acquisition_time_s == pytest.approx(2 * N / FS)
        assert report.total_test_time_s > report.acquisition_time_s

    def test_memory_released_after_run(self):
        controller = make_controller()
        controller.run(make_acquire(), rng=2)
        assert controller.memory.bytes_used == 0

    def test_memory_too_small_raises(self):
        controller = make_controller(capacity=1000)
        with pytest.raises(ResourceError):
            controller.run(make_acquire(), rng=3)

    def test_cycles_breakdown_has_psd_entries(self):
        controller = make_controller()
        outcome = controller.run(make_acquire(), rng=4)
        labels = set(outcome.resources.cycles_breakdown)
        assert any("psd_hot" in label for label in labels)
        assert any("psd_cold" in label for label in labels)

    def test_reproducible_with_seed(self):
        a = make_controller().run(make_acquire(), rng=5)
        b = make_controller().run(make_acquire(), rng=5)
        assert a.result.noise_figure_db == b.result.noise_figure_db


class TestAdcComparison:
    def test_12bit_adc_needs_12x_memory(self):
        controller = make_controller()
        onebit = 2 * SampleMemory.bytes_required_bits(N)
        assert controller.adc_alternative_memory_bytes(12) == 12 * onebit

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BISTController("est", SampleMemory(10), DSPProcessor())
        with pytest.raises(ConfigurationError):
            BISTController(make_estimator(), "mem", DSPProcessor())
        with pytest.raises(ConfigurationError):
            BISTController(make_estimator(), SampleMemory(10), "proc")
