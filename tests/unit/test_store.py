"""Tests for repro.store: keys, serialization, the on-disk store."""

import json

import numpy as np
import pytest

from repro.bitstream import PackedRecordBatch, RecordProvenance
from repro.core.bist import BISTResult
from repro.core.normalization import NormalizationResult
from repro.dsp.spectrum import Spectrum
from repro.errors import ConfigurationError
from repro.experiments.matlab_sim import MatlabSimConfig, MatlabSimulation
from repro.signals.random import make_rng, spawn_rngs
from repro.store import (
    SCHEMA_VERSION,
    ResultStore,
    canonical_json,
    digest,
    fingerprint,
    measurement_key,
    seed_fingerprint,
)
from repro.store.serialize import (
    payload_from_records,
    payload_from_result,
    records_from_payload,
    result_from_payload,
)


def _sim(**overrides):
    kwargs = dict(n_samples=20_000, nperseg=1000)
    kwargs.update(overrides)
    return MatlabSimulation(MatlabSimConfig(**kwargs))


def _result(seed=7, **overrides) -> BISTResult:
    sim = _sim(**overrides)
    estimator = sim.make_estimator()
    return estimator.measure(sim.bitstream, rng=seed)


def assert_results_identical(a: BISTResult, b: BISTResult) -> None:
    """Field-by-field bit identity (dataclass == chokes on arrays)."""
    for name in (
        "y",
        "noise_factor",
        "noise_figure_db",
        "noise_temperature_k",
        "band_power_hot",
        "band_power_cold",
        "t_hot_k",
        "t_cold_k",
    ):
        assert getattr(a, name) == getattr(b, name), name
    na, nb = a.normalization, b.normalization
    for name in (
        "line_frequency_hot_hz",
        "line_frequency_cold_hz",
        "line_power_hot",
        "line_power_cold",
        "scale_hot",
        "scale_cold",
    ):
        assert getattr(na, name) == getattr(nb, name), name
    for spec_a, spec_b in ((na.hot, nb.hot), (na.cold, nb.cold)):
        assert np.array_equal(spec_a.frequencies, spec_b.frequencies)
        assert np.array_equal(spec_a.psd, spec_b.psd)
        assert spec_a.enbw_hz == spec_b.enbw_hz


class TestFingerprint:
    def test_scalars_pass_through(self):
        assert fingerprint(3) == 3
        assert fingerprint(0.25) == 0.25
        assert fingerprint("hot") == "hot"
        assert fingerprint(None) is None
        assert fingerprint(True) is True

    def test_numpy_scalars_normalize(self):
        assert fingerprint(np.float64(0.5)) == 0.5
        assert fingerprint(np.int32(5)) == 5

    def test_non_finite_floats_survive_canonical_json(self):
        canonical_json(fingerprint(float("inf")))
        canonical_json(fingerprint(float("nan")))

    def test_arrays_hash_content(self):
        a = fingerprint(np.arange(8.0))
        b = fingerprint(np.arange(8.0))
        c = fingerprint(np.arange(8.0) + 1e-12)
        assert a == b
        assert a != c

    def test_objects_use_public_attrs_only(self):
        sim_a, sim_b = _sim(), _sim()
        sim_b.reference_waveform()  # populate a private cache
        assert fingerprint(sim_a) == fingerprint(sim_b)

    def test_bench_fingerprint_sees_nested_config(self):
        from repro.digitizer.comparator import Comparator
        from repro.digitizer.digitizer import OneBitDigitizer

        ideal = fingerprint(OneBitDigitizer())
        offset = fingerprint(
            OneBitDigitizer(comparator=Comparator(offset_v=0.01))
        )
        assert ideal != offset

    def test_unfingerprintable_rejected(self):
        with pytest.raises(ConfigurationError):
            fingerprint(lambda: None)

    def test_canonical_json_is_stable(self):
        data = fingerprint({"b": 1, "a": [2.5, "x"]})
        assert canonical_json(data) == canonical_json(
            json.loads(canonical_json(data))
        )
        assert digest(data) == digest(json.loads(canonical_json(data)))


class TestSeedFingerprint:
    def test_none_is_uncacheable(self):
        assert seed_fingerprint(None) is None

    def test_int_seed_is_stable(self):
        assert seed_fingerprint(7) == seed_fingerprint(7)
        assert seed_fingerprint(7) != seed_fingerprint(8)

    def test_generator_matches_its_int_seed(self):
        assert seed_fingerprint(np.random.default_rng(7)) == seed_fingerprint(7)

    def test_consumed_generator_differs(self):
        gen = np.random.default_rng(7)
        fresh = seed_fingerprint(7)
        gen.standard_normal(4)
        assert seed_fingerprint(gen) != fresh

    def test_spawned_generator_differs(self):
        # Spawning consumes lineage (children already handed out), so a
        # generator that spawned differs from a fresh one even though
        # its own draw state is untouched.
        gen = np.random.default_rng(7)
        fresh = seed_fingerprint(7)
        spawn_rngs(gen, 2)
        assert seed_fingerprint(gen) != fresh

    def test_spawn_children_are_distinct(self):
        a, b = spawn_rngs(7, 2)
        assert seed_fingerprint(a) != seed_fingerprint(b)


class TestMeasurementKey:
    def test_stable_and_seed_sensitive(self):
        sim = _sim()
        est = sim.make_estimator()
        key = measurement_key(sim, est, 7)
        assert key == measurement_key(sim, est, 7)
        assert key != measurement_key(sim, est, 8)
        assert measurement_key(sim, est, None) is None

    @pytest.mark.parametrize(
        "override",
        [
            {"nperseg": 2000},
            {"n_samples": 24_000},
            {"reference_frequency_hz": 120.0},
            {"reference_ratio": 0.25},
            {"t_hot_k": 9000.0},
        ],
    )
    def test_any_config_change_changes_key(self, override):
        sim = _sim()
        base = measurement_key(sim, sim.make_estimator(), 7)
        other = _sim(**override)
        changed = measurement_key(other, other.make_estimator(), 7)
        assert base != changed

    def test_rng_mode_in_key(self):
        sim = _sim()
        est = sim.make_estimator()
        assert measurement_key(sim, est, 7) != measurement_key(
            sim, est, 7, rng_mode="philox"
        )

    def test_estimator_analysis_params_in_key(self):
        sim = _sim()
        base = sim.make_estimator()
        config = sim.make_config()
        from dataclasses import replace

        from repro.core.bist import OneBitNoiseFigureBIST

        widened = OneBitNoiseFigureBIST(
            replace(config, overlap=0.25),
            t_hot_k=base.t_hot_k,
            t_cold_k=base.t_cold_k,
        )
        assert measurement_key(sim, base, 7) != measurement_key(
            sim, widened, 7
        )


class TestRecordProvenanceRoundTrip:
    def test_round_trip_identity(self):
        child = spawn_rngs(2005, 3)[1]
        prov = RecordProvenance.from_rng(child, state="hot", rng_mode="philox")
        back = RecordProvenance.from_dict(prov.to_dict())
        assert back == prov
        assert back.spawn_key == prov.spawn_key
        assert back.rng_mode == "philox"

    def test_round_trip_survives_json(self):
        prov = RecordProvenance.from_rng(make_rng(9), state="cold")
        back = RecordProvenance.from_dict(
            json.loads(json.dumps(prov.to_dict()))
        )
        assert back == prov

    def test_serialized_digest_is_stable(self):
        prov = RecordProvenance.from_rng(make_rng(9), state="cold")
        once = digest(prov.to_dict())
        again = digest(
            RecordProvenance.from_dict(prov.to_dict()).to_dict()
        )
        assert once == again

    def test_digest_changes_with_any_field(self):
        prov = RecordProvenance(entropy=9, spawn_key=(1,), state="hot")
        base = digest(prov.to_dict())
        for changed in (
            RecordProvenance(entropy=10, spawn_key=(1,), state="hot"),
            RecordProvenance(entropy=9, spawn_key=(2,), state="hot"),
            RecordProvenance(entropy=9, spawn_key=(1,), state="cold"),
            RecordProvenance(
                entropy=9, spawn_key=(1,), state="hot", rng_mode="philox"
            ),
        ):
            assert digest(changed.to_dict()) != base

    def test_none_entropy_round_trips(self):
        prov = RecordProvenance()
        assert RecordProvenance.from_dict(prov.to_dict()) == prov


class TestResultSerialization:
    def test_round_trip_bit_identical(self):
        result = _result()
        meta, arrays = payload_from_result(result)
        back = result_from_payload(
            json.loads(json.dumps(meta)), arrays
        )
        assert_results_identical(result, back)

    def test_wrong_kind_rejected(self):
        result = _result()
        meta, arrays = payload_from_result(result)
        meta["kind"] = "something_else"
        with pytest.raises(ConfigurationError):
            result_from_payload(meta, arrays)

    def test_stale_schema_rejected(self):
        result = _result()
        meta, arrays = payload_from_result(result)
        meta["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(ConfigurationError):
            result_from_payload(meta, arrays)

    def test_non_result_rejected(self):
        with pytest.raises(ConfigurationError):
            payload_from_result({"not": "a result"})


class TestRecordsSerialization:
    def _batch(self):
        sim = _sim()
        rngs = spawn_rngs(5, 4)
        batch, _ = sim.acquire_bitstreams(
            ["hot", "cold", "hot", "cold"], rngs, packed=True
        )
        return batch

    def test_round_trip_bit_identical(self):
        batch = self._batch()
        meta, arrays = payload_from_records(batch)
        back = records_from_payload(json.loads(json.dumps(meta)), arrays)
        assert np.array_equal(back.words, batch.words)
        assert back.n_samples == batch.n_samples
        assert back.sample_rate == batch.sample_rate
        assert back.provenance == batch.provenance

    def test_non_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            payload_from_records(np.zeros((2, 8)))


class TestResultStore:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        result = _result()
        key = "ab" * 32
        assert not store.has_result(key)
        assert store.get_result(key) is None
        assert store.put_result(key, result)
        assert store.has_result(key)
        assert_results_identical(store.get_result(key), result)

    def test_put_existing_key_is_noop(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        key = "cd" * 32
        assert store.put_result(key, _result())
        assert not store.put_result(key, _result())

    def test_records_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        sim = _sim()
        batch, _ = sim.acquire_bitstreams(
            ["hot", "cold"], spawn_rngs(3, 2), packed=True
        )
        key = "ef" * 32
        assert store.put_records(key, batch)
        back = store.get_records(key)
        assert np.array_equal(back.words, batch.words)

    def test_outcome_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        doc = {"measured": [1.5, 2.5], "limit_db": 8.0}
        key = store.outcome_key({"lot": 1})
        assert store.put_outcome(key, doc)
        assert store.get_outcome(key) == doc
        assert store.has_outcome(key)

    def test_bad_key_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        with pytest.raises(ConfigurationError):
            store.has_result("not-a-key")
        with pytest.raises(ConfigurationError):
            store.put_result("AB" * 32, _result())  # uppercase

    def test_reopen_existing_store(self, tmp_path):
        root = tmp_path / "s"
        key = "12" * 32
        ResultStore(root).put_result(key, _result())
        store = ResultStore(root)
        assert store.schema == SCHEMA_VERSION
        assert store.has_result(key)

    def test_refuses_foreign_directory(self, tmp_path):
        (tmp_path / "something.txt").write_text("hello")
        with pytest.raises(ConfigurationError):
            ResultStore(tmp_path)

    def test_index_enumerates_and_summarizes(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.put_result("11" * 32, _result())
        store.put_result("22" * 32, _result())
        index = store.index()
        assert len(index) == 2
        assert {e.kind for e in index} == {"results"}
        summary = index.summary()
        assert summary["n_entries"] == 2
        assert summary["kinds"]["results"]["n_entries"] == 2
        assert summary["total_bytes"] == index.total_bytes > 0
        assert len(index.find("11")) == 1

    def test_entry_meta_loads(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.put_result("33" * 32, _result())
        entry = store.index().entries[0]
        meta = entry.load_meta()
        assert meta["kind"] == "bist_result"
        assert meta["schema"] == SCHEMA_VERSION

    def test_gc_removes_tmp_and_stale(self, tmp_path):
        import os
        import time

        store = ResultStore(tmp_path / "s")
        store.put_result("44" * 32, _result())
        # a crashed write leaves an orphan temp file; backdate it past
        # the concurrent-writer grace period
        orphan = store.root / "results" / "44" / "junk.tmp"
        orphan.write_bytes(b"partial")
        old = time.time() - 7200
        os.utime(orphan, (old, old))
        # a stale-schema entry can never be hit again
        stale_key = "55" * 32
        store.put_result(stale_key, _result())
        stale = store._path("results", stale_key)
        import io

        import numpy as np  # noqa: F811 - local to build the payload

        from repro.store.serialize import encode_meta

        buffer = io.BytesIO()
        np.savez(
            buffer, __meta__=encode_meta({"kind": "bist_result", "schema": -1})
        )
        stale.write_bytes(buffer.getvalue())
        removed = store.gc()
        assert removed["n_removed"] == 2
        assert store.has_result("44" * 32)
        assert not store.has_result(stale_key)

    def test_gc_spares_fresh_tmp_files(self, tmp_path):
        # A just-written temp file may belong to a concurrent writer
        # mid-publish; gc must leave it alone.
        store = ResultStore(tmp_path / "s")
        fresh = store.root / "results" / "ab" / "inflight.tmp"
        fresh.parent.mkdir(parents=True)
        fresh.write_bytes(b"partial")
        assert store.gc()["n_removed"] == 0
        assert fresh.exists()

    def test_gc_all(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.put_result("66" * 32, _result())
        removed = store.gc(all_entries=True)
        assert removed["n_removed"] == 1
        assert len(store.index()) == 0

    def test_future_schema_store_refused(self, tmp_path):
        root = tmp_path / "s"
        ResultStore(root)
        (root / "store.json").write_text(
            json.dumps({"schema": SCHEMA_VERSION + 1})
        )
        with pytest.raises(ConfigurationError):
            ResultStore(root)

    def test_corrupt_marker_refused(self, tmp_path):
        root = tmp_path / "s"
        ResultStore(root)
        (root / "store.json").write_text("{}")
        with pytest.raises(ConfigurationError):
            ResultStore(root)

    def test_atomic_write_leaves_no_partial_on_error(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        path = store.root / "results" / "aa" / ("aa" * 32 + ".npz")
        with pytest.raises(RuntimeError):
            original = ResultStore._write_atomic

            def boom(p, data):
                raise RuntimeError("disk on fire")

            try:
                ResultStore._write_atomic = staticmethod(boom)
                store.put_result("aa" * 32, _result())
            finally:
                ResultStore._write_atomic = staticmethod(original)
        assert not path.exists()
        assert list(store.root.rglob("*.tmp")) == []


class TestIntegrity:
    """Sealed digests, verify-on-read, quarantine, fault injection."""

    def _put_one(self, tmp_path, key="ab" * 32):
        store = ResultStore(tmp_path / "s")
        store.put_result(key, _result())
        return store, store._path("results", key)

    def test_payloads_are_sealed(self, tmp_path):
        from repro.store.store import _SEAL_PREFIX

        _, path = self._put_one(tmp_path)
        raw = path.read_bytes()
        assert _SEAL_PREFIX in raw[-100:]
        assert raw.endswith(b"\n")

    def test_sealed_payload_round_trips(self, tmp_path):
        store, _ = self._put_one(tmp_path)
        restored = store.get_result("ab" * 32)
        assert_results_identical(restored, _result())

    def test_corrupt_entry_quarantined_on_read(self, tmp_path):
        store, path = self._put_one(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 3] ^= 0xFF  # one flipped bit in the body
        path.write_bytes(bytes(raw))
        assert store.get_result("ab" * 32) is None
        assert not path.exists()
        [record] = store.quarantine_log
        assert record["reason"] == "integrity digest mismatch"
        assert record["key"] == "ab" * 32
        moved = store.root / "quarantine" / "results" / "ab"
        assert any(moved.iterdir())

    def test_truncated_entry_quarantined_on_read(self, tmp_path):
        store, path = self._put_one(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        assert store.get_result("ab" * 32) is None
        assert store.quarantine_log[-1]["reason"] == "unreadable archive"

    def test_quarantine_unblocks_rewrite(self, tmp_path):
        store, path = self._put_one(tmp_path)
        path.write_bytes(b"garbage that is not an npz at all")
        assert store.get_result("ab" * 32) is None
        # The content-addressed slot is free again: a recompute can
        # persist, and the store serves it.
        assert store.put_result("ab" * 32, _result())
        assert_results_identical(store.get_result("ab" * 32), _result())

    def test_legacy_unsealed_entry_still_reads(self, tmp_path):
        store, path = self._put_one(tmp_path)
        raw = path.read_bytes()
        from repro.store.store import _SEAL_LEN

        path.write_bytes(raw[:-_SEAL_LEN])  # strip the trailer
        restored = store.get_result("ab" * 32)
        assert_results_identical(restored, _result())
        assert store.quarantine_log == []

    def test_gc_reclaims_quarantine(self, tmp_path):
        store, path = self._put_one(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 3] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert store.get_result("ab" * 32) is None
        removed = store.gc()
        assert removed["n_quarantined"] == 1
        assert removed["n_removed"] == 1
        assert not any((store.root / "quarantine").rglob("*.npz"))

    def test_gc_grace_is_configurable(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        orphan = store.root / "results" / "ab" / "crashed.tmp"
        orphan.parent.mkdir(parents=True)
        orphan.write_bytes(b"partial write from a dead process")
        # Fresh orphan survives the default grace, dies under zero.
        assert store.gc()["n_tmp"] == 0
        assert orphan.exists()
        removed = store.gc(tmp_grace_s=0.0)
        assert removed["n_tmp"] == 1
        assert not orphan.exists()

    def test_gc_bad_grace_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        with pytest.raises(ConfigurationError):
            store.gc(tmp_grace_s=-1.0)

    def test_injected_store_faults_recovered_by_rewrite(self, tmp_path):
        from repro.faults import FaultPlan, inject

        store = ResultStore(tmp_path / "s")
        result = _result()
        keys = [f"{i:02d}" * 32 for i in range(8)]
        with inject(
            FaultPlan(seed=1, store_truncate=0.4, store_corrupt=0.4)
        ) as injector:
            for key in keys:
                store.put_result(key, result)
            # Rewrite-on-miss converges: each write draws at a fresh
            # write sequence, so a damaged entry is not damaged forever.
            for key in keys:
                for _ in range(20):
                    restored = store.get_result(key)
                    if restored is not None:
                        break
                    store.put_result(key, result)
                assert_results_identical(restored, result)
        assert len(injector.log) > 0
        assert len(store.quarantine_log) > 0


class TestPersistentIndexIntegration:
    """The store keeps its persistent index in lock-step with the tree."""

    def test_new_store_has_index(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        assert store.has_persistent_index
        assert store.index_stats()["n_entries"] == 0

    def test_load_index_matches_walk(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.put_result("11" * 32, _result())
        store.put_result("22" * 32, _result())
        store.put_outcome(store.outcome_key({"lot": 1}), {"x": 1})
        walk = {(e.kind, e.key, e.nbytes) for e in store.index()}
        fast = {(e.kind, e.key, e.nbytes) for e in store.load_index()}
        assert fast == walk
        assert store.verify_index()["consistent"]

    def test_quarantine_updates_index(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        key = "ab" * 32
        store.put_result(key, _result())
        path = store._path("results", key)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 3] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert store.get_result(key) is None  # quarantined
        assert ("results", key) not in {
            (e.kind, e.key) for e in store.load_index()
        }
        assert store.verify_index()["consistent"]

    def test_gc_updates_index(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.put_result("11" * 32, _result())
        store.put_result("22" * 32, _result())
        store.gc(all_entries=True)
        assert len(store.load_index()) == 0
        assert store.verify_index()["consistent"]

    def test_legacy_store_without_index(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.put_result("11" * 32, _result())
        import shutil

        shutil.rmtree(store.root / "index")
        legacy = ResultStore(tmp_path / "s")
        assert not legacy.has_persistent_index
        assert legacy.load_index() is None
        assert legacy.index_stats() is None
        verdict = legacy.verify_index()
        assert not verdict["consistent"]
        assert verdict["reason"] == "no persistent index"
        # Writes still work (index append is a silent no-op)...
        legacy.put_result("22" * 32, _result())
        assert len(legacy.index()) == 2
        # ...and reindex restores the fast path.
        legacy.rebuild_index()
        assert legacy.has_persistent_index
        assert legacy.verify_index()["consistent"]
        assert len(legacy.load_index()) == 2

    def test_rotate_preserves_enumeration(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        for i in range(4):
            store.put_result(f"{i:02d}" * 32, _result())
        before = {(e.kind, e.key) for e in store.load_index()}
        store.rotate_index()
        assert {(e.kind, e.key) for e in store.load_index()} == before
        assert store.index_stats()["n_segments"] == 1

    def test_approx_total_bytes_tracks_walk(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.put_result("11" * 32, _result())
        assert store.approx_total_bytes() == store.index().total_bytes


class TestEnumerationRaceSafety:
    """index() surfaces only fully published entries, race-free."""

    def test_inflight_tmp_files_skipped(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.put_result("ab" * 32, _result())
        shard = store.root / "results" / "ab"
        (shard / "inflight.tmp").write_bytes(b"partial")
        (shard / ("cd" * 32 + ".npz.tmp")).write_bytes(b"partial")
        assert len(store.index()) == 1

    def test_non_canonical_names_skipped(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.put_result("ab" * 32, _result())
        shard = store.root / "results" / "ab"
        (shard / ("AB" * 32 + ".npz")).write_bytes(b"junk")  # uppercase
        (shard / ("cd" * 32 + ".npz")).write_bytes(b"junk")  # wrong shard
        assert len(store.index()) == 1

    def test_entry_vanishing_mid_walk_skipped(self, tmp_path):
        import os

        store = ResultStore(tmp_path / "s")
        store.put_result("ab" * 32, _result())
        # A dangling symlink stats like a file that a peer unlinked
        # between the directory listing and the stat call.
        shard = store.root / "results" / "cd"
        shard.mkdir(parents=True, exist_ok=True)
        os.symlink(str(tmp_path / "gone.npz"), shard / ("cd" * 32 + ".npz"))
        index = store.index()  # must not raise
        assert {e.key for e in index} == {"ab" * 32}


class TestCompaction:
    """Shard packs: fewer files, identical bytes."""

    def _populate(self, tmp_path, n=6):
        store = ResultStore(tmp_path / "s")
        result = _result()
        # One shard ("ab") holds every key: compaction packs per shard.
        keys = ["ab" + format(i, "062x") for i in range(n)]
        for key in keys:
            store.put_result(key, result)
        return store, keys

    def test_compaction_preserves_every_payload_bit(self, tmp_path):
        store, keys = self._populate(tmp_path)
        before = {
            k: store.read_payload_bytes("results", k) for k in keys
        }
        n_files_before = len(list(store.root.glob("results/*/*.npz")))
        stats = store.compact()
        assert stats["n_members"] == len(keys)
        assert len(list(store.root.glob("results/*/*.npz"))) == 0
        packs = list(store.root.glob("results/*/pack-*.pk"))
        assert 0 < len(packs) < n_files_before
        for key in keys:
            assert store.read_payload_bytes("results", key) == before[key]
            assert store.has_result(key)
            assert_results_identical(store.get_result(key), _result())
        assert store.verify_index()["consistent"]

    def test_walk_and_fast_index_agree_after_compaction(self, tmp_path):
        store, _ = self._populate(tmp_path)
        store.compact()
        walk = {(e.kind, e.key, e.nbytes) for e in store.index()}
        fast = {(e.kind, e.key, e.nbytes) for e in store.load_index()}
        assert fast == walk and walk

    def test_compaction_is_idempotent(self, tmp_path):
        store, keys = self._populate(tmp_path)
        store.compact()
        packs = sorted(store.root.glob("results/*/pack-*.pk"))
        again = store.compact()
        assert again["n_shards_compacted"] == 0
        assert sorted(store.root.glob("results/*/pack-*.pk")) == packs
        assert store.has_result(keys[0])

    def test_loose_rewrite_shadows_pack(self, tmp_path):
        store, keys = self._populate(tmp_path)
        key = keys[0]
        sealed = store.read_payload_bytes("results", key)
        store.compact()
        # A peer re-publishes the same key loose while the pack still
        # holds it: enumeration and reads must prefer the loose file,
        # never double-count.
        store._write_atomic(store._path("results", key), sealed)
        entry = [e for e in store.index() if e.key == key]
        assert len(entry) == 1 and entry[0].pack is None
        assert_results_identical(store.get_result(key), _result())

    def test_packed_corruption_quarantines_member(self, tmp_path):
        store, keys = self._populate(tmp_path)
        store.compact()
        [pack] = {
            e.pack for e in store.index() if e.key == keys[0]
        }
        raw = bytearray(pack.read_bytes())
        raw[-10] ^= 0xFF  # damage the last member's payload bytes
        pack.write_bytes(bytes(raw))
        damaged = [k for k in keys if store.get_result(k) is None]
        assert len(damaged) == 1
        assert store.quarantine_log[-1]["key"] == damaged[0]
        # The slot is free again; a recompute re-publishes loose.
        assert store.put_result(damaged[0], _result())
        assert store.get_result(damaged[0]) is not None

    def test_compact_selected_kind_only(self, tmp_path):
        store, _ = self._populate(tmp_path)
        store.put_outcome(store.outcome_key({"lot": 9}), {"x": 1})
        store.compact(kinds=["results"])
        assert list(store.root.glob("outcomes/*/pack-*.pk")) == []

    def test_compact_bad_kind_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        with pytest.raises(ConfigurationError):
            store.compact(kinds=["junk"])


class TestEviction:
    """Byte-budget eviction: oldest first, pins honored."""

    def _populate(self, tmp_path, n=5):
        import os

        store = ResultStore(tmp_path / "s")
        result = _result()
        keys = ["ab" + format(i, "062x") for i in range(n)]
        for i, key in enumerate(keys):
            store.put_result(key, result)
            path = store._path("results", key)
            os.utime(path, (1_000_000 + i, 1_000_000 + i))
        return store, keys

    def test_evicts_oldest_until_under_budget(self, tmp_path):
        store, keys = self._populate(tmp_path)
        per_entry = store.index().entries[0].nbytes
        budget = int(2.5 * per_entry)
        stats = store.evict(budget, pin_kinds=())
        assert stats["total_bytes_after"] <= budget
        assert stats["n_evicted"] == 3
        # Oldest mtimes went first.
        assert not store.has_result(keys[0])
        assert not store.has_result(keys[1])
        assert store.has_result(keys[3])
        assert store.has_result(keys[4])
        assert store.verify_index()["consistent"]

    def test_outcomes_pinned_by_default(self, tmp_path):
        store, keys = self._populate(tmp_path, n=2)
        outcome_key = store.outcome_key({"lot": 1})
        store.put_outcome(outcome_key, {"manifest": [1, 2]})
        stats = store.evict(0)
        assert stats["n_pinned"] >= 1
        assert store.has_outcome(outcome_key)
        assert all(not store.has_result(k) for k in keys)

    def test_pin_keys_survive(self, tmp_path):
        store, keys = self._populate(tmp_path)
        stats = store.evict(0, pin_kinds=(), pin_keys=[keys[0]])
        assert store.has_result(keys[0])
        assert stats["n_evicted"] == len(keys) - 1

    def test_evicts_packed_members(self, tmp_path):
        store, keys = self._populate(tmp_path)
        store.compact()
        stats = store.evict(0, pin_kinds=())
        assert stats["n_evicted"] == len(keys)
        assert store.approx_total_bytes() == 0
        assert all(not store.has_result(k) for k in keys)
        assert store.verify_index()["consistent"]

    def test_within_budget_is_noop(self, tmp_path):
        store, keys = self._populate(tmp_path)
        stats = store.evict(10**12)
        assert stats["n_evicted"] == 0
        assert all(store.has_result(k) for k in keys)

    def test_bad_budget_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        with pytest.raises(ConfigurationError):
            store.evict(-1)

    def test_read_refreshes_lru_rank(self, tmp_path):
        import time

        store, keys = self._populate(tmp_path)
        store.get_result(keys[0])  # loose read bumps mtime
        per_entry = store.index().entries[0].nbytes
        store.evict(int(1.5 * per_entry), pin_kinds=())
        assert store.has_result(keys[0])  # oldest by write, hottest by read
        assert not store.has_result(keys[1])
