"""Tests for repro.engine.scheduler (WorkerPool, planner, facade)."""

import os
import time
from typing import NamedTuple

import numpy as np
import pytest

from repro.engine import (
    MeasurementEngine,
    MeasurementScheduler,
    MeasurementTask,
    RetryPolicy,
    WorkerPool,
    plan_measurements,
    run_with_processes,
)
from repro.engine import shm
from repro.engine.scheduler import as_scheduler
from repro.engine.shm import publish_packed_tasks, resolve_shared_task
from repro.errors import ConfigurationError, ExecutionError, MeasurementError
from repro.experiments.matlab_sim import MatlabSimConfig, MatlabSimulation
from repro.faults import FaultPlan, inject
from repro.signals.random import make_rng, spawn_rngs


def small_sim(n_samples=60_000, nperseg=3000):
    return MatlabSimulation(
        MatlabSimConfig(n_samples=n_samples, nperseg=nperseg)
    )


def square(task, rng):
    """Module-level worker so the process backend can pickle it."""
    return task * task


def _mark_call(marker_dir, index) -> int:
    """Record one worker invocation of a task; returns its call count.

    File-based so the count survives worker crashes and respawns — the
    parent-side retry bookkeeping is exactly what's under test.
    """
    path = os.path.join(marker_dir, f"task{index}.calls")
    with open(path, "ab") as handle:
        handle.write(b"x")
    return os.path.getsize(path)


def flaky_worker(payload):
    """Raises (transient) on the first ``fail_times`` calls per task."""
    marker_dir, index, fail_times = payload
    if _mark_call(marker_dir, index) <= fail_times:
        raise RuntimeError(f"transient failure of task {index}")
    return index * 10


def domain_error_worker(payload):
    """Raises a deterministic (never-retried) domain error."""
    marker_dir, index = payload
    _mark_call(marker_dir, index)
    raise MeasurementError(f"task {index} is deterministically bad")


def crashy_worker(payload):
    """Kills its worker process on the first ``crash_times`` calls."""
    marker_dir, index, crash_times = payload
    if _mark_call(marker_dir, index) <= crash_times:
        os._exit(66)
    return index + 100


def hangy_worker(payload):
    """Blocks far past any test timeout on the first call only."""
    marker_dir, index, hang_s = payload
    if _mark_call(marker_dir, index) == 1:
        time.sleep(hang_s)
    return index + 200


def packed_mean(task, rng):
    """Worker over a packed record payload (shm transport)."""
    record, scale = task
    return float(np.mean(record.unpack())) * scale


def packed_batch_total(task, rng):
    """Worker over a whole packed batch payload."""
    batch = task["batch"]
    return float(batch.unpack().sum()) + task["offset"]


class RecordTask(NamedTuple):
    """A NamedTuple sweep task carrying a packed record."""

    rec: object
    scale: float


def named_task_mean(task, rng):
    """Worker accessing the record by attribute (NamedTuple preserved)."""
    return float(np.mean(task.rec.unpack())) * task.scale


class TestWorkerPool:
    def test_bad_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkerPool(max_workers=0)

    def test_lazy_spawn(self):
        pool = WorkerPool(max_workers=1)
        assert not pool.active
        assert pool.spawn_count == 0
        pool.close()  # idempotent on an unspawned pool

    def test_empty_map_never_spawns(self):
        pool = WorkerPool(max_workers=1)
        assert pool.map(square, []) == []
        assert pool.spawn_count == 0
        assert not pool.active

    def test_reuse_across_calls(self):
        with WorkerPool(max_workers=1) as pool:
            assert pool.map(abs, [-1, -2]) == [1, 2]
            assert pool.map(abs, [-3]) == [3]
            assert pool.spawn_count == 1
            assert pool.active

    def test_close_then_reuse_respawns(self):
        pool = WorkerPool(max_workers=1)
        assert pool.map(abs, [-1]) == [1]
        pool.close()
        assert not pool.active
        assert pool.map(abs, [-2]) == [2]
        assert pool.spawn_count == 2
        pool.close()

    def test_broken_pool_recovers(self):
        with WorkerPool(max_workers=1) as pool:
            assert pool.map(abs, [-1]) == [1]
            for proc in pool._executor._processes.values():
                proc.terminate()
            # The dead executor is detected, respawned, and the batch
            # retried — deterministically, since payloads carry their
            # own generators.
            assert pool.map(abs, [-4, -5]) == [4, 5]
            assert pool.spawn_count == 2

    def test_context_manager_closes(self):
        with WorkerPool(max_workers=1) as pool:
            pool.map(abs, [-1])
        assert not pool.active

    def test_sized_to_batch_not_cap(self):
        with WorkerPool(max_workers=16) as pool:
            pool.map(abs, [-1, -2])
            assert pool.size == 2  # not 16 workers for 2 tasks

    def test_grows_by_respawning(self):
        with WorkerPool(max_workers=16) as pool:
            pool.map(abs, [-1])
            assert pool.size == 1
            pool.map(abs, [-1, -2, -3])
            assert pool.size == 3
            assert pool.spawn_count == 2
            pool.map(abs, [-1, -2])  # smaller batch reuses, never shrinks
            assert pool.size == 3
            assert pool.spawn_count == 2


class TestRunWithProcesses:
    def test_empty_tasks_spawn_nothing(self, monkeypatch):
        def explode(*a, **k):  # any spawn attempt fails the test
            raise AssertionError("spawned a pool for zero tasks")

        monkeypatch.setattr(shm, "ProcessPoolExecutor", explode)
        assert run_with_processes(square, [], [], max_workers=2) == []

    def test_pool_routing_matches_fresh_executor(self):
        rngs = spawn_rngs(make_rng(3), 3)
        with WorkerPool(max_workers=2) as pool:
            pooled = run_with_processes(square, [1, 2, 3], rngs, pool=pool)
        fresh = run_with_processes(
            square, [1, 2, 3], spawn_rngs(make_rng(3), 3), max_workers=2
        )
        assert pooled == fresh == [1, 4, 9]


class TestSharedSweepPayloads:
    @pytest.fixture
    def records(self):
        sim = small_sim(n_samples=30_000)
        batch, _ = sim.acquire_bitstreams(
            ["hot", "cold"], spawn_rngs(make_rng(9), 2), packed=True
        )
        return batch

    def test_plain_tasks_pass_through(self):
        tasks = [(1, "a"), {"x": 2}]
        rewritten, blocks = publish_packed_tasks(tasks)
        assert rewritten == tasks
        assert blocks == []

    def test_record_roundtrip(self, records):
        tasks = [(records[0], 2.0), (records[1], 3.0)]
        rewritten, blocks = publish_packed_tasks(tasks)
        try:
            assert blocks, "records should publish into shared memory"
            # Equal-shape records coalesce into one block.
            assert len(blocks) == 1
            handles = {}
            try:
                resolved = [
                    resolve_shared_task(task, handles) for task in rewritten
                ]
            finally:
                for handle in handles.values():
                    handle.close()
            for original, (rebuilt, scale) in zip(
                [(records[0], 2.0), (records[1], 3.0)], resolved
            ):
                assert rebuilt == original[0]
                assert scale == original[1]
        finally:
            for block in blocks:
                block.close()

    def test_batch_roundtrip(self, records):
        tasks = [{"batch": records, "offset": 1.0}]
        rewritten, blocks = publish_packed_tasks(tasks)
        try:
            handles = {}
            try:
                resolved = resolve_shared_task(rewritten[0], handles)
                assert np.array_equal(
                    resolved["batch"].words, records.words
                )
                assert resolved["offset"] == 1.0
            finally:
                for handle in handles.values():
                    handle.close()
        finally:
            for block in blocks:
                block.close()

    def test_map_sweep_shm_matches_serial(self, records):
        tasks = [(records[0], 2.0), (records[1], 3.0)]
        serial = MeasurementEngine().map_sweep(packed_mean, tasks, seed=1)
        with MeasurementEngine(backend="process", max_workers=2) as eng:
            procs = eng.map_sweep(packed_mean, tasks, seed=1)
        assert procs == serial

    def test_namedtuple_task_survives_shm_rewrite(self, records):
        tasks = [RecordTask(records[0], 2.0), RecordTask(records[1], 3.0)]
        serial = MeasurementEngine().map_sweep(named_task_mean, tasks, seed=1)
        with MeasurementEngine(backend="process", max_workers=2) as eng:
            procs = eng.map_sweep(named_task_mean, tasks, seed=1)
        assert procs == serial

    def test_map_sweep_batch_payload_matches_serial(self, records):
        tasks = [{"batch": records, "offset": 5.0}]
        serial = MeasurementEngine().map_sweep(
            packed_batch_total, tasks, seed=1
        )
        with MeasurementEngine(backend="process", max_workers=1) as eng:
            procs = eng.map_sweep(packed_batch_total, tasks, seed=1)
        assert procs == serial


class FloatOnlySource:
    """A batch acquirer without the analog-batch protocol."""

    def __init__(self, sim):
        self._sim = sim

    def acquire_bitstreams(self, states, rngs, packed=False):
        return self._sim.acquire_bitstreams(states, rngs, packed=packed)


class TestPlanner:
    def test_tuple_tasks_coerced(self):
        sim = small_sim()
        est = sim.make_estimator()
        plan = plan_measurements([(sim, est), (sim, est, 7)])
        assert plan.n_tasks == 2
        assert plan.tasks[1].rng == 7

    def test_bad_task_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_measurements(["nonsense"])

    def test_compatible_tasks_grouped(self):
        sim_a, sim_b = small_sim(), small_sim(n_samples=30_000)
        est_a, est_b = sim_a.make_estimator(), sim_b.make_estimator()
        tasks = [
            MeasurementTask(sim_a, est_a, 1),
            MeasurementTask(sim_b, est_b, 2),
            MeasurementTask(sim_a, est_a, 3),
            MeasurementTask(sim_b, est_b, 4),
        ]
        plan = plan_measurements(tasks)
        assert plan.n_groups == 2
        assert [g.indices for g in plan.groups] == [(0, 2), (1, 3)]
        assert all(g.batched for g in plan.groups)
        assert plan.n_batched_tasks == 4

    def test_singleton_falls_back(self):
        sim_a, sim_b = small_sim(), small_sim(n_samples=30_000)
        tasks = [
            MeasurementTask(sim_a, sim_a.make_estimator(), 1),
            MeasurementTask(sim_a, sim_a.make_estimator(), 2),
            MeasurementTask(sim_b, sim_b.make_estimator(), 3),
        ]
        plan = plan_measurements(tasks)
        batched = [g for g in plan.groups if g.batched]
        singles = [g for g in plan.groups if not g.batched]
        assert [g.indices for g in batched] == [(0, 1)]
        assert [g.indices for g in singles] == [(2,)]

    def test_protocol_less_source_falls_back(self):
        sim = small_sim()
        est = sim.make_estimator()
        plain = FloatOnlySource(sim)
        tasks = [
            MeasurementTask(plain, est, 1),
            MeasurementTask(plain, est, 2),
            MeasurementTask(sim, est, 3),
            MeasurementTask(sim, est, 4),
        ]
        plan = plan_measurements(tasks)
        assert [g.indices for g in plan.groups if g.batched] == [(2, 3)]
        assert [g.indices for g in plan.groups if not g.batched] == [
            (0,),
            (1,),
        ]

    def test_heterogeneous_run_bit_identical_to_per_task_measure(self):
        sims = [
            small_sim(),
            small_sim(n_samples=30_000),
            small_sim(),
            small_sim(n_samples=30_000),
        ]
        rngs = spawn_rngs(make_rng(21), len(sims))
        tasks = [
            MeasurementTask(sim, sim.make_estimator(), rng)
            for sim, rng in zip(sims, rngs)
        ]
        sched = MeasurementScheduler()
        planned = sched.run(tasks)
        eng = MeasurementEngine()
        reference_rngs = spawn_rngs(make_rng(21), len(sims))
        for sim, rng, result in zip(sims, reference_rngs, planned):
            expected = eng.measure(sim, sim.make_estimator(), rng=rng)
            assert result.noise_figure_db == expected.noise_figure_db
            assert result.y == expected.y

    def test_run_results_in_task_order(self):
        # Interleave two configs; results must land at their task index.
        sim_a, sim_b = small_sim(), small_sim(n_samples=30_000)
        tasks = [
            MeasurementTask(sim_a, sim_a.make_estimator(), 1),
            MeasurementTask(sim_b, sim_b.make_estimator(), 2),
            MeasurementTask(sim_a, sim_a.make_estimator(), 3),
        ]
        results = MeasurementScheduler().run(tasks)
        eng = MeasurementEngine()
        for task, result in zip(tasks, results):
            expected = eng.measure(task.source, task.estimator, rng=task.rng)
            assert result.noise_figure_db == expected.noise_figure_db

    def test_allow_failures_yields_none(self):
        # A reference far outside the searchable window loses the line.
        bad = MatlabSimulation(
            MatlabSimConfig(
                n_samples=30_000, nperseg=3000, reference_ratio=0.001
            )
        )
        ok = small_sim(n_samples=30_000)
        tasks = [
            MeasurementTask(ok, ok.make_estimator(), 1),
            MeasurementTask(bad, bad.make_estimator(), 2),
        ]
        results = MeasurementScheduler().run(tasks, allow_failures=True)
        assert results[0] is not None
        assert results[1] is None  # swamped line -> Y < 1 -> failure

    def test_failures_raise_by_default(self):
        from repro.errors import MeasurementError

        bad = MatlabSimulation(
            MatlabSimConfig(
                n_samples=30_000, nperseg=3000, reference_ratio=0.001
            )
        )
        tasks = [MeasurementTask(bad, bad.make_estimator(), 2)]
        with pytest.raises(MeasurementError):
            MeasurementScheduler().run(tasks)


class TestSchedulerFacade:
    def test_bad_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            MeasurementScheduler(backend="threads")

    def test_serial_alias(self):
        sched = MeasurementScheduler(backend="serial")
        assert sched.backend == "vectorized"
        assert sched.pool is None

    def test_wraps_existing_engine(self):
        eng = MeasurementEngine()
        sched = MeasurementScheduler(engine=eng)
        assert sched.engine is eng

    def test_engine_plus_config_rejected(self):
        eng = MeasurementEngine()
        with pytest.raises(ConfigurationError):
            MeasurementScheduler(engine=eng, backend="process")
        with pytest.raises(ConfigurationError):
            MeasurementScheduler(engine=eng, max_workers=2)
        with pytest.raises(ConfigurationError):
            MeasurementScheduler(engine=eng, packed=False)

    def test_as_scheduler_resolution(self):
        explicit = MeasurementScheduler()
        assert as_scheduler(scheduler=explicit) is explicit
        eng = MeasurementEngine()
        assert as_scheduler(engine=eng).engine is eng
        assert as_scheduler().backend == "vectorized"

    def test_map_sweep_delegates(self):
        assert MeasurementScheduler().map_sweep(square, [2, 3], seed=0) == [
            4,
            9,
        ]

    def test_pool_shared_across_sweeps_and_welch(self):
        sim = small_sim(n_samples=30_000)
        records, rate = sim.acquire_bitstreams(
            ["hot", "cold", "hot", "cold"],
            spawn_rngs(make_rng(5), 4),
            packed=True,
        )
        with MeasurementScheduler(backend="process", max_workers=2) as sched:
            sched.map_sweep(square, [1, 2], seed=0)
            sched.map_sweep(square, [3], seed=0)
            sched.engine.spectra_of(records, rate, sim.make_estimator())
            assert sched.pool.spawn_count == 1

    def test_close_releases_own_engine_pool(self):
        sched = MeasurementScheduler(backend="process", max_workers=1)
        sched.map_sweep(square, [1], seed=0)
        assert sched.pool.active
        sched.close()
        assert not sched.pool.active

    def test_close_leaves_callers_engine_alone(self):
        with MeasurementEngine(backend="process", max_workers=1) as eng:
            eng.map_sweep(square, [1], seed=0)
            sched = MeasurementScheduler(engine=eng)
            sched.close()
            assert eng.worker_pool.active  # caller still owns it


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_respawns=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_base_s=-0.1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(task_timeout_s=0)

    def test_domain_errors_not_retryable(self):
        policy = RetryPolicy()
        assert not policy.is_retryable(MeasurementError("x"))
        assert not policy.is_retryable(ConfigurationError("x"))
        assert policy.is_retryable(RuntimeError("x"))
        assert policy.is_retryable(OSError("x"))

    def test_backoff_deterministic_and_capped(self):
        policy = RetryPolicy(
            backoff_base_s=0.1, backoff_factor=2.0, backoff_max_s=0.3,
            jitter=0.5,
        )
        assert policy.backoff_s(3, 1) == policy.backoff_s(3, 1)
        assert policy.backoff_s(3, 1) != policy.backoff_s(4, 1)
        # Exponential growth until the cap (jitter adds at most 50%).
        assert policy.backoff_s(0, 1) < policy.backoff_s(0, 5)
        assert policy.backoff_s(0, 10) <= 0.3 * 1.5

    def test_zero_base_is_free(self):
        assert RetryPolicy(backoff_base_s=0.0).backoff_s(0, 3) == 0.0


#: Fast-recovery policy for the fault tests (no multi-second backoffs).
_FAST = dict(backoff_base_s=0.01, backoff_max_s=0.05)


class TestFaultTolerantPool:
    def test_transient_exception_retried_to_success(self, tmp_path):
        policy = RetryPolicy(max_retries=2, **_FAST)
        payloads = [(str(tmp_path), i, 1) for i in range(3)]
        with WorkerPool(max_workers=2, policy=policy) as pool:
            outcome = pool.run(flaky_worker, payloads)
        assert outcome.ok
        assert outcome.results == [0, 10, 20]
        assert outcome.retries == 3  # each task failed exactly once
        assert outcome.attempts == 6

    def test_domain_error_never_retried(self, tmp_path):
        policy = RetryPolicy(max_retries=5, **_FAST)
        with WorkerPool(max_workers=1, policy=policy) as pool:
            with pytest.raises(MeasurementError):
                pool.map(domain_error_worker, [(str(tmp_path), 0)])
        # One call, no retries: deterministic failures replay identically.
        assert os.path.getsize(tmp_path / "task0.calls") == 1

    def test_retries_exhausted_raises_original(self, tmp_path):
        policy = RetryPolicy(max_retries=1, **_FAST)
        with WorkerPool(max_workers=1, policy=policy) as pool:
            with pytest.raises(RuntimeError, match="transient failure"):
                pool.map(flaky_worker, [(str(tmp_path), 0, 10)])

    def test_dead_letter_records_attempts(self, tmp_path):
        policy = RetryPolicy(max_retries=1, **_FAST)
        with WorkerPool(max_workers=1, policy=policy) as pool:
            outcome = pool.run(flaky_worker, [(str(tmp_path), 0, 10)])
        assert not outcome.ok
        assert outcome.results == [None]
        [failure] = outcome.dead
        assert failure.kind == "exception"
        assert failure.index == 0
        assert failure.attempts == 2  # initial + 1 retry
        assert "transient failure" in failure.error
        assert failure.describe()["kind"] == "exception"

    def test_worker_crash_recovered(self, tmp_path):
        policy = RetryPolicy(max_retries=2, **_FAST)
        payloads = [(str(tmp_path), i, 1 if i == 0 else 0) for i in range(3)]
        with WorkerPool(max_workers=2, policy=policy) as pool:
            outcome = pool.run(crashy_worker, payloads)
        assert outcome.ok
        assert outcome.results == [100, 101, 102]
        assert outcome.respawns >= 1

    def test_repeated_breaks_mid_retry_recovered(self, tmp_path):
        # The old pool retried a broken batch exactly once; a second
        # break escaped.  The respawn budget makes this configurable.
        policy = RetryPolicy(max_retries=4, max_respawns=4, **_FAST)
        with WorkerPool(max_workers=1, policy=policy) as pool:
            outcome = pool.run(crashy_worker, [(str(tmp_path), 0, 2)])
        assert outcome.ok
        assert outcome.results == [100]
        assert outcome.respawns >= 2

    def test_respawn_budget_exhaustion_dead_letters(self, tmp_path):
        policy = RetryPolicy(max_retries=10, max_respawns=0, **_FAST)
        with WorkerPool(max_workers=1, policy=policy) as pool:
            outcome = pool.run(crashy_worker, [(str(tmp_path), 0, 100)])
            assert not outcome.ok
            assert outcome.dead[0].kind == "pool"
            with pytest.raises(ExecutionError, match="respawn budget"):
                pool.map(crashy_worker, [(str(tmp_path), 1, 100)])

    def test_always_crashing_task_dead_letters_as_crash(self, tmp_path):
        policy = RetryPolicy(max_retries=1, max_respawns=10, **_FAST)
        with WorkerPool(max_workers=1, policy=policy) as pool:
            outcome = pool.run(crashy_worker, [(str(tmp_path), 0, 100)])
        assert not outcome.ok
        assert outcome.dead[0].kind == "crash"
        assert outcome.dead[0].attempts == 2

    def test_hung_worker_killed_and_retried(self, tmp_path):
        policy = RetryPolicy(max_retries=2, task_timeout_s=1.5, **_FAST)
        with WorkerPool(max_workers=1, policy=policy) as pool:
            outcome = pool.run(hangy_worker, [(str(tmp_path), 0, 60.0)])
        assert outcome.ok
        assert outcome.results == [200]
        assert outcome.timeouts == 1
        assert outcome.respawns >= 1

    def test_short_hang_without_timeout_still_finishes(self, tmp_path):
        # Without hung-worker detection a hang is just slow, not fatal.
        with WorkerPool(max_workers=1) as pool:
            assert pool.map(hangy_worker, [(str(tmp_path), 0, 0.2)]) == [200]

    def test_per_call_policy_overrides_pool_policy(self, tmp_path):
        strict = RetryPolicy(max_retries=0, **_FAST)
        lenient = RetryPolicy(max_retries=3, **_FAST)
        with WorkerPool(max_workers=1, policy=strict) as pool:
            outcome = pool.run(
                flaky_worker, [(str(tmp_path), 0, 1)], policy=lenient
            )
            assert outcome.ok
            with pytest.raises(RuntimeError):
                pool.map(flaky_worker, [(str(tmp_path), 1, 1)])

    def test_telemetry_accumulates_across_calls(self, tmp_path):
        policy = RetryPolicy(max_retries=2, **_FAST)
        with WorkerPool(max_workers=1, policy=policy) as pool:
            pool.run(flaky_worker, [(str(tmp_path), 0, 1)])
            pool.run(flaky_worker, [(str(tmp_path), 1, 1)])
            assert pool.telemetry.attempts == 4
            assert pool.telemetry.retries == 2
            assert pool.telemetry.dead == []

    def test_results_keep_order_under_retries(self, tmp_path):
        policy = RetryPolicy(max_retries=2, **_FAST)
        payloads = [(str(tmp_path), i, i % 2) for i in range(6)]
        with WorkerPool(max_workers=3, policy=policy) as pool:
            assert pool.map(flaky_worker, payloads) == [
                i * 10 for i in range(6)
            ]


class TestInjectedPoolFaults:
    def test_injected_exception_retried_and_logged(self):
        plan = FaultPlan(task_exception=1.0, max_per_site=2)
        policy = RetryPolicy(max_retries=3, **_FAST)
        with inject(plan) as injector:
            with WorkerPool(max_workers=2, policy=policy) as pool:
                outcome = pool.run(abs, [-1, -2, -3])
        assert outcome.ok
        assert outcome.results == [1, 2, 3]
        assert injector.counts() == {"task_exception": 2}
        assert outcome.retries == 2

    def test_injected_crash_recovered(self):
        plan = FaultPlan(worker_crash=1.0, max_per_site=1)
        policy = RetryPolicy(max_retries=3, **_FAST)
        with inject(plan) as injector:
            with WorkerPool(max_workers=2, policy=policy) as pool:
                assert pool.map(abs, [-1, -2]) == [1, 2]
        assert injector.counts() == {"worker_crash": 1}

    def test_injected_hang_detected_by_timeout(self):
        plan = FaultPlan(worker_hang=1.0, max_per_site=1, hang_seconds=60.0)
        policy = RetryPolicy(max_retries=3, task_timeout_s=1.5, **_FAST)
        with inject(plan) as injector:
            with WorkerPool(max_workers=1, policy=policy) as pool:
                outcome = pool.run(abs, [-5])
        assert outcome.ok and outcome.results == [5]
        assert outcome.timeouts == 1
        assert injector.counts() == {"worker_hang": 1}


class TestRunReport:
    def _mixed_tasks(self):
        good = small_sim(n_samples=30_000)
        # A different nperseg keeps the doomed device out of the good
        # batch; the swamped reference line fails its measurement.
        bad = MatlabSimulation(
            MatlabSimConfig(
                n_samples=30_000, nperseg=1500, reference_ratio=0.001
            )
        )
        return [
            MeasurementTask(good, good.make_estimator(), 1),
            MeasurementTask(good, good.make_estimator(), 2),
            MeasurementTask(bad, bad.make_estimator(), 3),
        ]

    def test_clean_run_reports_ok(self):
        tasks = self._mixed_tasks()[:2]
        report = MeasurementScheduler().run_report(tasks)
        assert report.ok
        assert all(r is not None for r in report.results)
        assert [g.status for g in report.groups] == ["ok"]
        assert report.wall_s > 0
        assert all(g.wall_s > 0 for g in report.groups)

    def test_failed_group_degrades_gracefully(self):
        # The bad singleton group fails terminally; the batched good
        # group must still complete and scatter its results.
        report = MeasurementScheduler().run_report(self._mixed_tasks())
        assert not report.ok
        assert report.n_failed_groups == 1
        assert report.results[0] is not None
        assert report.results[1] is not None
        assert report.results[2] is None
        failed = [g for g in report.groups if g.status == "failed"]
        assert "MeasurementError" in failed[0].error

    def test_describe_is_json_ready(self):
        import json

        report = MeasurementScheduler().run_report(self._mixed_tasks())
        doc = json.loads(json.dumps(report.describe()))
        assert doc["n_measured"] == 2
        assert doc["ok"] is False

    def test_results_match_plain_run(self):
        tasks = self._mixed_tasks()[:2]
        report = MeasurementScheduler().run_report(tasks)
        plain = MeasurementScheduler().run(tasks)
        for a, b in zip(report.results, plain):
            assert a.noise_figure_db == b.noise_figure_db

    def test_resume_without_store_rejected(self):
        with pytest.raises(ConfigurationError):
            MeasurementScheduler().run_report(
                self._mixed_tasks()[:1], resume=True
            )


class TestEnginePoolLifetime:
    def test_vectorized_engine_has_no_pool(self):
        assert MeasurementEngine().worker_pool is None

    def test_engine_pool_lazy_and_persistent(self):
        with MeasurementEngine(backend="process", max_workers=1) as eng:
            pool = eng.worker_pool
            assert pool is not None and not pool.active
            eng.map_sweep(square, [1, 2], seed=0)
            eng.map_sweep(square, [3], seed=0)
            assert pool.spawn_count == 1
        assert not pool.active

    def test_shared_pool_not_closed_by_engine(self):
        with WorkerPool(max_workers=1) as pool:
            eng = MeasurementEngine(backend="process", pool=pool)
            eng.map_sweep(square, [1], seed=0)
            eng.close()
            assert pool.active  # still the caller's to close
        assert not pool.active


def _backend_probe(_task):
    """Module-level worker: report the backends active in the worker."""
    from repro.dsp.fft_backend import get_fft_backend
    from repro.kernels import get_kernel_backend

    return get_kernel_backend(), get_fft_backend()


class TestBackendTelemetry:
    """MapOutcome / RunReport carry the active kernel and FFT backends."""

    def test_map_outcome_records_backends(self):
        from repro.dsp.fft_backend import get_fft_backend
        from repro.kernels import get_kernel_backend

        with WorkerPool(1) as pool:
            outcome = pool.run(abs, [-5])
        assert outcome.kernel_backend == get_kernel_backend()
        assert outcome.fft_backend == get_fft_backend()[0]

    def test_empty_run_still_records_backends(self):
        with WorkerPool(1) as pool:
            outcome = pool.run(abs, [])
        assert outcome.kernel_backend
        assert outcome.fft_backend

    def test_run_report_records_backends(self):
        from repro.kernels import kernel_backend

        sim = small_sim(n_samples=30_000)
        tasks = [MeasurementTask(sim, sim.make_estimator(), 1)]
        with kernel_backend("reference"):
            report = MeasurementScheduler().run_report(tasks)
        assert report.kernel_backend == "reference"
        assert report.fft_backend in ("numpy", "scipy")
        doc = report.describe()
        assert doc["kernel_backend"] == "reference"
        assert doc["fft_backend"] == report.fft_backend

    def test_workers_inherit_parent_backend_selection(self):
        from repro.kernels import kernel_backend

        with kernel_backend("reference"):
            with WorkerPool(1) as pool:
                outcome = pool.run(_backend_probe, [0])
        # The pool initializer pins the parent's selection in every
        # worker, with FFT threads collapsed to workers=1.
        assert outcome.results == [("reference", ("numpy", 1))]


class TestChunkedPlanning:
    def test_max_group_size_splits_groups(self):
        sim = small_sim()
        tasks = [
            MeasurementTask(sim, sim.make_estimator(), i) for i in range(5)
        ]
        plan = plan_measurements(tasks, max_group_size=2)
        assert plan.max_group_size == 2
        assert [len(g.indices) for g in plan.groups] == [2, 2, 1]
        # Chunking preserves task order within the compatible set.
        assert [g.indices for g in plan.groups] == [(0, 1), (2, 3), (4,)]

    def test_bad_max_group_size_rejected(self):
        sim = small_sim()
        with pytest.raises(ConfigurationError):
            plan_measurements(
                [MeasurementTask(sim, sim.make_estimator(), 1)],
                max_group_size=0,
            )

    def test_chunked_run_bit_identical_to_unchunked(self):
        def build_tasks():
            sim = small_sim()
            return [
                MeasurementTask(sim, sim.make_estimator(), i)
                for i in range(4)
            ]

        sched = MeasurementScheduler()
        whole = sched.run(build_tasks())
        chunked = sched.run(build_tasks(), max_group_size=1)
        for a, b in zip(whole, chunked):
            assert a.noise_figure_db == b.noise_figure_db
            assert a.y == b.y

    def test_on_group_end_fires_per_sub_batch(self):
        sim = small_sim()
        tasks = [
            MeasurementTask(sim, sim.make_estimator(), i) for i in range(5)
        ]
        calls = []
        MeasurementScheduler().run(
            tasks,
            max_group_size=2,
            on_group_end=lambda gi, n: calls.append((gi, n)),
        )
        assert calls == [(0, 3), (1, 3), (2, 3)]

    def test_run_report_supports_checkpoint_hook(self):
        sim = small_sim()
        tasks = [
            MeasurementTask(sim, sim.make_estimator(), i) for i in range(4)
        ]
        calls = []
        report = MeasurementScheduler().run_report(
            tasks,
            max_group_size=2,
            on_group_end=lambda gi, n: calls.append(gi),
        )
        assert len([r for r in report.results if r is not None]) == 4
        assert len(report.groups) == 2
        assert calls == [0, 1]


class TestPoolReleaseOnError:
    def _spy_close(self, sched):
        closed = []
        original = sched.engine.close

        def close():
            closed.append(True)
            original()

        sched.engine.close = close
        return closed

    def test_planning_error_releases_owned_engine(self):
        sched = MeasurementScheduler()
        closed = self._spy_close(sched)
        with pytest.raises(ConfigurationError):
            sched.run(["nonsense"])
        assert closed

    def test_checkpoint_hook_error_releases_owned_engine(self):
        sim = small_sim()
        tasks = [
            MeasurementTask(sim, sim.make_estimator(), i) for i in range(2)
        ]
        sched = MeasurementScheduler()
        closed = self._spy_close(sched)

        def explode(gi, n):
            raise RuntimeError("hook failure")

        with pytest.raises(RuntimeError):
            sched.run(tasks, max_group_size=1, on_group_end=explode)
        assert closed

    def test_wrapped_engine_is_not_closed_on_error(self):
        eng = MeasurementEngine()
        sched = MeasurementScheduler(engine=eng)
        closed = self._spy_close(sched)
        with pytest.raises(ConfigurationError):
            sched.run(["nonsense"])
        assert not closed  # the caller owns it; their shutdown decides
