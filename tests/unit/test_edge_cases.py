"""Edge-case tests across modules (paths not covered elsewhere)."""

import numpy as np
import pytest

from repro.core.definitions import snr_db_from_waveforms
from repro.digitizer.arcsine import corrected_psd
from repro.digitizer.digitizer import OneBitDigitizer
from repro.dsp.spectrum import Spectrum
from repro.errors import ConfigurationError, MeasurementError
from repro.instruments.function_generator import FunctionGenerator
from repro.signals.sources import GaussianNoiseSource
from repro.signals.waveform import Waveform
from repro.soc.processor import DSPProcessor


class TestSpectrumEdges:
    def test_slice_band_single_bin_raises(self):
        s = Spectrum(np.arange(100.0), np.ones(100))
        with pytest.raises(MeasurementError):
            s.slice_band(49.9, 50.1)

    def test_line_at_spectrum_edge(self):
        # A line in the last bin: the annulus is one-sided but the
        # measurement must still succeed.
        psd = np.ones(100)
        psd[98] = 1000.0
        s = Spectrum(np.arange(100.0), psd, enbw_hz=1.0)
        f, p = s.line_power(97.0, 3.0)
        assert f == 98.0
        assert p > 500.0

    def test_line_power_tiny_spectrum_subtracts_unit_floor(self):
        # Single-bin window on a tiny spectrum: the annulus covers the
        # remaining bins (floor 1.0), so exactly one floor unit is
        # subtracted from the 51-total window.
        psd = np.array([1.0, 1.0, 50.0, 1.0, 1.0])
        s = Spectrum(np.arange(5.0), psd, enbw_hz=0.4)
        f, p = s.line_power(2.0, 1.0, integration_halfwidth_hz=0.4)
        assert f == 2.0
        assert p == pytest.approx(49.0)

    def test_to_db_rejects_nonpositive_reference(self):
        s = Spectrum(np.arange(3.0), np.ones(3))
        with pytest.raises(ConfigurationError):
            s.to_db(reference=0.0)


class TestDefinitionEdges:
    def test_snr_zero_signal_rejected(self):
        signal = Waveform([0.0, 0.0], 10.0)
        noise = Waveform([1.0, -1.0], 10.0)
        with pytest.raises(MeasurementError):
            snr_db_from_waveforms(signal, noise)


class TestArcsineEdges:
    def test_corrected_psd_custom_window(self, rng):
        noise = GaussianNoiseSource(1.0).render(20000, 10000.0, rng)
        bits = OneBitDigitizer().digitize(
            noise, Waveform(np.zeros(20000), 10000.0)
        )
        spec_hann = corrected_psd(bits, 256, window="hann")
        spec_rect = corrected_psd(bits, 256, window="rectangular")
        # Both normalize to unit total power.
        assert spec_hann.total_power() == pytest.approx(1.0, rel=0.15)
        assert spec_rect.total_power() == pytest.approx(1.0, rel=0.15)


class TestGeneratorEdges:
    def test_as_source_is_reusable(self):
        gen = FunctionGenerator("sine", 100.0, vpp=2.0)
        src = gen.as_source()
        a = src.render(100, 10000.0)
        b = src.render(100, 10000.0)
        assert a == b

    def test_negative_vpp_rejected(self):
        with pytest.raises(ConfigurationError):
            FunctionGenerator("sine", 100.0, vpp=-1.0)


class TestProcessorEdges:
    def test_operations_returns_copy(self):
        proc = DSPProcessor()
        proc.cost_window(10)
        ops = proc.operations()
        ops.clear()
        assert len(proc.operations()) == 1

    def test_fft_size_one_power_of_two_handling(self):
        proc = DSPProcessor()
        proc.cost_fft(2)
        assert proc.total_cycles == proc.cycles_per_butterfly  # 1 butterfly


class TestWaveformEdges:
    def test_empty_waveform_statistics(self):
        w = Waveform(np.zeros(0), 10.0)
        assert w.mean() == 0.0
        assert w.mean_square() == 0.0
        assert w.peak() == 0.0

    def test_single_sample(self):
        w = Waveform([3.0], 10.0)
        assert w.rms() == 3.0
        assert w.duration == pytest.approx(0.1)
