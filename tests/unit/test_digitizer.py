"""Tests for repro.digitizer.digitizer."""

import numpy as np
import pytest

from repro.digitizer.comparator import Comparator
from repro.digitizer.digitizer import OneBitDigitizer
from repro.digitizer.sampler import SampledLatch
from repro.errors import ConfigurationError
from repro.signals.sources import GaussianNoiseSource, SineSource
from repro.signals.waveform import Waveform

FS = 10000.0


class TestDigitize:
    def test_output_is_bitstream(self, rng):
        dig = OneBitDigitizer()
        sig = GaussianNoiseSource(1.0).render(1000, FS, rng)
        ref = SineSource(100.0, 0.2).render(1000, FS)
        out = dig.digitize(sig, ref)
        assert set(np.unique(out.samples)) <= {-1.0, 1.0}

    def test_sampler_divides_rate(self, rng):
        dig = OneBitDigitizer(sampler=SampledLatch(4))
        sig = GaussianNoiseSource(1.0).render(1000, FS, rng)
        ref = Waveform(np.zeros(1000), FS)
        out = dig.digitize(sig, ref)
        assert out.sample_rate == FS / 4
        assert len(out) == 250

    def test_reproducible_with_seed(self, rng):
        dig = OneBitDigitizer(comparator=Comparator(input_noise_rms=0.1))
        sig = GaussianNoiseSource(1.0).render(500, FS, 1)
        ref = Waveform(np.zeros(500), FS)
        a = dig.digitize(sig, ref, rng=7)
        b = dig.digitize(sig, ref, rng=7)
        assert a == b

    def test_default_components(self):
        dig = OneBitDigitizer()
        assert isinstance(dig.comparator, Comparator)
        assert isinstance(dig.sampler, SampledLatch)

    def test_rejects_wrong_component_types(self):
        with pytest.raises(ConfigurationError):
            OneBitDigitizer(comparator="nope")
        with pytest.raises(ConfigurationError):
            OneBitDigitizer(sampler="nope")

    def test_output_sample_rate_factor(self):
        assert OneBitDigitizer(sampler=SampledLatch(8)).output_sample_rate_factor == 0.125


class TestLevelRatio:
    def test_ratio_definition(self, rng):
        sig = GaussianNoiseSource(2.0).render(100000, FS, rng)
        ref = SineSource(100.0, 0.5).render(100000, FS)
        ratio = OneBitDigitizer.level_ratio(sig, ref)
        assert ratio == pytest.approx(0.25, rel=0.05)

    def test_zero_signal_raises(self):
        sig = Waveform(np.zeros(100), FS)
        ref = SineSource(100.0, 0.5).render(100, FS)
        with pytest.raises(ConfigurationError):
            OneBitDigitizer.level_ratio(sig, ref)
