"""Tests for repro.signals.sources."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.signals.sources import (
    CompositeSource,
    DCSource,
    GaussianNoiseSource,
    ShapedNoiseSource,
    SineSource,
    SquareSource,
    ThermalNoiseSource,
)

FS = 10000.0
N = 20000


class TestSineSource:
    def test_amplitude_and_rms(self):
        w = SineSource(100.0, 2.0).render(N, FS)
        assert w.peak() == pytest.approx(2.0, rel=1e-3)
        assert w.rms() == pytest.approx(2.0 / np.sqrt(2), rel=1e-3)

    def test_frequency_via_zero_crossings(self):
        w = SineSource(50.0, 1.0).render(N, FS)
        crossings = np.sum(np.diff(np.signbit(w.samples)))
        # 50 Hz over 2 s -> 100 cycles -> ~200 crossings.
        assert crossings == pytest.approx(200, abs=2)

    def test_dc_offset(self):
        w = SineSource(100.0, 1.0, dc=3.0).render(N, FS)
        assert w.mean() == pytest.approx(3.0, abs=1e-6)

    def test_phase_shift(self):
        w = SineSource(100.0, 1.0, phase_rad=np.pi / 2).render(4, FS)
        assert w.samples[0] == pytest.approx(1.0)

    def test_rejects_frequency_at_nyquist(self):
        with pytest.raises(ConfigurationError):
            SineSource(FS / 2, 1.0).render(10, FS)

    def test_rejects_negative_amplitude(self):
        with pytest.raises(ConfigurationError):
            SineSource(100.0, -1.0)

    def test_deterministic_ignores_rng(self):
        a = SineSource(100.0, 1.0).render(100, FS, rng=1)
        b = SineSource(100.0, 1.0).render(100, FS, rng=2)
        assert a == b


class TestSquareSource:
    def test_takes_only_two_levels(self):
        w = SquareSource(60.0, 1.5).render(N, FS)
        assert set(np.unique(w.samples)) == {-1.5, 1.5}

    def test_duty_cycle(self):
        w = SquareSource(10.0, 1.0, duty=0.25).render(N, FS)
        high_fraction = np.mean(w.samples > 0)
        assert high_fraction == pytest.approx(0.25, abs=0.01)

    def test_mean_square_is_amplitude_squared(self):
        w = SquareSource(60.0, 2.0).render(N, FS)
        assert w.mean_square() == pytest.approx(4.0)

    def test_fundamental_line_is_4_over_pi(self):
        # The square-wave fundamental has amplitude (4/pi)*A.
        from repro.dsp.psd import periodogram

        w = SquareSource(100.0, 1.0).render(N, FS)
        spec = periodogram(w)
        _, p = spec.line_power(100.0, 20.0, subtract_floor=False)
        amp = np.sqrt(2 * p)
        assert amp == pytest.approx(4 / np.pi, rel=0.01)

    def test_rejects_bad_duty(self):
        with pytest.raises(ConfigurationError):
            SquareSource(60.0, 1.0, duty=1.0)

    def test_rejects_zero_frequency(self):
        with pytest.raises(ConfigurationError):
            SquareSource(0.0, 1.0)


class TestGaussianNoiseSource:
    def test_rms_level(self, rng):
        w = GaussianNoiseSource(0.5).render(N, FS, rng)
        assert w.std() == pytest.approx(0.5, rel=0.03)

    def test_mean_level(self, rng):
        w = GaussianNoiseSource(0.1, mean=2.0).render(N, FS, rng)
        assert w.mean() == pytest.approx(2.0, abs=0.01)

    def test_from_density_total_power(self, rng):
        # One-sided density S over [0, fs/2] must integrate to sigma^2.
        source = GaussianNoiseSource.from_density(2e-4, FS)
        w = source.render(N, FS, rng)
        assert w.mean_square() == pytest.approx(2e-4 * FS / 2, rel=0.05)

    def test_reproducible_with_seed(self):
        a = GaussianNoiseSource(1.0).render(100, FS, rng=7)
        b = GaussianNoiseSource(1.0).render(100, FS, rng=7)
        assert a == b

    def test_rejects_negative_rms(self):
        with pytest.raises(ConfigurationError):
            GaussianNoiseSource(-0.1)


class TestThermalNoiseSource:
    def test_density_matches_4ktr(self):
        src = ThermalNoiseSource(1000.0, 290.0)
        assert src.density_v2_per_hz == pytest.approx(1.6e-17, rel=0.01)

    def test_rendered_power(self, rng):
        src = ThermalNoiseSource(1e6, 10000.0)  # big R/T for numerics
        w = src.render(N, FS, rng)
        expected_ms = src.density_v2_per_hz * FS / 2
        assert w.mean_square() == pytest.approx(expected_ms, rel=0.05)

    def test_power_proportional_to_temperature(self, rng):
        cold = ThermalNoiseSource(1e6, 1000.0)
        hot = ThermalNoiseSource(1e6, 4000.0)
        assert hot.density_v2_per_hz == pytest.approx(4 * cold.density_v2_per_hz)


class TestShapedNoiseSource:
    def test_flat_density_matches_white(self, rng):
        src = ShapedNoiseSource(lambda f: np.full_like(f, 1e-4))
        w = src.render(N, FS, rng)
        assert w.mean_square() == pytest.approx(1e-4 * FS / 2, rel=0.05)

    def test_one_over_f_has_more_low_frequency_power(self, rng):
        from repro.dsp.psd import welch

        src = ShapedNoiseSource.one_over_f(1e-4, corner_hz=1000.0)
        w = src.render(100000, FS, rng)
        spec = welch(w, nperseg=4096)
        low = spec.band_mean_density(20.0, 100.0)
        high = spec.band_mean_density(4000.0, 4900.0)
        assert low > 3 * high

    def test_output_is_zero_mean(self, rng):
        src = ShapedNoiseSource.one_over_f(1e-4, corner_hz=100.0)
        w = src.render(N, FS, rng)
        assert abs(w.mean()) < 1e-10

    def test_rejects_negative_density(self, rng):
        src = ShapedNoiseSource(lambda f: np.full_like(f, -1.0))
        with pytest.raises(ConfigurationError):
            src.render(100, FS, rng)

    def test_rejects_wrong_shape(self, rng):
        src = ShapedNoiseSource(lambda f: np.zeros(3))
        with pytest.raises(ConfigurationError):
            src.render(100, FS, rng)

    def test_empty_render(self, rng):
        src = ShapedNoiseSource.one_over_f(1e-4, 10.0)
        assert len(src.render(0, FS, rng)) == 0


class TestCompositeSource:
    def test_sums_members(self, rng):
        comp = CompositeSource([DCSource(1.0), DCSource(2.0)])
        w = comp.render(10, FS, rng)
        assert np.allclose(w.samples, 3.0)

    def test_add_operator(self, rng):
        comp = SineSource(100.0, 1.0) + DCSource(5.0)
        w = comp.render(N, FS, rng)
        assert w.mean() == pytest.approx(5.0, abs=1e-6)

    def test_noise_members_are_independent(self, rng):
        comp = CompositeSource(
            [GaussianNoiseSource(1.0), GaussianNoiseSource(1.0)]
        )
        w = comp.render(N, FS, rng)
        # Independent sum: variance adds (2.0), not amplitude (4.0).
        assert w.mean_square() == pytest.approx(2.0, rel=0.05)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            CompositeSource([])

    def test_rejects_non_source(self):
        with pytest.raises(ConfigurationError):
            CompositeSource([DCSource(1.0), "not a source"])
