"""Tests for repro.core.spot_nf."""

import numpy as np
import pytest

from repro.core.bist import BISTMeasurementConfig, OneBitNoiseFigureBIST
from repro.core.spot_nf import SpotNoiseFigureSweep, octave_bands
from repro.digitizer.digitizer import OneBitDigitizer
from repro.errors import ConfigurationError
from repro.signals.random import spawn_rngs
from repro.signals.sources import GaussianNoiseSource, SquareSource

FS = 10000.0
N = 200000


def make_estimator():
    config = BISTMeasurementConfig(
        sample_rate_hz=FS,
        n_samples=N,
        nperseg=5000,
        reference_frequency_hz=60.0,
        noise_band_hz=(100.0, 4500.0),
        harmonic_kind="odd",
    )
    return OneBitNoiseFigureBIST(config, 2900.0, 290.0)


def white_bitstreams(f_dut=2.0, seed=1):
    te = (f_dut - 1.0) * 290.0
    ref = SquareSource(60.0, 0.2).render(N, FS)
    dig = OneBitDigitizer()
    rng_h, rng_c = spawn_rngs(seed, 2)
    sigma_h = np.sqrt((2900.0 + te) / (290.0 + te))
    hot = GaussianNoiseSource(sigma_h).render(N, FS, rng_h)
    cold = GaussianNoiseSource(1.0).render(N, FS, rng_c)
    return dig.digitize(hot, ref), dig.digitize(cold, ref)


class TestOctaveBands:
    def test_doubling(self):
        bands = octave_bands(100.0, 3, 5000.0)
        assert bands == [(100.0, 200.0), (200.0, 400.0), (400.0, 800.0)]

    def test_exceeding_nyquist_raises(self):
        with pytest.raises(ConfigurationError):
            octave_bands(1000.0, 4, 5000.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            octave_bands(0.0, 2, 5000.0)
        with pytest.raises(ConfigurationError):
            octave_bands(100.0, 0, 5000.0)


class TestSweep:
    def test_white_dut_is_flat(self):
        # With white noise in all bands, every band reads the same NF.
        est = make_estimator()
        sweep = SpotNoiseFigureSweep(
            est, [(200.0, 400.0), (800.0, 1600.0), (3000.0, 4400.0)]
        )
        bits_hot, bits_cold = white_bitstreams(f_dut=2.0, seed=3)
        result = sweep.estimate(bits_hot, bits_cold)
        values = result.nf_db
        assert np.max(values) - np.min(values) < 1.0
        assert np.mean(values) == pytest.approx(3.01, abs=0.7)

    def test_band_metadata(self):
        est = make_estimator()
        sweep = SpotNoiseFigureSweep(est, [(100.0, 400.0)])
        bits = white_bitstreams(seed=4)
        result = sweep.estimate(*bits)
        assert result.points[0].f_center_hz == pytest.approx(200.0)

    def test_validation(self):
        est = make_estimator()
        with pytest.raises(ConfigurationError):
            SpotNoiseFigureSweep(est, [])
        with pytest.raises(ConfigurationError):
            SpotNoiseFigureSweep(est, [(100.0, 9000.0)])
        with pytest.raises(ConfigurationError):
            SpotNoiseFigureSweep("est", [(100.0, 400.0)])
