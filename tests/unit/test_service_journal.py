"""Tests for repro.service.journal: the write-ahead job journal.

Property-style coverage mirroring ``test_store_index.py``: torn tails,
bit flips, duplicate job ids and replay-after-rotate must all leave the
journal replayable — every record before the damage recovered, nothing
after it invented.
"""

import json
import struct
import zlib

import pytest

from repro.errors import ConfigurationError
from repro.faults import FaultPlan, inject
from repro.service.journal import (
    _FRAME,
    _HEADER_LEN,
    _MAGIC,
    DONE_STATUSES,
    JobJournal,
)
from repro.service.protocol import JobSpec


def spec(kind="measure", **params):
    return JobSpec(kind=kind, params=params)


def _journal(tmp_path) -> JobJournal:
    journal = JobJournal(tmp_path / "service", fsync=False)
    journal.initialize()
    return journal


def _segment(journal: JobJournal):
    segments = journal._segments()
    assert segments, "journal has no segments"
    return segments[-1]


class TestFormat:
    def test_initialize_writes_header(self, tmp_path):
        journal = _journal(tmp_path)
        data = _segment(journal).read_bytes()
        assert len(data) == _HEADER_LEN
        assert data[:8] == _MAGIC

    def test_empty_journal_replays_empty(self, tmp_path):
        journal = _journal(tmp_path)
        state = journal.replay()
        assert state.entries == {}
        assert state.n_records == 0
        assert state.n_skipped == 0
        assert state.n_segments == 1

    def test_records_are_framed_and_checksummed(self, tmp_path):
        journal = _journal(tmp_path)
        job = spec(seed=1)
        journal.record_accept(job.key(), job, accepted_at=1.5)
        data = _segment(journal).read_bytes()
        length, crc = _FRAME.unpack_from(data, _HEADER_LEN)
        payload = data[_HEADER_LEN + _FRAME.size :]
        assert len(payload) == length
        assert zlib.crc32(payload) == crc
        record = json.loads(payload.decode("utf-8"))
        assert record["rec"] == "accept"
        assert record["key"] == job.key()

    def test_bad_done_status_rejected(self, tmp_path):
        journal = _journal(tmp_path)
        with pytest.raises(ConfigurationError):
            journal.record_done("ab" * 32, "exploded")


class TestReplay:
    def test_accept_round_trips_spec(self, tmp_path):
        journal = _journal(tmp_path)
        job = JobSpec(
            kind="lot",
            params={"n_devices": 4, "seed": 7},
            deadline_s=30.0,
        )
        journal.record_accept(job.key(), job, accepted_at=2.0)
        state = journal.replay()
        entry = state.entries[job.key()]
        assert entry.incomplete
        assert entry.spec == job
        assert entry.accepted_at == 2.0
        assert [e.key for e in state.incomplete] == [job.key()]

    def test_done_completes_entry_last_state_wins(self, tmp_path):
        journal = _journal(tmp_path)
        job = spec(seed=2)
        journal.record_accept(job.key(), job, accepted_at=0.0)
        journal.record_done(job.key(), "ok", result={"nf_db": 6.5})
        state = journal.replay()
        entry = state.entries[job.key()]
        assert not entry.incomplete
        assert entry.status == "ok"
        assert entry.result == {"nf_db": 6.5}
        assert state.incomplete == []

    @pytest.mark.parametrize("status", DONE_STATUSES)
    def test_every_done_status_is_terminal(self, tmp_path, status):
        journal = _journal(tmp_path)
        job = spec(seed=3)
        journal.record_accept(job.key(), job, accepted_at=0.0)
        journal.record_done(job.key(), status, error="boom")
        entry = journal.replay().entries[job.key()]
        assert entry.status == status
        assert not entry.incomplete

    def test_duplicate_accepts_idempotent(self, tmp_path):
        # A crash between append and ack makes the client resubmit the
        # same key; the journal must not double-count it.
        journal = _journal(tmp_path)
        job = spec(seed=4)
        journal.record_accept(job.key(), job, accepted_at=1.0)
        journal.record_accept(job.key(), job, accepted_at=9.0)
        state = journal.replay()
        assert len(state.entries) == 1
        assert state.entries[job.key()].accepted_at == 1.0
        assert state.n_records == 2

    def test_reaccept_after_terminal_is_incomplete_again(self, tmp_path):
        # The queue re-admits a key whose prior job finished
        # failed/deadline/dropped, and the daemon journals (and acks) a
        # fresh accept.  A crash before the rerun finishes must replay
        # the key as incomplete — the acknowledged job may not be lost
        # behind the stale terminal record.
        journal = _journal(tmp_path)
        job = spec(seed=5)
        journal.record_accept(job.key(), job, accepted_at=1.0)
        journal.record_done(job.key(), "failed", error="boom")
        journal.record_accept(job.key(), job, accepted_at=7.0)
        state = journal.replay()
        entry = state.entries[job.key()]
        assert entry.incomplete
        assert entry.accepted_at == 7.0
        assert entry.result is None
        assert entry.error == ""
        assert [e.key for e in state.incomplete] == [job.key()]

    def test_reaccept_then_done_is_terminal_again(self, tmp_path):
        # Full accept -> done -> accept -> done cycle: last state wins
        # at every step.
        journal = _journal(tmp_path)
        job = spec(seed=6)
        journal.record_accept(job.key(), job, accepted_at=0.0)
        journal.record_done(job.key(), "deadline", error="too slow")
        journal.record_accept(job.key(), job, accepted_at=3.0)
        journal.record_done(job.key(), "ok", result={"nf_db": 7.0})
        state = journal.replay()
        entry = state.entries[job.key()]
        assert not entry.incomplete
        assert entry.status == "ok"
        assert entry.result == {"nf_db": 7.0}
        assert state.incomplete == []

    def test_done_without_accept_skipped(self, tmp_path):
        journal = _journal(tmp_path)
        journal.record_done("ab" * 32, "ok")
        state = journal.replay()
        assert state.entries == {}
        assert state.n_skipped == 1

    def test_many_jobs_interleaved(self, tmp_path):
        journal = _journal(tmp_path)
        jobs = [spec(seed=i) for i in range(8)]
        for job in jobs:
            journal.record_accept(job.key(), job, accepted_at=0.0)
        for job in jobs[::2]:
            journal.record_done(job.key(), "ok")
        state = journal.replay()
        incomplete = {e.key for e in state.incomplete}
        assert incomplete == {j.key() for j in jobs[1::2]}


class TestCorruption:
    def test_torn_tail_recovers_prefix(self, tmp_path):
        journal = _journal(tmp_path)
        good = spec(seed=10)
        journal.record_accept(good.key(), good, accepted_at=0.0)
        path = _segment(journal)
        intact = path.read_bytes()
        # Simulate a SIGKILL mid-append: half a frame lands on disk.
        torn = _FRAME.pack(999, 0) + b"partial"
        path.write_bytes(intact + torn[: len(torn) // 2])
        state = journal.replay()
        assert good.key() in state.entries
        assert state.n_skipped == 1

    def test_torn_tail_healed_by_next_append(self, tmp_path):
        journal = _journal(tmp_path)
        good = spec(seed=11)
        journal.record_accept(good.key(), good, accepted_at=0.0)
        path = _segment(journal)
        path.write_bytes(path.read_bytes() + b"\x07\x00")
        journal._tail = None  # the cache never saw the tear
        fresh = spec(seed=12)
        journal.record_accept(fresh.key(), fresh, accepted_at=1.0)
        state = journal.replay()
        assert set(state.entries) == {good.key(), fresh.key()}
        assert state.n_skipped == 0  # the append truncated the tear away

    def test_bit_flip_drops_record(self, tmp_path):
        journal = _journal(tmp_path)
        first, second = spec(seed=13), spec(seed=14)
        journal.record_accept(first.key(), first, accepted_at=0.0)
        journal.record_accept(second.key(), second, accepted_at=1.0)
        path = _segment(journal)
        data = bytearray(path.read_bytes())
        # Flip one payload byte of the *second* record.
        length, _ = _FRAME.unpack_from(data, _HEADER_LEN)
        target = _HEADER_LEN + _FRAME.size + length + _FRAME.size + 4
        data[target] ^= 0x40
        path.write_bytes(bytes(data))
        state = journal.replay()
        assert first.key() in state.entries
        assert second.key() not in state.entries
        assert state.n_skipped == 1

    def test_bit_flip_stops_replay_conservatively(self, tmp_path):
        # Damage in the middle means nothing after it is trusted.
        journal = _journal(tmp_path)
        jobs = [spec(seed=i) for i in (20, 21, 22)]
        for job in jobs:
            journal.record_accept(job.key(), job, accepted_at=0.0)
        path = _segment(journal)
        data = bytearray(path.read_bytes())
        length, _ = _FRAME.unpack_from(data, _HEADER_LEN)
        data[_HEADER_LEN + _FRAME.size + 2] ^= 0x01  # first record
        path.write_bytes(bytes(data))
        state = journal.replay()
        assert state.entries == {}
        assert state.n_skipped == 1

    def test_bad_header_yields_empty_replay(self, tmp_path):
        journal = _journal(tmp_path)
        path = _segment(journal)
        path.write_bytes(b"NOTAJRNL" + path.read_bytes()[8:])
        state = journal.replay()
        assert state.entries == {}
        assert state.n_skipped == 1

    def test_injected_torn_write_never_acknowledged(self, tmp_path):
        # The journal_torn_write fault site cuts the append mid-frame;
        # the record must vanish on replay (it was never acked) and the
        # next clean append must heal the file.
        journal = _journal(tmp_path)
        lost = spec(seed=30)
        with inject(FaultPlan(journal_torn_write=1.0)) as injector:
            journal.record_accept(lost.key(), lost, accepted_at=0.0)
        assert injector.counts().get("journal_torn_write") == 1
        state = journal.replay()
        assert lost.key() not in state.entries
        assert state.n_skipped == 1
        kept = spec(seed=31)
        journal.record_accept(kept.key(), kept, accepted_at=1.0)
        state = journal.replay()
        assert set(state.entries) == {kept.key()}
        assert state.n_skipped == 0


class TestRotate:
    def test_rotate_drops_completed_keeps_incomplete(self, tmp_path):
        journal = _journal(tmp_path)
        done, live = spec(seed=40), spec(seed=41)
        journal.record_accept(done.key(), done, accepted_at=0.0)
        journal.record_accept(live.key(), live, accepted_at=1.0)
        journal.record_done(done.key(), "ok", result={"x": 1})
        removed = journal.rotate()
        assert removed == 1
        segments = journal._segments()
        assert len(segments) == 1
        assert segments[0].name == "journal-00000001.jrn"
        state = journal.replay()
        assert set(state.entries) == {live.key()}
        assert state.entries[live.key()].incomplete
        assert state.entries[live.key()].accepted_at == 1.0

    def test_replay_after_rotate_accepts_new_jobs(self, tmp_path):
        journal = _journal(tmp_path)
        live = spec(seed=42)
        journal.record_accept(live.key(), live, accepted_at=0.0)
        journal.rotate()
        fresh = spec(seed=43)
        journal.record_accept(fresh.key(), fresh, accepted_at=2.0)
        journal.record_done(live.key(), "ok")
        state = journal.replay()
        assert [e.key for e in state.incomplete] == [fresh.key()]
        assert len(journal._segments()) == 1

    def test_rotate_of_empty_journal(self, tmp_path):
        journal = _journal(tmp_path)
        assert journal.rotate() == 1  # the empty first segment
        assert journal.replay().entries == {}

    def test_rotate_of_missing_journal_is_noop(self, tmp_path):
        journal = JobJournal(tmp_path / "never-made", fsync=False)
        assert journal.rotate() == 0

    def test_stats_counts(self, tmp_path):
        journal = _journal(tmp_path)
        job = spec(seed=50)
        journal.record_accept(job.key(), job, accepted_at=0.0)
        journal.record_done(job.key(), "failed", error="boom")
        stats = journal.stats()
        assert stats["segments"] == 1
        assert stats["records"] == 2
        assert stats["jobs"] == 1
        assert stats["incomplete"] == 0
        assert stats["bytes"] > _HEADER_LEN
