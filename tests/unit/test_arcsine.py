"""Tests for repro.digitizer.arcsine (paper eq 12)."""

import numpy as np
import pytest

from repro.digitizer.arcsine import (
    arcsine_law,
    corrected_psd,
    line_coherent_gain,
    van_vleck_inverse,
)
from repro.digitizer.digitizer import OneBitDigitizer
from repro.dsp.autocorr import normalized_autocorrelation
from repro.errors import ConfigurationError
from repro.signals.filters import lowpass
from repro.signals.sources import GaussianNoiseSource
from repro.signals.waveform import Waveform

FS = 10000.0


class TestArcsineLaw:
    def test_endpoints(self):
        assert arcsine_law(1.0) == pytest.approx(1.0)
        assert arcsine_law(-1.0) == pytest.approx(-1.0)
        assert arcsine_law(0.0) == 0.0

    def test_small_argument_linear(self):
        rho = 0.01
        assert arcsine_law(rho) == pytest.approx((2 / np.pi) * rho, rel=1e-3)

    def test_compresses_mid_range(self):
        # arcsine output is below the identity for 0 < rho < 1.
        assert arcsine_law(0.7) < 0.7

    def test_odd_symmetry(self):
        assert arcsine_law(0.5) == pytest.approx(-arcsine_law(-0.5))

    def test_array_input(self):
        out = arcsine_law(np.array([0.0, 0.5, 1.0]))
        assert out.shape == (3,)

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            arcsine_law(1.5)

    def test_tolerates_round_off(self):
        assert arcsine_law(1.0 + 1e-12) == pytest.approx(1.0)


class TestVanVleckInverse:
    def test_inverse_of_forward(self):
        rho = np.linspace(-0.99, 0.99, 41)
        assert np.allclose(van_vleck_inverse(arcsine_law(rho)), rho, atol=1e-12)

    def test_forward_of_inverse(self):
        r = np.linspace(-0.9, 0.9, 19)
        assert np.allclose(arcsine_law(van_vleck_inverse(r)), r, atol=1e-12)

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            van_vleck_inverse(-1.2)


class TestEmpiricalArcsine:
    def test_bitstream_autocorrelation_follows_law(self, rng):
        # Band-limited Gaussian noise has nonzero rho at small lags; the
        # 1-bit stream's autocorrelation must be (2/pi)*arcsin(rho).
        noise = GaussianNoiseSource(1.0).render(400000, FS, rng)
        shaped = lowpass(noise, 1000.0)
        bits = OneBitDigitizer().digitize(
            shaped, Waveform(np.zeros(len(shaped)), FS)
        )
        rho_analog = normalized_autocorrelation(shaped, 10)
        rho_bits = normalized_autocorrelation(bits, 10, remove_mean=False)
        assert np.allclose(rho_bits, arcsine_law(rho_analog), atol=0.02)

    def test_line_coherent_gain_value(self):
        assert line_coherent_gain(2.0) == pytest.approx(np.sqrt(2 / np.pi) / 2.0)

    def test_line_coherent_gain_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            line_coherent_gain(0.0)

    def test_empirical_line_gain(self, rng):
        # A small sine in noise keeps amplitude sqrt(2/pi)*A/sigma through
        # the limiter.
        from repro.dsp.psd import welch
        from repro.signals.sources import SineSource

        sigma, amp = 1.0, 0.15
        n = 500000
        noise = GaussianNoiseSource(sigma).render(n, FS, rng)
        sine = SineSource(1000.0, amp).render(n, FS)
        bits = OneBitDigitizer().digitize(noise + sine, Waveform(np.zeros(n), FS))
        spec = welch(bits, nperseg=5000)
        _, p_line = spec.line_power(1000.0, 20.0)
        measured_amp = np.sqrt(2 * p_line)
        expected_amp = np.sqrt(2 / np.pi) * amp / sigma
        assert measured_amp == pytest.approx(expected_amp, rel=0.05)


class TestCorrectedPsd:
    def test_recovers_bandlimited_shape(self, rng):
        noise = GaussianNoiseSource(1.0).render(400000, FS, rng)
        shaped = lowpass(noise, 1500.0, order=6)
        bits = OneBitDigitizer().digitize(
            shaped, Waveform(np.zeros(len(shaped)), FS)
        )
        spec = corrected_psd(bits, max_lag=500)
        in_band = spec.band_mean_density(100.0, 1000.0)
        out_band = spec.band_mean_density(3000.0, 4500.0)
        assert in_band > 5 * out_band

    def test_total_power_normalized(self, rng):
        noise = GaussianNoiseSource(1.0).render(100000, FS, rng)
        shaped = lowpass(noise, 2000.0)
        bits = OneBitDigitizer().digitize(
            shaped, Waveform(np.zeros(len(shaped)), FS)
        )
        spec = corrected_psd(bits, max_lag=256)
        assert spec.total_power() == pytest.approx(1.0, rel=0.1)

    def test_max_lag_validation(self, rng):
        bits = OneBitDigitizer().digitize(
            GaussianNoiseSource(1.0).render(100, FS, rng),
            Waveform(np.zeros(100), FS),
        )
        with pytest.raises(ConfigurationError):
            corrected_psd(bits, max_lag=1)
        with pytest.raises(ConfigurationError):
            corrected_psd(bits, max_lag=100)
