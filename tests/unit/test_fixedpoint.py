"""Tests for repro.soc.fixedpoint."""

import numpy as np
import pytest

from repro.dsp.psd import welch
from repro.dsp.windows import get_window
from repro.errors import ConfigurationError
from repro.signals.sources import GaussianNoiseSource, SineSource
from repro.signals.waveform import Waveform
from repro.soc.fixedpoint import FixedPointSpec, fixed_point_welch, quantize_window

FS = 10000.0


def bitstream(n=100000, seed=0):
    rng = np.random.default_rng(seed)
    noise = GaussianNoiseSource(1.0).render(n, FS, rng)
    ref = SineSource(1000.0, 0.2).render(n, FS)
    return Waveform(np.where(noise.samples - ref.samples >= 0, 1.0, -1.0), FS)


class TestQuantizeWindow:
    def test_16bit_close_to_float(self):
        w = get_window("hann", 1024)
        q = quantize_window(w, 16)
        assert np.max(np.abs(q - w)) <= 2.0**-15

    def test_values_representable(self):
        q = quantize_window(get_window("hann", 256), 8)
        assert np.allclose(q * 128, np.round(q * 128))

    def test_rejects_tiny_bits(self):
        with pytest.raises(ConfigurationError):
            quantize_window(get_window("hann", 16), 1)


class TestSpec:
    def test_defaults(self):
        spec = FixedPointSpec()
        assert spec.window_bits == 16
        assert spec.accumulator_bits == 32

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FixedPointSpec(window_bits=1)
        with pytest.raises(ConfigurationError):
            FixedPointSpec(accumulator_bits=4)


class TestFixedPointWelch:
    def test_matches_float_at_wide_words(self):
        bits = bitstream()
        float_spec = welch(bits, nperseg=4096)
        fixed_spec = fixed_point_welch(
            bits, 4096, FixedPointSpec(window_bits=24, accumulator_bits=48)
        )
        band_f = float_spec.band_power(100.0, 4000.0)
        band_q = fixed_spec.band_power(100.0, 4000.0)
        assert band_q == pytest.approx(band_f, rel=1e-3)

    def test_8bit_window_still_close(self):
        bits = bitstream()
        float_spec = welch(bits, nperseg=4096)
        fixed_spec = fixed_point_welch(
            bits, 4096, FixedPointSpec(window_bits=8, accumulator_bits=32)
        )
        ratio = fixed_spec.band_power(100.0, 4000.0) / float_spec.band_power(
            100.0, 4000.0
        )
        assert ratio == pytest.approx(1.0, rel=0.02)

    def test_line_detectable(self):
        bits = bitstream()
        spec = fixed_point_welch(bits, 4096)
        f, p = spec.line_power(1000.0, 20.0)
        assert abs(f - 1000.0) < 5.0
        assert p > 0

    def test_psd_nonnegative(self):
        spec = fixed_point_welch(bitstream(), 2048)
        assert np.all(spec.psd >= 0)

    def test_validation(self):
        bits = bitstream(n=1000)
        with pytest.raises(ConfigurationError):
            fixed_point_welch(bits, 4)
        with pytest.raises(ConfigurationError):
            fixed_point_welch(bits, 4096)
        with pytest.raises(ConfigurationError):
            fixed_point_welch(bits, 512, overlap=1.0)
