"""Tests for repro.dsp.autocorr."""

import numpy as np
import pytest

from repro.dsp.autocorr import autocorrelation, normalized_autocorrelation
from repro.errors import ConfigurationError
from repro.signals.sources import GaussianNoiseSource, SineSource
from repro.signals.waveform import Waveform

FS = 10000.0


class TestAutocorrelation:
    def test_lag0_is_variance(self, rng):
        w = GaussianNoiseSource(2.0).render(50000, FS, rng)
        r = autocorrelation(w, 10)
        assert r[0] == pytest.approx(4.0, rel=0.05)

    def test_white_noise_decorrelates(self, rng):
        w = GaussianNoiseSource(1.0).render(100000, FS, rng)
        rho = normalized_autocorrelation(w, 20)
        assert np.all(np.abs(rho[1:]) < 0.05)

    def test_sine_autocorrelation_is_cosine(self):
        w = SineSource(500.0, 1.0).render(100000, FS)
        rho = normalized_autocorrelation(w, 40)
        lags = np.arange(41) / FS
        expected = np.cos(2 * np.pi * 500.0 * lags)
        assert np.allclose(rho, expected, atol=0.01)

    def test_unbiased_rescales(self, rng):
        w = GaussianNoiseSource(1.0).render(1000, FS, rng)
        biased = autocorrelation(w, 500, unbiased=False)
        unbiased = autocorrelation(w, 500, unbiased=True)
        assert unbiased[500] == pytest.approx(biased[500] * 1000 / 500)

    def test_mean_removal_default(self):
        w = Waveform(np.ones(1000) * 5.0, FS)
        r = autocorrelation(w, 5)
        assert np.allclose(r, 0.0, atol=1e-20)

    def test_without_mean_removal(self):
        w = Waveform(np.ones(1000) * 2.0, FS)
        r = autocorrelation(w, 3, remove_mean=False)
        assert r[0] == pytest.approx(4.0)

    def test_max_lag_bounds(self, white_noise):
        with pytest.raises(ConfigurationError):
            autocorrelation(white_noise, len(white_noise))

    def test_accepts_raw_array(self, rng):
        r = autocorrelation(rng.normal(size=1000), 5)
        assert r.shape == (6,)


class TestNormalized:
    def test_rho0_is_one(self, white_noise):
        rho = normalized_autocorrelation(white_noise, 10)
        assert rho[0] == pytest.approx(1.0)

    def test_zero_power_raises(self):
        w = Waveform(np.zeros(100), FS)
        with pytest.raises(ConfigurationError):
            normalized_autocorrelation(w, 5)
