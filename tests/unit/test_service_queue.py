"""Tests for repro.service.queue: admission control and job lifecycle."""

import pytest

from repro.errors import ConfigurationError
from repro.service.protocol import JobSpec, PRIORITIES
from repro.service.queue import ADMITTED, DUPLICATE, REJECTED, JobQueue


class FakeClock:
    """A manually-advanced monotonic clock for deadline tests."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def spec(kind="measure", deadline_s=None, **params):
    return JobSpec(kind=kind, params=params, deadline_s=deadline_s)


class TestAdmission:
    def test_submit_claim_finish_lifecycle(self):
        queue = JobQueue(clock=FakeClock())
        verdict, job = queue.submit(spec(seed=1))
        assert verdict == ADMITTED
        assert job.state == "queued"
        claimed = queue.claim(timeout_s=0.0)
        assert claimed is job
        assert job.state == "running"
        queue.finish(job, "ok", result={"nf_db": 6.0})
        assert job.done
        assert queue.get(job.key).result == {"nf_db": 6.0}

    def test_duplicate_attaches_to_live_job(self):
        queue = JobQueue(clock=FakeClock())
        _, first = queue.submit(spec(seed=2))
        verdict, second = queue.submit(spec(seed=2))
        assert verdict == DUPLICATE
        assert second is first
        assert queue.n_duplicates == 1
        # The deadline is excluded from the idempotency key: the same
        # work under a different budget dedups onto the same job.
        verdict, third = queue.submit(spec(seed=2, deadline_s=5.0))
        assert verdict == DUPLICATE
        assert third is first

    def test_completed_key_resubmits_as_fresh_job(self):
        queue = JobQueue(clock=FakeClock())
        _, job = queue.submit(spec(seed=3))
        queue.claim(timeout_s=0.0)
        queue.finish(job, "failed", error="boom")
        verdict, fresh = queue.submit(spec(seed=3))
        assert verdict == ADMITTED
        assert fresh is not job

    def test_backpressure_sheds_beyond_max_depth(self):
        queue = JobQueue(max_depth=2, clock=FakeClock())
        assert queue.submit(spec(seed=10))[0] == ADMITTED
        assert queue.submit(spec(seed=11))[0] == ADMITTED
        verdict, job = queue.submit(spec(seed=12))
        assert verdict == REJECTED
        assert job is None
        assert queue.n_shed == 1
        assert queue.stats()["depth"] == 2

    def test_held_job_is_dedupable_but_not_claimable(self):
        queue = JobQueue(clock=FakeClock())
        verdict, job = queue.submit(spec(seed=20), hold=True)
        assert verdict == ADMITTED
        assert queue.claim(timeout_s=0.0) is None  # not claimable yet
        assert queue.submit(spec(seed=20))[0] == DUPLICATE
        assert queue.release(job)
        assert queue.claim(timeout_s=0.0) is job

    def test_release_during_drain_drops_the_job(self):
        queue = JobQueue(clock=FakeClock())
        _, job = queue.submit(spec(seed=21), hold=True)
        queue.drain()
        assert not queue.release(job)
        assert job.state == "dropped"
        assert queue.claim(timeout_s=0.0) is None

    def test_bad_depth_rejected(self):
        with pytest.raises(ConfigurationError):
            JobQueue(max_depth=0)

    def test_bad_completed_retain_rejected(self):
        with pytest.raises(ConfigurationError):
            JobQueue(completed_retain=0)

    def test_completed_jobs_evicted_beyond_retain_bound(self):
        # A long-lived daemon must not hold every result ever computed:
        # only the most recent completed jobs stay resident.
        queue = JobQueue(clock=FakeClock(), completed_retain=2)
        jobs = []
        for seed in range(4):
            _, job = queue.submit(spec(seed=seed))
            queue.claim(timeout_s=0.0)
            queue.finish(job, "ok", result={"seed": seed})
            jobs.append(job)
        assert queue.get(jobs[0].key) is None
        assert queue.get(jobs[1].key) is None
        assert queue.get(jobs[2].key) is jobs[2]
        assert queue.get(jobs[3].key) is jobs[3]

    def test_eviction_spares_live_readmission_of_old_key(self):
        # A completed key's re-admission is a *new* live job; the stale
        # retention entry for the old completion must not evict it.
        queue = JobQueue(clock=FakeClock(), completed_retain=1)
        _, first = queue.submit(spec(seed=1))
        queue.claim(timeout_s=0.0)
        queue.finish(first, "failed", error="boom")
        verdict, again = queue.submit(spec(seed=1))  # re-admit same key
        assert verdict == ADMITTED
        _, other = queue.submit(spec(seed=2))
        # `other` completing pushes retention past the bound; the
        # oldest entry is `first`'s key, now held by the live `again`.
        queue.finish(other, "ok")
        assert queue.get(again.key) is again
        assert again.state == "queued"
        assert queue.get(other.key) is other

    def test_bad_terminal_state_rejected(self):
        queue = JobQueue(clock=FakeClock())
        _, job = queue.submit(spec(seed=13))
        queue.claim(timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            queue.finish(job, "exploded")


class TestPriority:
    def test_claim_order_is_priority_then_fifo(self):
        queue = JobQueue(clock=FakeClock())
        _, lot = queue.submit(spec(kind="lot", seed=1))
        _, retest = queue.submit(spec(kind="retest", seed=1))
        _, probe_a = queue.submit(spec(kind="measure", seed=1))
        _, probe_b = queue.submit(spec(kind="measure", seed=2))
        order = [queue.claim(timeout_s=0.0) for _ in range(4)]
        assert order == [probe_a, probe_b, retest, lot]
        assert [PRIORITIES[j.spec.kind] for j in order] == [0, 0, 1, 2]

    def test_claim_nowait_preempts_only_higher_priority(self):
        queue = JobQueue(clock=FakeClock())
        _, lot = queue.submit(spec(kind="lot", seed=1))
        running = queue.claim(timeout_s=0.0)
        assert running is lot
        # Nothing interactive queued: no preemption.
        assert queue.claim_nowait(max_priority=lot.priority - 1) is None
        _, probe = queue.submit(spec(kind="measure", seed=1))
        _, other_lot = queue.submit(spec(kind="lot", seed=2))
        inner = queue.claim_nowait(max_priority=lot.priority - 1)
        assert inner is probe  # the queued lot does NOT preempt a lot
        assert other_lot.state == "queued"

    def test_requeue_restores_queued_state(self):
        queue = JobQueue(clock=FakeClock())
        _, job = queue.submit(spec(seed=5))
        queue.claim(timeout_s=0.0)
        queue.requeue(job)
        assert job.state == "queued"
        assert queue.claim(timeout_s=0.0) is job

    def test_claim_timeout_returns_none(self):
        queue = JobQueue()
        assert queue.claim(timeout_s=0.01) is None


class TestDeadline:
    def test_queued_job_expires_without_running(self):
        clock = FakeClock()
        queue = JobQueue(clock=clock)
        _, stale = queue.submit(spec(seed=1, deadline_s=5.0))
        _, fresh = queue.submit(spec(seed=2))
        clock.advance(10.0)
        claimed = queue.claim(timeout_s=0.0)
        assert claimed is fresh
        assert stale.state == "deadline"
        assert "expired" in stale.error
        assert stale.checks == 0  # it never ran a checkpoint

    def test_remaining_budget_accounting(self):
        clock = FakeClock()
        queue = JobQueue(clock=clock)
        _, job = queue.submit(spec(seed=3, deadline_s=30.0))
        clock.advance(12.0)
        assert job.remaining_s(clock()) == pytest.approx(18.0)
        assert not job.expired(clock())
        clock.advance(18.0)
        assert job.expired(clock())

    def test_budgetless_job_never_expires(self):
        clock = FakeClock()
        queue = JobQueue(clock=clock)
        _, job = queue.submit(spec(seed=4))
        clock.advance(1e9)
        assert job.remaining_s(clock()) is None
        assert not job.expired(clock())

    def test_claim_nowait_fails_expired_job_in_place(self):
        clock = FakeClock()
        queue = JobQueue(clock=clock)
        _, probe = queue.submit(spec(seed=5, deadline_s=1.0))
        clock.advance(2.0)
        assert queue.claim_nowait(max_priority=0) is None
        assert probe.state == "deadline"

    def test_on_expire_fires_for_queue_level_expiry_only(self):
        clock = FakeClock()
        expired = []
        queue = JobQueue(clock=clock, on_expire=expired.append)
        _, stale = queue.submit(spec(seed=6, deadline_s=1.0))
        _, ran = queue.submit(spec(seed=7))
        clock.advance(5.0)
        claimed = queue.claim(timeout_s=0.0)
        assert claimed is ran
        assert expired == [stale]
        # A job the executor finishes normally never fires the hook.
        queue.finish(ran, "ok")
        assert expired == [stale]


class TestDrain:
    def test_drain_drops_queued_and_stops_admission(self):
        queue = JobQueue(clock=FakeClock())
        _, running = queue.submit(spec(kind="lot", seed=1))
        queue.claim(timeout_s=0.0)
        _, queued = queue.submit(spec(seed=2))
        dropped = queue.drain()
        assert dropped == [queued]
        assert queued.state == "dropped"
        assert running.state == "running"  # in-flight is the executor's
        assert queue.submit(spec(seed=3))[0] == REJECTED
        assert queue.draining
        assert queue.stats()["draining"]

    def test_finish_of_queued_job_removes_it_from_pending(self):
        # Regression: a job failed while still queued (journal append
        # error) must not be claimable afterwards.
        queue = JobQueue(clock=FakeClock())
        _, job = queue.submit(spec(seed=6))
        queue.finish(job, "dropped", error="journal write failed")
        assert queue.claim(timeout_s=0.0) is None
        assert queue.stats()["depth"] == 0

    def test_describe_is_json_ready(self):
        queue = JobQueue(clock=FakeClock())
        _, job = queue.submit(spec(kind="retest", seed=7, deadline_s=9.0))
        view = job.describe()
        assert view["kind"] == "retest"
        assert view["state"] == "queued"
        assert view["priority"] == PRIORITIES["retest"]
        assert view["deadline_s"] == 9.0
        assert view["replayed"] is False
