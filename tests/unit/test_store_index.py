"""Tests for repro.store.index: the persistent append-only index."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.store.index import (
    OP_ADD,
    OP_REMOVE,
    RECORD_DTYPE,
    PersistentIndex,
    _checksums,
    _key_to_words,
    _words_to_key,
    make_record,
)
from repro.store.keys import KINDS
from repro.store.locks import LockTimeout, file_lock

KEY_A = "ab" * 32
KEY_B = "cd" * 32
KEY_C = "0f" * 32


def _index(tmp_path) -> PersistentIndex:
    index = PersistentIndex(tmp_path / "index")
    index.initialize()
    return index


class TestRecordFormat:
    def test_record_is_64_bytes(self):
        assert RECORD_DTYPE.itemsize == 64

    def test_key_words_round_trip(self):
        words = _key_to_words(KEY_A)
        assert words.shape == (4,)
        assert _words_to_key(words) == KEY_A

    def test_make_record_checksummed(self):
        record = make_record(OP_ADD, "results", KEY_A, 123, 4.5)
        assert record["check"] == _checksums(record)
        assert KINDS[int(record["kind"][0])] == "results"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            make_record(OP_ADD, "junk", KEY_A, 1, 0.0)

    def test_checksum_detects_field_damage(self):
        record = make_record(OP_ADD, "results", KEY_A, 123, 4.5)
        record["nbytes"] = 124
        assert record["check"] != _checksums(record)


class TestAppendReplay:
    def test_empty_index_replays_empty(self, tmp_path):
        index = _index(tmp_path)
        assert index.exists
        assert index.replay() == {}

    def test_add_remove_last_wins(self, tmp_path):
        index = _index(tmp_path)
        index.append(OP_ADD, "results", KEY_A, 100, 1.0)
        index.append(OP_ADD, "records", KEY_A, 200, 2.0)
        index.append(OP_ADD, "results", KEY_B, 300, 3.0)
        index.append(OP_REMOVE, "results", KEY_B, 0, 4.0)
        index.append(OP_ADD, "results", KEY_A, 150, 5.0)  # rewrite
        live = index.replay()
        assert live == {
            ("results", KEY_A): (150, 5.0),
            ("records", KEY_A): (200, 2.0),
        }

    def test_append_many_one_lock(self, tmp_path):
        index = _index(tmp_path)
        index.append_many(
            [
                (OP_ADD, "results", KEY_A, 10, 1.0),
                (OP_ADD, "results", KEY_B, 20, 2.0),
                (OP_ADD, "outcomes", KEY_C, 30, 3.0),
            ]
        )
        assert len(index.replay()) == 3

    def test_append_to_absent_index_is_noop(self, tmp_path):
        index = PersistentIndex(tmp_path / "never")
        index.append(OP_ADD, "results", KEY_A, 1, 0.0)
        assert not index.exists
        assert index.replay() == {}

    def test_total_bytes(self, tmp_path):
        index = _index(tmp_path)
        index.append(OP_ADD, "results", KEY_A, 100, 1.0)
        index.append(OP_ADD, "results", KEY_B, 250, 2.0)
        assert index.total_bytes() == 350


class TestCrashRecovery:
    def test_torn_tail_skipped_on_replay(self, tmp_path):
        index = _index(tmp_path)
        index.append(OP_ADD, "results", KEY_A, 100, 1.0)
        segment = index._segments()[-1]
        # A crash mid-append leaves a partial trailing record.
        with open(segment, "ab") as handle:
            handle.write(b"\x01\x00partial")
        assert index.replay() == {("results", KEY_A): (100, 1.0)}
        assert index.stats()["n_skipped"] == 0  # sub-record tail, not a slot

    def test_next_append_repairs_torn_tail(self, tmp_path):
        index = _index(tmp_path)
        index.append(OP_ADD, "results", KEY_A, 100, 1.0)
        segment = index._segments()[-1]
        with open(segment, "ab") as handle:
            handle.write(b"xx")
        index.append(OP_ADD, "results", KEY_B, 200, 2.0)
        # The tail was truncated back to a record boundary first.
        assert (segment.stat().st_size - 16) % RECORD_DTYPE.itemsize == 0
        assert len(index.replay()) == 2

    def test_zero_filled_record_skipped(self, tmp_path):
        index = _index(tmp_path)
        index.append(OP_ADD, "results", KEY_A, 100, 1.0)
        segment = index._segments()[-1]
        with open(segment, "ab") as handle:
            handle.write(b"\x00" * RECORD_DTYPE.itemsize)
        assert index.replay() == {("results", KEY_A): (100, 1.0)}
        assert index.stats()["n_skipped"] == 1

    def test_corrupt_record_skipped_not_fatal(self, tmp_path):
        index = _index(tmp_path)
        index.append(OP_ADD, "results", KEY_A, 100, 1.0)
        index.append(OP_ADD, "results", KEY_B, 200, 2.0)
        segment = index._segments()[-1]
        raw = bytearray(segment.read_bytes())
        raw[16 + 20] ^= 0xFF  # flip a bit inside the first record's key
        segment.write_bytes(bytes(raw))
        assert index.replay() == {("results", KEY_B): (200, 2.0)}

    def test_bad_header_segment_ignored(self, tmp_path):
        index = _index(tmp_path)
        index.append(OP_ADD, "results", KEY_A, 100, 1.0)
        (index.root / "seg-00000009.idx").write_bytes(b"NOTANIDX" + b"\x00" * 8)
        assert index.replay() == {("results", KEY_A): (100, 1.0)}
        assert index.stats()["n_segments"] == 2

    def test_duplicate_adds_replay_idempotently(self, tmp_path):
        # Rotation crash-ordering: checkpoint published, old segment not
        # yet unlinked — every entry appears twice, replay is unchanged.
        index = _index(tmp_path)
        index.append(OP_ADD, "results", KEY_A, 100, 1.0)
        live = index.replay()
        checkpoint = index._checkpoint_records(live)
        index._publish_segment(7, checkpoint)
        assert index.replay() == live


class TestRotation:
    def test_rotate_compacts_to_one_segment(self, tmp_path):
        index = _index(tmp_path)
        for i in range(6):
            key = f"{i:02d}" * 32
            index.append(OP_ADD, "results", key, 100 + i, float(i))
        index.append(OP_REMOVE, "results", "00" * 32, 0, 9.0)
        before = index.replay()
        stats = index.rotate()
        assert stats["n_entries"] == 5
        assert len(index._segments()) == 1
        assert index.replay() == before

    def test_rotate_absent_index_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            PersistentIndex(tmp_path / "never").rotate()

    def test_rebuild_replaces_contents(self, tmp_path):
        index = _index(tmp_path)
        index.append(OP_ADD, "results", KEY_A, 100, 1.0)
        index.rebuild([("records", KEY_B, 200, 2.0)])
        assert index.replay() == {("records", KEY_B): (200, 2.0)}
        assert len(index._segments()) == 1


class TestTornWriteFault:
    def test_injected_torn_append_loses_entry_not_index(self, tmp_path):
        from repro.faults import FaultPlan, inject

        index = _index(tmp_path)
        keys = [f"{i:02d}" * 32 for i in range(10)]
        with inject(FaultPlan(seed=5, index_torn_write=0.5)) as injector:
            for i, key in enumerate(keys):
                index.append(OP_ADD, "results", key, 100, float(i))
        torn = sum(
            1 for r in injector.log if r.site == "index_torn_write"
        )
        assert torn > 0
        live = index.replay()
        # Torn appends lose exactly their own records, nothing else...
        assert len(live) == len(keys) - torn
        # ...and the index stays appendable and self-heals.
        index.append(OP_ADD, "records", KEY_A, 1, 0.0)
        assert ("records", KEY_A) in index.replay()


class TestFileLock:
    def test_lock_excludes_within_process(self, tmp_path):
        path = tmp_path / "lock"
        with file_lock(path):
            with pytest.raises(LockTimeout):
                with file_lock(path, timeout_s=0.05, poll_s=0.01):
                    pass  # pragma: no cover - must not be reached

    def test_lock_releases_on_exit(self, tmp_path):
        path = tmp_path / "lock"
        with file_lock(path):
            pass
        with file_lock(path, timeout_s=0.05):
            pass

    def test_store_lock_fault_delays_not_breaks(self, tmp_path):
        from repro.faults import FaultPlan, inject

        path = tmp_path / "lock"
        acquired = 0
        with inject(FaultPlan(seed=1, store_lock=1.0)) as injector:
            for _ in range(3):
                with file_lock(path):
                    acquired += 1
        assert acquired == 3  # lost the first race, won the retry
        assert sum(1 for r in injector.log if r.site == "store_lock") == 3
