"""Tests for repro.bitstream — the packed 1-bit record model."""

import numpy as np
import pytest

from repro.bitstream import (
    PackedBitstream,
    PackedRecordBatch,
    RecordProvenance,
    is_packed,
    packed_words_required,
)
from repro.errors import ConfigurationError
from repro.signals.waveform import Waveform


def random_record(rng, n):
    return np.where(rng.random(n) > 0.5, 1.0, -1.0)


class TestPackUnpackRoundtrip:
    @pytest.mark.parametrize("n", [1, 7, 8, 9, 15, 16, 17, 1000, 1023, 4096])
    def test_roundtrip_all_tail_lengths(self, rng, n):
        x = random_record(rng, n)
        packed = PackedBitstream.pack(x, 100.0)
        assert packed.n_samples == n
        assert packed.nbytes == packed_words_required(n)
        assert np.array_equal(packed.unpack(), x)

    def test_roundtrip_from_waveform(self, rng):
        wave = Waveform(random_record(rng, 333), 10000.0)
        packed = PackedBitstream.pack(wave)
        back = packed.to_waveform()
        assert back == wave

    def test_waveform_to_packed_roundtrip(self, rng):
        wave = Waveform(random_record(rng, 77), 10000.0)
        packed = wave.to_packed()
        assert isinstance(packed, PackedBitstream)
        assert packed.to_waveform() == wave
        with pytest.raises(ConfigurationError):
            Waveform(rng.normal(size=8), 1.0).to_packed()

    def test_unpack_is_float64_pm1(self, rng):
        packed = PackedBitstream.pack(random_record(rng, 100), 1.0)
        out = packed.unpack()
        assert out.dtype == np.float64
        assert set(np.unique(out)) <= {-1.0, 1.0}

    @pytest.mark.parametrize("dtype", [np.float64, np.float32, np.int8, np.int64])
    def test_pack_accepts_any_sign_dtype(self, rng, dtype):
        x = random_record(rng, 57).astype(dtype)
        packed = PackedBitstream.pack(x, 1.0)
        assert np.array_equal(packed.unpack(), x.astype(np.float64))

    def test_bool_input_rejected(self):
        with pytest.raises(ConfigurationError):
            PackedBitstream.pack(np.ones(8, dtype=bool), 1.0)

    @pytest.mark.parametrize("bad", [0.0, 0.5, 2.0, np.nan])
    def test_non_sign_values_rejected(self, bad):
        x = np.ones(16)
        x[5] = bad
        with pytest.raises(ConfigurationError):
            PackedBitstream.pack(x, 1.0)

    def test_from_bits_matches_threshold(self, rng):
        x = random_record(rng, 41)
        packed = PackedBitstream.from_bits(x > 0, 1.0)
        assert np.array_equal(packed.unpack(), x)

    def test_empty_record(self):
        packed = PackedBitstream.pack(np.empty(0), 1.0)
        assert packed.n_samples == 0
        assert packed.unpack().size == 0


class TestBlockedAccess:
    def test_unpack_range_matches_slices(self, rng):
        n = 1003
        x = random_record(rng, n)
        packed = PackedBitstream.pack(x, 1.0)
        # Windows crossing every kind of word boundary.
        for start, stop in [
            (0, n), (0, 8), (3, 11), (7, 9), (8, 16), (5, 5 + 64),
            (n - 3, n), (0, 1), (512, 777),
        ]:
            assert np.array_equal(
                packed.unpack_range(start, stop), x[start:stop]
            ), (start, stop)

    def test_unpack_range_into_out_buffer(self, rng):
        x = random_record(rng, 100)
        packed = PackedBitstream.pack(x, 1.0)
        out = np.empty(64)
        view = packed.unpack_range(3, 50, out=out)
        assert view.base is out or view is out[:47]
        assert np.array_equal(view, x[3:50])

    def test_unpack_range_validates(self, rng):
        packed = PackedBitstream.pack(random_record(rng, 10), 1.0)
        with pytest.raises(ConfigurationError):
            packed.unpack_range(-1, 5)
        with pytest.raises(ConfigurationError):
            packed.unpack_range(3, 11)
        with pytest.raises(ConfigurationError):
            packed.unpack_range(5, 8, out=np.empty(2))

    @pytest.mark.parametrize("block", [1, 7, 8, 64, 1000, 5000])
    def test_iter_blocks_reassembles(self, rng, block):
        x = random_record(rng, 1001)
        packed = PackedBitstream.pack(x, 1.0)
        assert np.array_equal(
            np.concatenate(list(packed.iter_blocks(block))), x
        )


class TestValidation:
    def test_padding_bits_checked_without_unpack(self):
        # 5 valid samples, but padding bits set in the final word.
        with pytest.raises(ConfigurationError):
            PackedBitstream(np.array([0b10101111], dtype=np.uint8), 5, 1.0)
        # The same word is fine when all 8 bits are valid samples.
        PackedBitstream(np.array([0b10101111], dtype=np.uint8), 8, 1.0)

    def test_word_count_checked(self):
        with pytest.raises(ConfigurationError):
            PackedBitstream(np.zeros(2, dtype=np.uint8), 5, 1.0)

    def test_sample_rate_checked(self):
        with pytest.raises(ConfigurationError):
            PackedBitstream(np.zeros(1, dtype=np.uint8), 8, 0.0)

    def test_immutable(self, rng):
        packed = PackedBitstream.pack(random_record(rng, 16), 1.0)
        with pytest.raises(AttributeError):
            packed.n_samples = 3
        with pytest.raises(ValueError):
            packed.words[0] = 0


class TestProvenance:
    def test_from_rng_captures_spawn_key(self):
        root = np.random.default_rng(2005)
        child = np.random.default_rng(
            root.bit_generator.seed_seq.spawn(3)[2]
        )
        prov = RecordProvenance.from_rng(child, state="hot")
        assert prov.entropy == 2005
        assert prov.spawn_key == (2,)
        assert prov.state == "hot"

    def test_carried_through_pack(self, rng):
        prov = RecordProvenance.from_rng(np.random.default_rng(7))
        packed = PackedBitstream.pack(
            random_record(rng, 9), 1.0, provenance=prov
        )
        assert packed.provenance is prov


class TestPackedRecordBatch:
    def test_roundtrip_and_getitem(self, rng):
        records = np.where(rng.random((5, 37)) > 0.5, 1.0, -1.0)
        batch = PackedRecordBatch.pack(records, 10.0)
        assert batch.n_records == 5
        assert batch.shape == (5, 37)
        assert np.array_equal(batch.unpack(), records)
        for i in range(5):
            assert np.array_equal(batch[i].unpack(), records[i])
            assert batch[i].sample_rate == 10.0

    def test_from_records_stacks(self, rng):
        singles = [
            PackedBitstream.pack(random_record(rng, 21), 5.0)
            for _ in range(3)
        ]
        batch = PackedRecordBatch.from_records(singles)
        for i, single in enumerate(singles):
            assert batch[i] == single

    def test_from_records_checks_compatibility(self, rng):
        a = PackedBitstream.pack(random_record(rng, 8), 5.0)
        b = PackedBitstream.pack(random_record(rng, 9), 5.0)
        c = PackedBitstream.pack(random_record(rng, 8), 6.0)
        with pytest.raises(ConfigurationError):
            PackedRecordBatch.from_records([a, b])
        with pytest.raises(ConfigurationError):
            PackedRecordBatch.from_records([a, c])
        with pytest.raises(ConfigurationError):
            PackedRecordBatch.from_records([])

    def test_batch_validation_names_bad_rows(self):
        words = np.zeros((3, 1), dtype=np.uint8)
        words[1, 0] = 0b00000111  # padding bits set for n_samples=5
        with pytest.raises(ConfigurationError, match=r"\[1\]"):
            PackedRecordBatch(words, 5, 1.0)

    def test_nbytes_is_64x_below_float(self, rng):
        records = np.where(rng.random((4, 8000)) > 0.5, 1.0, -1.0)
        batch = PackedRecordBatch.pack(records, 1.0)
        assert records.nbytes / batch.nbytes == 64.0

    def test_batch_owns_its_words(self):
        words = np.zeros((2, 2), dtype=np.uint8)
        batch = PackedRecordBatch(words, 11, 1.0)
        words[0, -1] |= 0x1F  # corrupt the caller's buffer afterwards
        batch.validate()  # the batch holds its own frozen copy
        assert batch.words[0, -1] == 0
        with pytest.raises(ValueError):
            batch.words[0, 0] = 1

    def test_provenance_list_length_checked(self, rng):
        records = np.where(rng.random((2, 8)) > 0.5, 1.0, -1.0)
        with pytest.raises(ConfigurationError):
            PackedRecordBatch.pack(records, 1.0, provenance=[None])


class TestPickle:
    def test_record_roundtrip(self, rng):
        import pickle

        prov = RecordProvenance(entropy=5, spawn_key=(1,), state="hot")
        packed = PackedBitstream.pack(
            random_record(rng, 1001), 1e4, provenance=prov
        )
        back = pickle.loads(pickle.dumps(packed))
        assert back == packed
        assert back.provenance == prov
        assert not back.words.flags.writeable

    def test_batch_roundtrip(self, rng):
        import pickle

        batch = PackedRecordBatch.pack(
            np.where(rng.random((3, 37)) > 0.5, 1.0, -1.0), 5.0
        )
        back = pickle.loads(pickle.dumps(batch))
        assert np.array_equal(back.words, batch.words)
        assert back.n_samples == batch.n_samples
        assert back.sample_rate == batch.sample_rate
        back.validate()


def test_is_packed_helper(rng):
    packed = PackedBitstream.pack(random_record(rng, 8), 1.0)
    assert is_packed(packed)
    assert is_packed(PackedRecordBatch.from_records([packed]))
    assert not is_packed(np.ones(8))
