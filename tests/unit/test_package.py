"""Package-surface tests: exports, error hierarchy, version."""

import pytest

import repro
from repro.errors import (
    ConfigurationError,
    MeasurementError,
    ReproError,
    ResourceError,
)


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolvable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_key_classes_exported(self):
        assert repro.Waveform is not None
        assert repro.OneBitDigitizer is not None
        assert repro.OneBitNoiseFigureBIST is not None
        assert repro.ReferenceNormalizer is not None

    def test_constants_exported(self):
        assert repro.T0_KELVIN == 290.0
        assert repro.BOLTZMANN == pytest.approx(1.380649e-23)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (ConfigurationError, MeasurementError, ResourceError):
            assert issubclass(exc, ReproError)

    def test_repro_error_is_exception(self):
        assert issubclass(ReproError, Exception)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise MeasurementError("x")


class TestSubpackageImports:
    def test_all_subpackages_import(self):
        import repro.analog
        import repro.cli
        import repro.core
        import repro.digitizer
        import repro.dsp
        import repro.experiments
        import repro.instruments
        import repro.reporting
        import repro.signals
        import repro.soc

    def test_subpackage_all_resolvable(self):
        import repro.analog as analog
        import repro.core as core
        import repro.digitizer as digitizer
        import repro.dsp as dsp
        import repro.signals as signals
        import repro.soc as soc

        for module in (analog, core, digitizer, dsp, signals, soc):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"
