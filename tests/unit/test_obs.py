"""Tests for repro.obs: registry, tracing, exposition, inertness.

The contract under test is PR 10's tentpole: a process-global metrics
registry and span tracer that are provably inert when disabled (no-op
hooks, zero retained allocations, bit-identical measurement results)
and cheap when enabled (lock-scoped dict updates, bounded ring), with
worker-side registries merging back into the parent so process-backend
totals equal serial totals.
"""

import gc
import json
import logging
import threading
import tracemalloc

import pytest

from repro import obs
from repro.engine import MeasurementScheduler, MeasurementTask
from repro.experiments.matlab_sim import MatlabSimConfig, MatlabSimulation
from repro.obs.export import render_prometheus
from repro.obs.logs import JsonLogFormatter, setup_logging
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    diff_snapshots,
    merge_snapshots,
)
from repro.obs.trace import TraceBuffer


@pytest.fixture(autouse=True)
def _obs_sandbox():
    """Every test starts disabled and leaves obs as it found it."""
    was_enabled = obs.enabled()
    obs.disable()
    yield
    obs.disable()
    if was_enabled:
        obs.enable()


def small_sim(n_samples=30_000, nperseg=3000):
    return MatlabSimulation(
        MatlabSimConfig(n_samples=n_samples, nperseg=nperseg)
    )


def _tasks(n=3):
    sim = small_sim()
    return [
        MeasurementTask(sim, sim.make_estimator(), rng)
        for rng in range(1, n + 1)
    ]


def _counting_call(arg):
    """Worker-style payload for the ``_obs_task`` merge test."""
    obs.inc("unit.calls")
    obs.observe("unit.seconds", 0.001 * arg)
    return arg * 2


def _counter(snap, name):
    return sum(
        c["value"] for c in snap["counters"] if c["name"] == name
    )


class TestRegistry:
    def test_counter_gauge_histogram_snapshot(self):
        reg = MetricsRegistry()
        reg.inc("jobs", tags={"status": "ok"})
        reg.inc("jobs", 2.0, tags={"status": "ok"})
        reg.inc("jobs", tags={"status": "failed"})
        reg.gauge("depth", 7.0)
        reg.observe("latency", 0.003)
        reg.observe("latency", 100.0)  # past the last bucket -> +Inf
        snap = reg.snapshot()
        assert snap["bucket_bounds"] == list(DEFAULT_BUCKETS)
        by_tag = {
            tuple(sorted(c["tags"].items())): c["value"]
            for c in snap["counters"]
        }
        assert by_tag[(("status", "ok"),)] == 3.0
        assert by_tag[(("status", "failed"),)] == 1.0
        assert snap["gauges"][0]["value"] == 7.0
        (hist,) = snap["histograms"]
        assert hist["count"] == 2
        assert hist["sum"] == pytest.approx(100.003)
        assert sum(hist["buckets"]) == 2
        assert hist["buckets"][-1] == 1  # the +Inf overflow cell

    def test_thread_safety_totals(self):
        reg = MetricsRegistry()
        n_threads, n_iter = 8, 1000

        def hammer():
            for _ in range(n_iter):
                reg.inc("hits")
                reg.observe("lat", 0.001)

        threads = [
            threading.Thread(target=hammer) for _ in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = reg.snapshot()
        assert _counter(snap, "hits") == n_threads * n_iter
        assert snap["histograms"][0]["count"] == n_threads * n_iter

    def test_merge_adds_counters_and_cells(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg, n in ((a, 2), (b, 3)):
            for _ in range(n):
                reg.inc("hits")
                reg.observe("lat", 0.01)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert _counter(snap, "hits") == 5
        assert snap["histograms"][0]["count"] == 5

    def test_merge_rejects_foreign_buckets(self):
        reg = MetricsRegistry()
        foreign = MetricsRegistry(buckets=(1.0, 2.0))
        foreign.observe("lat", 0.5)
        with pytest.raises(ValueError):
            reg.merge(foreign.snapshot())

    def test_merge_snapshots_helper(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("x")
        b.inc("x", 4.0)
        merged = merge_snapshots(a.snapshot(), b.snapshot(), None)
        assert _counter(merged, "x") == 5

    def test_snapshot_and_reset_drains(self):
        reg = MetricsRegistry()
        reg.inc("x")
        snap = reg.snapshot_and_reset()
        assert _counter(snap, "x") == 1
        assert reg.snapshot()["counters"] == []

    def test_diff_snapshots_drops_zero_deltas(self):
        reg = MetricsRegistry()
        reg.inc("before_only")
        reg.observe("lat", 0.01)
        before = reg.snapshot()
        reg.inc("fresh", 2.0)
        reg.observe("lat", 0.02)
        reg.gauge("depth", 3.0)
        after = reg.snapshot()
        delta = diff_snapshots(before, after)
        names = {c["name"] for c in delta["counters"]}
        assert names == {"fresh"}  # unchanged counters drop out
        assert delta["histograms"][0]["count"] == 1
        assert delta["gauges"][0]["value"] == 3.0
        assert diff_snapshots(None, after) == after


class TestDisabledPath:
    def test_hooks_are_noops(self):
        assert not obs.enabled()
        obs.inc("x")
        obs.gauge("g", 1.0)
        obs.observe("h", 0.5)
        obs.trace_event("e", a=1)
        with obs.timed("t"):
            pass
        with obs.trace_span("s", b=2):
            assert obs.current_span_id() is None
        assert obs.registry() is None
        assert obs.snapshot() is None
        assert obs.snapshot_and_reset() is None
        assert obs.trace_events() == []

    def test_disabled_context_managers_are_shared_singletons(self):
        assert obs.timed("a") is obs.timed("b")
        assert obs.trace_span("a") is obs.timed("c")

    def test_disabled_hooks_retain_zero_allocations(self):
        def burst(n):
            for _ in range(n):
                obs.inc("x")
                obs.gauge("g", 1.0)
                obs.observe("h", 0.5, tags=None)
                obs.trace_event("e")
                with obs.timed("t"):
                    pass

        burst(100)  # warm any lazy interning
        tracemalloc.start()
        gc.collect()
        before = tracemalloc.get_traced_memory()[0]
        burst(5000)
        gc.collect()
        after = tracemalloc.get_traced_memory()[0]
        tracemalloc.stop()
        # Nothing the disabled hooks touch may be *retained*; allow a
        # few bytes of interpreter noise, nothing proportional to the
        # 5000 iterations.
        assert after - before <= 512

    def test_enable_disable_round_trip(self):
        obs.enable()
        obs.inc("x")
        assert _counter(obs.snapshot(), "x") == 1
        obs.disable()
        obs.inc("x")
        assert obs.snapshot() is None
        obs.enable()
        assert obs.snapshot()["counters"] == []  # state was dropped


class TestTracing:
    def test_ring_wraparound_keeps_newest(self):
        buf = TraceBuffer(capacity=8)
        for i in range(20):
            buf.record(f"e{i}", "event")
        events = buf.events()
        assert len(events) == 8
        assert [e["name"] for e in events] == [
            f"e{i}" for i in range(12, 20)
        ]
        desc = buf.describe()
        assert desc["recorded"] == 20
        assert desc["dropped"] == 12
        limited = buf.describe(limit=3)
        assert [e["name"] for e in limited["events"]] == [
            "e17", "e18", "e19",
        ]

    def test_spans_nest_and_tag_errors(self):
        obs.enable()
        with obs.trace_span("outer") as outer_id:
            assert obs.current_span_id() == outer_id
            with obs.trace_span("inner") as inner_id:
                assert obs.current_span_id() == inner_id
                obs.trace_event("mid", detail="x")
            assert obs.current_span_id() == outer_id
        assert obs.current_span_id() is None
        with pytest.raises(RuntimeError):
            with obs.trace_span("boom"):
                raise RuntimeError("no")
        events = obs.trace_events()
        by = {(e["name"], e["phase"]): e for e in events}
        assert by[("mid", "event")]["span"] == inner_id
        assert by[("boom", "end")]["tags"] == {"error": "RuntimeError"}
        # Monotonic ordering within the ring.
        ts = [e["t"] for e in events]
        assert ts == sorted(ts)


class TestPrometheusExport:
    def test_render_counters_gauges_histograms(self):
        reg = MetricsRegistry(buckets=(0.1, 1.0))
        reg.inc("store.puts", 3.0, tags={"kind": "results"})
        reg.gauge("service.queue_depth", 2.0)
        reg.observe("op.seconds", 0.05)
        reg.observe("op.seconds", 0.5)
        reg.observe("op.seconds", 5.0)
        text = render_prometheus(reg.snapshot())
        assert "# TYPE repro_store_puts_total counter" in text
        assert 'repro_store_puts_total{kind="results"} 3' in text
        assert "repro_service_queue_depth 2" in text
        assert 'repro_op_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_op_seconds_bucket{le="1.0"} 2' in text
        assert 'repro_op_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_op_seconds_count 3" in text

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.inc("faults", tags={"site": 'a"b\\c\nd'})
        text = render_prometheus(reg.snapshot())
        assert '{site="a\\"b\\\\c\\nd"}' in text

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus(MetricsRegistry().snapshot()) == ""


class TestInertness:
    """Obs on/off must not change measurement results."""

    def test_bit_identity_obs_on_off(self):
        with MeasurementScheduler(backend="serial") as sched:
            baseline = [
                r.noise_figure_db for r in sched.run(_tasks())
            ]
        obs.enable()
        with MeasurementScheduler(backend="serial") as sched:
            observed = [
                r.noise_figure_db for r in sched.run(_tasks())
            ]
        assert observed == baseline  # bit-identical, not approx
        # ...and the run actually produced telemetry (the planner
        # batches same-shape tasks, so the device-batch counter fires).
        assert _counter(obs.snapshot(), "engine.devices_acquired") == 3


class TestWorkerMerge:
    def test_obs_task_merge_equals_direct_totals(self):
        """The worker wrap + merge path equals one registry doing the
        same operations directly — the worker-merge == serial-totals
        contract at the primitive level."""
        from repro.engine.scheduler import _obs_task

        obs.enable()
        acc = MetricsRegistry()
        results = []
        for arg in (1, 2, 3, 4):
            value, snap = _obs_task((_counting_call, arg))
            results.append(value)
            acc.merge(snap)
        merged = acc.snapshot()
        direct = MetricsRegistry()
        for arg in (1, 2, 3, 4):
            direct.inc("unit.calls")
            direct.observe("unit.seconds", 0.001 * arg)
        expected = direct.snapshot()
        assert results == [2, 4, 6, 8]
        assert _counter(merged, "unit.calls") == _counter(
            expected, "unit.calls"
        )

        def hist(snap, name):
            (h,) = [
                h for h in snap["histograms"] if h["name"] == name
            ]
            return h

        assert (
            hist(merged, "unit.seconds")["buckets"]
            == hist(expected, "unit.seconds")["buckets"]
        )

    def test_process_run_merges_worker_registries(self):
        obs.enable()
        with MeasurementScheduler(backend="serial") as sched:
            serial_results = sched.run(_tasks())
        obs.reset()
        with MeasurementScheduler(
            backend="process", max_workers=2
        ) as sched:
            proc_results = sched.run(_tasks())
        proc_snap = obs.snapshot_and_reset()
        assert [r.noise_figure_db for r in proc_results] == [
            r.noise_figure_db for r in serial_results
        ]
        # Worker-side counters came home exactly once: one hot and one
        # cold PSD row per device, published back via shared memory.
        assert _counter(proc_snap, "worker.welch_rows") == 6
        assert (
            _counter(proc_snap, "shm.rows_published")
            + _counter(proc_snap, "shm.rows_pickled")
        ) == 6
        # Every dispatch carried a worker-side task timing.
        (task_hist,) = [
            h
            for h in proc_snap["histograms"]
            if h["name"] == "worker.task_seconds"
        ]
        assert task_hist["count"] == _counter(
            proc_snap, "scheduler.dispatches"
        )

    def test_run_report_embeds_obs_delta(self):
        obs.enable()
        with MeasurementScheduler(backend="serial") as sched:
            report = sched.run_report(_tasks())
        described = report.describe()
        assert described["obs"] is not None
        assert (
            _counter(described["obs"], "engine.devices_acquired") == 3
        )
        assert described["started_at"] <= described["finished_at"]
        assert described["wall_s"] >= 0.0


class TestLogging:
    def test_json_formatter_carries_span_and_job(self):
        obs.enable()
        formatter = JsonLogFormatter()
        with obs.trace_span("job.execute", key="abc") as span_id:
            record = logging.LogRecord(
                "repro.test", logging.WARNING, __file__, 1,
                "journal append failed: %s", ("disk",), None,
            )
            record.job = "abc123"
            line = formatter.format(record)
        payload = json.loads(line)
        assert payload["message"] == "journal append failed: disk"
        assert payload["span"] == span_id
        assert payload["job"] == "abc123"
        assert payload["level"] == "WARNING"

    def test_setup_logging_replaces_handlers(self):
        root = logging.getLogger()
        saved_handlers = root.handlers[:]
        saved_level = root.level
        try:
            h1 = setup_logging(level="info", as_json=False)
            h2 = setup_logging(level="debug", as_json=True)
            assert root.handlers == [h2]
            assert isinstance(h2.formatter, JsonLogFormatter)
            assert root.level == logging.DEBUG
            assert h1 not in root.handlers
            with pytest.raises(ValueError):
                setup_logging(level="chatty")
        finally:
            root.handlers[:] = saved_handlers
            root.setLevel(saved_level)

    def test_env_auto_enable(self):
        import os
        import pathlib
        import subprocess
        import sys

        src = str(
            pathlib.Path(__file__).resolve().parents[2] / "src"
        )
        code = (
            "from repro import obs; import sys;"
            "sys.exit(0 if obs.enabled() else 1)"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env={**os.environ, "PYTHONPATH": src, "REPRO_OBS": "1"},
        )
        assert proc.returncode == 0
