"""Tests for repro.digitizer.comparator."""

import numpy as np
import pytest

from repro.digitizer.comparator import Comparator
from repro.errors import ConfigurationError
from repro.signals.waveform import Waveform


def wf(values, fs=1000.0):
    return Waveform(values, fs)


class TestIdealComparator:
    def test_sign_of_difference(self):
        comp = Comparator()
        out = comp.compare(wf([1.0, -1.0, 0.5]), wf([0.0, 0.0, 1.0]))
        assert np.allclose(out.samples, [1.0, -1.0, -1.0])

    def test_output_is_pm_one_only(self, rng):
        comp = Comparator()
        sig = wf(rng.normal(size=1000))
        ref = wf(rng.normal(size=1000))
        out = comp.compare(sig, ref)
        assert set(np.unique(out.samples)) <= {-1.0, 1.0}

    def test_tie_resolves_positive(self):
        out = Comparator().compare(wf([0.5]), wf([0.5]))
        assert out.samples[0] == 1.0

    def test_preserves_sample_rate(self):
        out = Comparator().compare(wf([1.0], 44100.0), wf([0.0], 44100.0))
        assert out.sample_rate == 44100.0

    def test_rate_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            Comparator().compare(wf([1.0], 100.0), wf([0.0], 200.0))

    def test_length_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            Comparator().compare(wf([1.0, 2.0]), wf([0.0]))


class TestOffset:
    def test_positive_offset_biases_high(self):
        comp = Comparator(offset_v=0.2)
        out = comp.compare(wf([-0.1]), wf([0.0]))
        assert out.samples[0] == 1.0

    def test_offset_shifts_duty_cycle(self, rng):
        sig = wf(rng.normal(0.0, 1.0, size=50000))
        ref = wf(np.zeros(50000))
        balanced = Comparator().compare(sig, ref)
        biased = Comparator(offset_v=0.5).compare(sig, ref)
        assert np.mean(biased.samples) > np.mean(balanced.samples) + 0.2


class TestInputNoise:
    def test_noise_randomizes_marginal_decisions(self):
        comp = Comparator(input_noise_rms=1.0)
        sig = wf(np.zeros(10000))
        ref = wf(np.full(10000, 0.01))
        out = comp.compare(sig, ref, rng=3)
        # Without noise all decisions would be -1; with 1 V RMS noise the
        # split is nearly 50/50.
        assert abs(np.mean(out.samples)) < 0.05

    def test_noise_reproducible_with_seed(self, rng):
        comp = Comparator(input_noise_rms=0.5)
        sig = wf(np.zeros(100))
        ref = wf(np.zeros(100))
        a = comp.compare(sig, ref, rng=9)
        b = comp.compare(sig, ref, rng=9)
        assert a == b

    def test_rejects_negative_noise(self):
        with pytest.raises(ConfigurationError):
            Comparator(input_noise_rms=-0.1)


class TestHysteresis:
    def test_holds_state_within_window(self):
        comp = Comparator(hysteresis_v=1.0)
        # Start high, small dips below zero stay high.
        sig = wf([1.0, -0.2, -0.4, -0.6, 1.0])
        ref = wf(np.zeros(5))
        out = comp.compare(sig, ref)
        assert np.allclose(out.samples, [1.0, 1.0, 1.0, -1.0, 1.0])

    def test_switches_beyond_half_window(self):
        comp = Comparator(hysteresis_v=0.4)
        sig = wf([1.0, -0.3, 0.3, -0.3])
        ref = wf(np.zeros(4))
        out = comp.compare(sig, ref)
        assert np.allclose(out.samples, [1.0, -1.0, 1.0, -1.0])

    def test_zero_hysteresis_matches_vectorized_path(self, rng):
        sig = wf(rng.normal(size=500))
        ref = wf(np.zeros(500))
        fast = Comparator().compare(sig, ref)
        slow = Comparator(hysteresis_v=0.0).compare(sig, ref)
        assert fast == slow

    def test_rejects_negative_hysteresis(self):
        with pytest.raises(ConfigurationError):
            Comparator(hysteresis_v=-0.1)
