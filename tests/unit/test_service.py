"""Tests for the measurement service: protocol + client/server round trip.

The round-trip tests run a real :class:`MeasurementService` in a
background thread (serial backend, fsync off) and talk to it through
:class:`ServiceClient` over a Unix socket — the same path the CLI
``serve`` / ``submit`` pair uses, minus the subprocess.
"""

import json
import queue as queue_mod
import socket
import threading
import time

import pytest

from repro.errors import ConfigurationError
from repro.faults import FaultPlan, inject
from repro.service import (
    MeasurementService,
    ProtocolError,
    ServiceClient,
    ServiceConfig,
    ServiceConnectionError,
    wait_for_server,
)
from repro.service.protocol import (
    JobSpec,
    decode_line,
    encode_line,
    parse_job_spec,
    parse_request,
)

N_SAMPLES = 2**14  # smallest record length the Y-factor fit tolerates
NPERSEG = 2048


class TestProtocol:
    def test_line_round_trip(self):
        message = {"op": "submit", "job": {"kind": "measure"}, "wait": True}
        assert decode_line(encode_line(message)) == message

    def test_oversized_line_rejected(self):
        with pytest.raises(ProtocolError):
            decode_line(b"x" * (2**20 + 1))

    def test_non_object_line_rejected(self):
        with pytest.raises(ProtocolError):
            decode_line(b"[1,2,3]\n")
        with pytest.raises(ProtocolError):
            decode_line(b"not json\n")

    def test_parse_request_validates_op(self):
        with pytest.raises(ProtocolError):
            parse_request({"op": "halt"})
        with pytest.raises(ProtocolError):
            parse_request({"op": "status", "key": 7})

    def test_parse_request_coerces_submit(self):
        request = parse_request(
            {"op": "submit", "job": {"kind": "lot", "params": {"seed": 1}}}
        )
        assert isinstance(request["job"], JobSpec)
        assert request["wait"] is False

    def test_unknown_job_fields_rejected(self):
        with pytest.raises(ProtocolError):
            parse_job_spec({"kind": "measure", "nice": -20})

    def test_key_excludes_deadline(self):
        base = JobSpec(kind="measure", params={"seed": 5})
        budgeted = JobSpec(
            kind="measure", params={"seed": 5}, deadline_s=30.0
        )
        assert base.key() == budgeted.key()
        assert base.key() != JobSpec(
            kind="measure", params={"seed": 6}
        ).key()

    def test_bad_specs_rejected(self):
        with pytest.raises(ConfigurationError):
            JobSpec(kind="destroy")
        with pytest.raises(ConfigurationError):
            JobSpec(kind="measure", deadline_s=0.0)
        with pytest.raises(ConfigurationError):
            JobSpec(kind="measure", params="seed=1")


def _start_daemon(store_root, **overrides):
    """One in-process daemon on a Unix socket; returns its handles."""
    config = ServiceConfig(
        store_root=str(store_root),
        backend="serial",
        journal_fsync=False,
        max_group_devices=1,
        **overrides,
    )
    service = MeasurementService(config)
    ready: "queue_mod.Queue" = queue_mod.Queue()
    codes: list = []
    thread = threading.Thread(
        target=lambda: codes.append(service.run(ready.put)), daemon=True
    )
    thread.start()
    endpoint = ready.get(timeout=30.0)
    address = endpoint.get("socket") or (
        endpoint["host"],
        endpoint["port"],
    )
    wait_for_server(address, timeout_s=10.0)
    return service, thread, codes, address


@pytest.fixture(scope="class")
def daemon(request, tmp_path_factory):
    store_root = tmp_path_factory.mktemp("service") / "store"
    service, thread, codes, address = _start_daemon(store_root)
    yield service, address
    service.request_drain()
    thread.join(timeout=60.0)
    assert not thread.is_alive(), "daemon failed to drain"


def measure_spec(seed, **extra):
    params = {"seed": seed, "n_samples": N_SAMPLES, "nperseg": NPERSEG}
    params.update(extra)
    return JobSpec(kind="measure", params=params)


class TestRoundTrip:
    def test_ping_and_stats(self, daemon):
        _, address = daemon
        with ServiceClient(address) as client:
            assert client.ping()
            report = client.stats()
        assert report["draining"] is False
        assert report["kernel_backend"]

    def test_submit_wait_returns_terminal_result(self, daemon):
        _, address = daemon
        spec = measure_spec(seed=100)
        with ServiceClient(address) as client:
            ack = client.submit(spec, wait=True, wait_timeout_s=120.0)
        assert ack["status"] == "accepted"
        assert ack["key"] == spec.key()
        job = ack["job"]
        assert job["state"] == "ok"
        assert job["result"]["kind"] == "measure"
        assert 0.0 < job["result"]["noise_figure_db"] < 20.0
        type(self).first_nf = job["result"]["noise_figure_db"]

    def test_resubmit_answered_from_cache(self, daemon):
        service, address = daemon
        before = service.n_cached_hits
        with ServiceClient(address) as client:
            ack = client.submit(measure_spec(seed=100), wait=True)
        assert ack["status"] == "cached"
        assert ack["job"]["result"]["noise_figure_db"] == self.first_nf
        assert service.n_cached_hits == before + 1

    def test_status_op(self, daemon):
        _, address = daemon
        spec = measure_spec(seed=100)
        with ServiceClient(address) as client:
            view = client.status(spec.key())
            assert view["state"] == "ok"
            assert client.status("ab" * 32) is None

    def test_metrics_op_exposes_telemetry(self, daemon):
        # Runs after the submit tests above, so job-lifecycle counters
        # are already non-zero.
        _, address = daemon
        with ServiceClient(address) as client:
            response = client.metrics(trace_limit=16)
        assert response["ok"] is True
        assert response["enabled"] is True
        assert "repro_service_jobs_total" in response["prometheus"]
        snap = response["metrics"]
        assert any(
            c["name"] == "service.submits" for c in snap["counters"]
        )
        trace = response["trace"]
        assert trace["recorded"] >= 1
        assert len(trace["events"]) <= 16
        assert any(
            e["name"] == "job.done" for e in trace["events"]
        )

    def test_stats_report_carries_journal_and_obs(self, daemon):
        _, address = daemon
        with ServiceClient(address) as client:
            report = client.stats()
        assert report["journal"]["segments"] >= 1
        assert report["journal"]["bytes"] > 0
        assert report["records_since_rotate"] >= 1
        assert report["obs"] is not None
        assert any(
            g["name"] == "service.queue_depth"
            for g in report["obs"]["gauges"]
        )

    def test_malformed_requests_get_error_lines(self, daemon):
        _, address = daemon
        with ServiceClient(address) as client:
            response = client.request({"op": "halt"})
            assert response["ok"] is False
            assert "op" in response["error"]
            response = client.request(
                {"op": "submit", "job": {"kind": "destroy"}}
            )
            assert response["ok"] is False

    def test_bad_params_fail_terminally(self, daemon):
        _, address = daemon
        spec = JobSpec(kind="lot", params={"no_such_param": 1})
        with ServiceClient(address) as client:
            ack = client.submit(spec, wait=True, wait_timeout_s=60.0)
        assert ack["job"]["state"] == "failed"
        assert "bad job spec" in ack["job"]["error"]

    def test_deadline_expired_before_run(self, daemon):
        service, address = daemon
        spec = JobSpec(
            kind="measure",
            params={"seed": 101, "n_samples": N_SAMPLES},
            deadline_s=1e-6,
        )
        with ServiceClient(address) as client:
            ack = client.submit(spec, wait=True, wait_timeout_s=60.0)
        assert ack["job"]["state"] == "deadline"
        # Even a never-run expiry is journaled terminally: a restart
        # must not resurrect a job whose budget is already spent.
        assert service.journal.replay().entries[spec.key()].status == (
            "deadline"
        )

    def test_oversized_request_line_gets_error_not_hangup(self, daemon):
        # A line past the reader limit cannot even be framed; the
        # daemon must answer with a protocol error instead of letting
        # the overrun escape _handle_connection and drop the client
        # without a word.
        from repro.service.protocol import MAX_LINE_BYTES

        _, address = daemon
        payload = (
            b'{"op":"ping","pad":"'
            + b"x" * (MAX_LINE_BYTES + 4096)
            + b'"}\n'
        )
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.connect(address)
            sock.settimeout(30.0)
            sock.sendall(payload)
            data = b""
            while b"\n" not in data:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                data += chunk
        response = json.loads(data.split(b"\n", 1)[0])
        assert response["ok"] is False
        assert "exceeds" in response["error"]

    def test_journal_records_lifecycle(self, daemon):
        service, _ = daemon
        state = service.journal.replay()
        done = state.entries[measure_spec(seed=100).key()]
        assert done.status == "ok"
        # Every completed job above has its terminal record.
        assert all(
            not entry.incomplete for entry in state.entries.values()
        )


class TestFaultSites:
    def test_disconnect_then_resilient_resubmit(self, tmp_path):
        service, thread, codes, address = _start_daemon(
            tmp_path / "store"
        )
        try:
            spec = measure_spec(seed=200)
            with inject(FaultPlan(client_disconnect=1.0)) as injector:
                with pytest.raises(ServiceConnectionError):
                    ServiceClient(address).submit(spec)
            assert injector.counts().get("client_disconnect") == 1
            assert service.n_disconnect_drops == 1
            # The job WAS accepted and journaled before the drop; the
            # idempotent resubmit attaches to it instead of recomputing.
            with ServiceClient(address) as client:
                ack = client.submit_resilient(
                    spec, wait=True, wait_timeout_s=120.0
                )
            assert ack["status"] in ("duplicate", "cached")
            assert ack["job"]["state"] == "ok"
            assert service.queue.n_accepted == 1
        finally:
            service.request_drain()
            thread.join(timeout=60.0)
        assert codes == [0]

    def test_job_deadline_fault_kills_lot_at_checkpoint(self, tmp_path):
        service, thread, codes, address = _start_daemon(
            tmp_path / "store"
        )
        try:
            spec = JobSpec(
                kind="lot",
                params={
                    "n_devices": 4,
                    "n_samples": N_SAMPLES,
                    "nperseg": NPERSEG,
                    "seed": 9,
                },
                deadline_s=3600.0,
            )
            with inject(FaultPlan(job_deadline=1.0)):
                with ServiceClient(address) as client:
                    ack = client.submit(
                        spec, wait=True, wait_timeout_s=120.0
                    )
            assert ack["job"]["state"] == "deadline"
            assert "budget" in ack["job"]["error"]
            assert service.n_deadline_kills == 1
            # The killed lot is terminal (budget spent is spent): its
            # journal record is a done/deadline, not an incomplete.
            entry = service.journal.replay().entries[spec.key()]
            assert entry.status == "deadline"
            # A fresh submission redoes the lot and resumes from the
            # sub-batches the killed run committed.
            with ServiceClient(address) as client:
                ack = client.submit(spec, wait=True, wait_timeout_s=240.0)
            assert ack["job"]["state"] == "ok"
            assert len(ack["job"]["result"]["measured_nf_db"]) == 4
        finally:
            service.request_drain()
            thread.join(timeout=60.0)
        assert codes == [0]


class TestJournalMaintenance:
    def test_drain_during_held_admission_journals_drop(self, tmp_path):
        # A drain that wins the held-admission race rejects the client,
        # so the already-journaled accept must be cancelled with a
        # dropped record — the next daemon may not run a job whose
        # client was told it will not run.
        config = ServiceConfig(
            store_root=str(tmp_path / "store"),
            backend="serial",
            journal_fsync=False,
        )
        service = MeasurementService(config)
        try:
            service.journal.initialize()
            spec = measure_spec(seed=300)
            verdict, job = service.queue.submit(spec, hold=True)
            assert verdict == "accepted"
            service.journal.record_accept(job.key, spec, 0.0)
            service.queue.drain()
            assert service._release_held(job) is False
            assert service.n_dropped == 1
            assert job.state == "dropped"
            entry = service.journal.replay().entries[spec.key()]
            assert entry.status == "dropped"
            assert not entry.incomplete
            # A restarted daemon replays nothing for this key.
            restarted = MeasurementService(config)
            try:
                assert restarted.replay_journal() == 0
            finally:
                restarted.sched.close()
        finally:
            service.sched.close()

    def test_journal_rotates_under_sustained_traffic(self, tmp_path):
        # The journal must compact while serving, not only at drain —
        # done records embed full results and would grow disk without
        # bound on a long-lived daemon.
        service, thread, codes, address = _start_daemon(
            tmp_path / "store", journal_rotate_records=1
        )
        try:
            with ServiceClient(address) as client:
                ack = client.submit(
                    measure_spec(seed=400), wait=True, wait_timeout_s=120.0
                )
            assert ack["job"]["state"] == "ok"
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                segments = service.journal._segments()
                if segments and segments[-1].name != "journal-00000000.jrn":
                    break
                time.sleep(0.05)
            segments = service.journal._segments()
            assert segments[-1].name != "journal-00000000.jrn"
            # The completed job's records were compacted away; nothing
            # is left to resume.
            assert service.journal.replay().incomplete == []
        finally:
            service.request_drain()
            thread.join(timeout=60.0)
        assert codes == [0]


class TestDrainExitCodes:
    def test_clean_drain_exits_zero(self, tmp_path):
        service, thread, codes, address = _start_daemon(
            tmp_path / "store"
        )
        with ServiceClient(address) as client:
            response = client.drain()
        assert response["ok"] is True
        thread.join(timeout=60.0)
        assert codes == [0]
        assert service.queue.draining

    def test_tcp_endpoint(self, tmp_path):
        service, thread, codes, address = _start_daemon(
            tmp_path / "store", host="127.0.0.1"
        )
        try:
            assert isinstance(address, tuple)
            with ServiceClient(address) as client:
                assert client.ping()
        finally:
            service.request_drain()
            thread.join(timeout=60.0)
        assert codes == [0]
