"""Tests for repro.soc.memory."""

import numpy as np
import pytest

from repro.bitstream import PackedBitstream
from repro.errors import ConfigurationError, ResourceError
from repro.signals.waveform import Waveform
from repro.soc.memory import SampleMemory


def bitstream(n=1000, fs=10000.0, seed=0):
    rng = np.random.default_rng(seed)
    return Waveform(np.where(rng.random(n) > 0.5, 1.0, -1.0), fs)


class TestPackedStoreLoad:
    def test_store_packed_record_as_is(self):
        wave = bitstream(1001)
        packed = PackedBitstream.pack(wave)
        memory = SampleMemory(1024)
        record = memory.store_bitstream("cap", packed)
        assert record.bytes_used == packed.nbytes
        # Zero-copy: the stored record is the same packed object.
        assert memory.load_packed("cap") is packed
        assert memory.load_bitstream("cap") == wave

    def test_load_packed_of_float_store(self):
        wave = bitstream(64)
        memory = SampleMemory(1024)
        memory.store_bitstream("cap", wave)
        packed = memory.load_packed("cap")
        assert isinstance(packed, PackedBitstream)
        assert np.array_equal(packed.unpack(), wave.samples)

    def test_load_packed_missing_key(self):
        with pytest.raises(ConfigurationError):
            SampleMemory(64).load_packed("nope")


class TestCapacityMath:
    def test_bytes_required_bits(self):
        assert SampleMemory.bytes_required_bits(8) == 1
        assert SampleMemory.bytes_required_bits(9) == 2
        assert SampleMemory.bytes_required_bits(1_000_000) == 125000

    def test_words_required(self):
        # 1e6 samples at 12 bits = 1.5 MB.
        assert SampleMemory.words_required(1_000_000, 12) == 1_500_000
        assert SampleMemory.words_required(4, 12) == 6

    def test_rejects_zero_bits_per_sample(self):
        with pytest.raises(ConfigurationError):
            SampleMemory.words_required(100, 0)

    def test_rejects_negative_samples(self):
        with pytest.raises(ConfigurationError):
            SampleMemory.bytes_required_bits(-1)


class TestStoreLoad:
    def test_roundtrip(self):
        mem = SampleMemory(1024)
        original = bitstream(1000)
        mem.store_bitstream("cap", original)
        restored = mem.load_bitstream("cap")
        assert restored == original

    def test_roundtrip_non_multiple_of_8(self):
        mem = SampleMemory(1024)
        original = bitstream(1003)
        mem.store_bitstream("cap", original)
        assert mem.load_bitstream("cap") == original

    def test_accounting(self):
        mem = SampleMemory(1024)
        mem.store_bitstream("cap", bitstream(800))
        assert mem.bytes_used == 100
        assert mem.bytes_free == 924

    def test_overflow_raises(self):
        mem = SampleMemory(10)
        with pytest.raises(ResourceError):
            mem.store_bitstream("cap", bitstream(1000))

    def test_overflow_message_mentions_capacity(self):
        mem = SampleMemory(10)
        with pytest.raises(ResourceError, match="capacity"):
            mem.store_bitstream("cap", bitstream(1000))

    def test_duplicate_key_raises(self):
        mem = SampleMemory(1024)
        mem.store_bitstream("cap", bitstream(100))
        with pytest.raises(ConfigurationError):
            mem.store_bitstream("cap", bitstream(100))

    def test_rejects_non_bitstream(self):
        mem = SampleMemory(1024)
        with pytest.raises(ConfigurationError):
            mem.store_bitstream("cap", Waveform([0.5, 1.0], 10.0))

    def test_missing_key_raises(self):
        mem = SampleMemory(1024)
        with pytest.raises(ConfigurationError):
            mem.load_bitstream("nope")

    def test_free_releases(self):
        mem = SampleMemory(1024)
        mem.store_bitstream("cap", bitstream(800))
        mem.free("cap")
        assert mem.bytes_used == 0
        mem.store_bitstream("cap", bitstream(800))  # key reusable

    def test_clear(self):
        mem = SampleMemory(1024)
        mem.store_bitstream("a", bitstream(100))
        mem.store_bitstream("b", bitstream(100, seed=1))
        mem.clear()
        assert mem.bytes_used == 0
        assert mem.records() == []

    def test_records_metadata(self):
        mem = SampleMemory(1024)
        mem.store_bitstream("a", bitstream(800, fs=5000.0))
        rec = mem.records()[0]
        assert rec.key == "a"
        assert rec.n_samples == 800
        assert rec.sample_rate_hz == 5000.0
        assert rec.bits_per_sample == 1.0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            SampleMemory(0)
