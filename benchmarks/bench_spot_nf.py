"""Benchmark (extension): spot NF vs frequency from one acquisition pair.

One hot/cold capture yields NF in every octave band.  With a
flicker-heavy DUT the hot and cold spectra have different *shapes*, so
the limiter's third-order distortion biases the raw-PSD path at high
bands; the Van Vleck-corrected path removes the bias.  This is the case
where the correction the paper omits actually matters.
"""

from conftest import run_once

from repro.experiments.spot_nf import run_spot_nf
from repro.reporting.tables import render_table


def test_spot_nf(benchmark, emit):
    result = run_once(benchmark, run_spot_nf, n_samples=2**19, seed=2005)
    emit(
        "spot_nf",
        render_table(
            [
                "band (Hz)",
                "expected NF (dB)",
                "linear NF (dB)",
                "linear err (dB)",
                "corrected NF (dB)",
                "corrected err (dB)",
            ],
            [
                [
                    f"{r.f_low_hz:.0f}-{r.f_high_hz:.0f}",
                    r.expected_nf_db,
                    r.measured_nf_db,
                    r.error_db,
                    r.corrected_nf_db,
                    r.corrected_error_db,
                ]
                for r in result.rows
            ],
            title="Extension - spot NF per octave band (flicker DUT)",
        ),
    )
    # NF(f) decreases with frequency for a 1/f device, both paths.
    linear = [r.measured_nf_db for r in result.rows]
    assert linear == sorted(linear, reverse=True)
    # The corrected path is tighter than the linear one overall.
    assert result.max_abs_corrected_error_db < 1.0
    assert result.max_abs_corrected_error_db < result.max_abs_error_db
