"""Shared helpers for the benchmark suite.

Every bench regenerates one paper table/figure: it times the experiment
with ``pytest-benchmark`` (one round — these are full measurements, not
micro-kernels), renders the paper-style rows/series, prints them and
persists them under ``benchmarks/results/`` so the output survives
pytest's capture.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def emit():
    """Return a function that prints and persists a rendered table."""

    def _emit(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _emit


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark a full experiment with a single timed round."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def envinfo() -> dict:
    """The compute-environment record every bench JSON section embeds.

    CPU count, numpy/scipy/numba versions, the active kernel and FFT
    backends — a benchmark number is meaningless without the
    environment it was measured in (see docs/PERFORMANCE.md, "reading
    BENCH_engine.json").
    """
    from repro.kernels import report

    return report()
