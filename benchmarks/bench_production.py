"""Benchmark (extension): production screening guard-band tradeoff.

A simulated lot straddling an 8 dB NF limit is measured once per device
with the 1-bit BIST and screened at several guard bands: widening the
band converts escapes into retests at some overkill cost — the
production-economics knob behind BIST NF testing.
"""

from conftest import run_once

from repro.experiments.production import run_production
from repro.reporting.tables import render_table


def test_production(benchmark, emit):
    result = run_once(benchmark, run_production, seed=2005)
    emit(
        "production",
        render_table(
            [
                "guardband (sigma)",
                "guardband (dB)",
                "pass",
                "retest",
                "fail",
                "escapes",
                "overkill",
            ],
            [
                [
                    r.guardband_sigmas,
                    r.guardband_db,
                    r.outcome.n_pass,
                    r.outcome.n_retest,
                    r.outcome.n_fail,
                    r.outcome.n_escapes,
                    r.outcome.n_overkill,
                ]
                for r in result.rows
            ],
            title=(
                f"Production screen - {result.n_devices} devices, limit "
                f"{result.limit_db} dB, measurement sigma "
                f"{result.measurement_sigma_db} dB"
            ),
        ),
    )
    assert result.escapes_decrease_with_guardband()
    # The widest guard band must not leak more than a device or two.
    assert result.rows[-1].outcome.n_escapes <= max(
        1, result.rows[0].outcome.n_escapes
    )