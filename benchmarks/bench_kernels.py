"""Benchmark (extension): the compiled multi-backend kernel tier.

Two measurement families at paper scale, merged into
``BENCH_engine.json`` under the ``"kernels"`` key:

* **Backend parity + tuned Welch speedup.**  Every enabled kernel
  backend is self-checked (the registry's parity suite) and its
  bit-domain Welch PSD compared to the reference tier at paper scale
  (8 records x 1e6 samples, nperseg 1e4) — identical to <= 1e-15
  scale-relative, asserted.  The tuned tier (cache-blocked unpack,
  cached rfft plans, einsum power accumulation) must beat the
  reference bit-domain path by >= 1.3x wall-clock (the PR 4 path, kept
  verbatim as the reference tier).  The numba tier is measured when
  numba is installed and recorded as absent — not failed — otherwise.
* **Zero-copy result return.**  The shared-memory result return path
  (workers publish PSD rows into a :class:`SharedResultBlock`, only
  headers travel back) versus the pickle return (rows serialized
  through the executor's result pipe), measured through a real worker
  process for a multi-device lot (48 records = 24 devices x 2 states
  of 5001-bin PSDs).  Both paths must produce identical arrays
  (asserted) and the shm return must be >= 1.2x faster.

Timings are paired and interleaved (ref/tuned alternate, best-of-N)
because shared runners jitter by ~10%; the floors can be relaxed via
``BENCH_KERNELS_MIN_WELCH_SPEEDUP`` / ``BENCH_KERNELS_MIN_SHM_RETURN_
SPEEDUP`` on oversubscribed CI hosts.
"""

import json
import os
import pathlib
import time
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from conftest import envinfo, run_once

from repro.dsp.psd import welch_batch
from repro.engine.shm import (
    SharedResultBlock,
    collect_results,
    publish_results,
)
from repro.experiments.matlab_sim import MatlabSimConfig, MatlabSimulation
from repro.kernels import available_backends, kernel_backend, self_check
from repro.reporting.tables import render_table
from repro.signals.random import spawn_rngs

REPO_ROOT = pathlib.Path(__file__).parent.parent

N_RECORDS = 8
N_SAMPLES = 1_000_000
NPERSEG = 10_000
N_BINS = NPERSEG // 2 + 1

#: The multi-device lot for the return-path measurement: two
#: production screens of 24 devices x 2 thermal states.
LOT_RECORDS = 96

BEST_OF = 8
RETURN_BEST_OF = 10

#: Acceptance floor for the tuned bit-domain Welch tier vs reference.
MIN_WELCH_SPEEDUP = float(
    os.environ.get("BENCH_KERNELS_MIN_WELCH_SPEEDUP", "1.3")
)

#: Acceptance floor for the shm result return vs the pickle return.
MIN_SHM_RETURN_SPEEDUP = float(
    os.environ.get("BENCH_KERNELS_MIN_SHM_RETURN_SPEEDUP", "1.2")
)

#: Scale-relative PSD agreement every non-reference backend must hold.
MAX_PSD_REL_DIFF = 1e-15


def _time(fn, *args):
    start = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - start


#: Worker-side row cache: the lot's PSD rows are synthesized once per
#: worker process so the timed round trips measure only the dispatch
#: and the return path, not the synthesis.
_ROWS_CACHE = {}


def _lot_rows(n_records, seed):
    key = (n_records, seed)
    rows = _ROWS_CACHE.get(key)
    if rows is None:
        rows = _ROWS_CACHE[key] = np.random.default_rng(seed).random(
            (n_records, N_BINS)
        )
    return rows


def _pickle_return_task(args):
    """Worker: a lot's PSD rows returned via the executor (pickle)."""
    n_records, seed = args
    return list(range(n_records)), _lot_rows(n_records, seed)


def _shm_return_task(args):
    """Worker: same rows, published into shared memory (headers back)."""
    n_records, seed, descriptor = args
    rows = _lot_rows(n_records, seed)
    indices = list(range(n_records))
    if publish_results(descriptor, indices, rows):
        return indices, None
    return indices, rows  # pragma: no cover - shm attach failed


def test_kernels(benchmark, emit):
    seed = 2005
    sim = MatlabSimulation(
        MatlabSimConfig(n_samples=N_SAMPLES, nperseg=NPERSEG)
    )
    batch = sim.acquire_bitstreams(
        ["hot", "cold"] * (N_RECORDS // 2),
        spawn_rngs(seed, N_RECORDS),
        packed=True,
        rng_mode="philox",
    )[0]

    # --- backend parity: every enabled tier vs the reference ---------
    backends = available_backends()
    checked = {b: self_check(b) for b in backends}
    with kernel_backend("reference"):
        ref_spec = welch_batch(batch, NPERSEG, bit_domain=True)
    psd_scale = float(ref_spec.psd.max())
    parity = {}
    for name in backends:
        if name == "reference":
            continue
        with kernel_backend(name):
            spec = welch_batch(batch, NPERSEG, bit_domain=True)
        parity[name] = float(
            np.abs(spec.psd - ref_spec.psd).max() / psd_scale
        )

    # --- tuned Welch speedup (paired, interleaved, best-of-N) --------
    def welch_with(name):
        with kernel_backend(name):
            return welch_batch(batch, NPERSEG, bit_domain=True)

    run_once(benchmark, welch_with, "tuned")  # warm (plans, self-check)
    timed = [b for b in backends if b != "reference"]
    best = {name: None for name in ["reference"] + timed}
    for _ in range(BEST_OF):
        for name in best:
            _, seconds = _time(welch_with, name)
            if best[name] is None or seconds < best[name]:
                best[name] = seconds
    speedups = {
        name: best["reference"] / best[name] for name in timed
    }

    # --- zero-copy result return vs pickle return --------------------
    psd_pickle = np.empty((LOT_RECORDS, N_BINS))
    psd_shm = np.empty((LOT_RECORDS, N_BINS))
    with ProcessPoolExecutor(max_workers=1) as executor:
        with SharedResultBlock(LOT_RECORDS, N_BINS) as block:
            descriptor = block.descriptor

            def pickle_round():
                outcome = executor.submit(
                    _pickle_return_task, (LOT_RECORDS, seed)
                ).result()
                collect_results([outcome], None, psd_pickle)

            def shm_round():
                outcome = executor.submit(
                    _shm_return_task, (LOT_RECORDS, seed, descriptor)
                ).result()
                collect_results([outcome], block, psd_shm)

            pickle_round()  # warm the worker and both code paths
            shm_round()
            t_shm = t_pickle = None
            for _ in range(RETURN_BEST_OF):
                _, a = _time(shm_round)
                _, b = _time(pickle_round)
                t_shm = a if t_shm is None else min(t_shm, a)
                t_pickle = b if t_pickle is None else min(t_pickle, b)
    return_identical = bool(np.array_equal(psd_shm, psd_pickle))
    return_speedup = t_pickle / t_shm

    # --- report -------------------------------------------------------
    rows = [
        [
            "welch reference",
            best["reference"],
            f"{checked['reference']} kernels checked",
            "-",
        ],
    ]
    for name in timed:
        rows.append(
            [
                f"welch {name}",
                best[name],
                f"psd rel diff {parity[name]:.1e}",
                f"{speedups[name]:.2f}x",
            ]
        )
    if "numba" not in backends:
        rows.append(["welch numba", "-", "numba absent (skipped)", "-"])
    rows.extend(
        [
            ["return pickle", t_pickle, f"{LOT_RECORDS} x {N_BINS} rows", "-"],
            [
                "return shm",
                t_shm,
                "identical" if return_identical else "MISMATCH",
                f"{return_speedup:.2f}x",
            ],
        ]
    )
    emit(
        "kernels",
        render_table(
            ["stage", "seconds", "detail", "speedup"],
            rows,
            title=(
                f"Kernel tier - {N_RECORDS} x {N_SAMPLES} records, "
                f"nperseg {NPERSEG}, {os.cpu_count()} CPU(s)"
            ),
        ),
    )

    bench_path = REPO_ROOT / "BENCH_engine.json"
    try:
        payload = json.loads(bench_path.read_text())
    except (FileNotFoundError, json.JSONDecodeError):
        payload = {}  # self-heal a missing or truncated file
    payload["kernels"] = {
        "n_cpus": os.cpu_count(),
        "env": envinfo(),
        "workload": {
            "n_records": N_RECORDS,
            "n_samples": N_SAMPLES,
            "nperseg": NPERSEG,
            "best_of": BEST_OF,
        },
        "backends": {
            name: {
                "seconds": round(best[name], 4),
                "kernels_checked": checked[name],
                "psd_max_rel_diff": parity.get(name, 0.0),
                "speedup_vs_reference": round(
                    best["reference"] / best[name], 3
                ),
            }
            for name in best
        },
        "numba": (
            {"status": "enabled"}
            if "numba" in backends
            else {"status": "absent", "skipped": True}
        ),
        "result_return": {
            "lot_records": LOT_RECORDS,
            "n_bins": N_BINS,
            "best_of": RETURN_BEST_OF,
            "pickle_seconds": round(t_pickle, 6),
            "shm_seconds": round(t_shm, 6),
            "speedup": round(return_speedup, 2),
            "identical": return_identical,
        },
    }
    bench_path.write_text(json.dumps(payload, indent=2) + "\n")

    # Acceptance bars: every enabled backend within 1e-15 of reference,
    # tuned Welch >= 1.3x, shm return identical and >= 1.2x.  The numba
    # tier is skipped (recorded absent), never failed, when missing.
    for name, diff in parity.items():
        assert diff <= MAX_PSD_REL_DIFF, (name, diff)
    assert return_identical
    assert speedups["tuned"] >= MIN_WELCH_SPEEDUP, speedups
    assert return_speedup >= MIN_SHM_RETURN_SPEEDUP, return_speedup
