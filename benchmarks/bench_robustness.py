"""Benchmark (ablation): NF shift under comparator non-idealities.

Extends the paper's section 6 analysis: the BIST cell tolerates
realistic comparator offset, input noise, hysteresis and sampling jitter
with sub-dB NF shifts.
"""

from conftest import run_once

from repro.experiments.robustness import run_robustness
from repro.reporting.tables import render_table


def _fmt(v):
    return "n/a" if v is None else v


def test_robustness(benchmark, emit):
    result = run_once(benchmark, run_robustness, n_samples=2**18, seed=2005)
    emit(
        "robustness",
        render_table(
            ["non-ideality", "level (x cold RMS / samples)", "NF (dB)", "shift (dB)"],
            [
                [p.kind, p.relative_level, _fmt(p.nf_db), _fmt(p.shift_db)]
                for p in result.points
            ],
            title=(
                "Ablation - comparator non-idealities "
                f"(ideal-comparator baseline {result.baseline_nf_db:.2f} dB, "
                f"expected {result.expected_nf_db:.2f} dB)"
            ),
        ),
    )
    for kind in ("offset", "input_noise", "hysteresis", "jitter"):
        assert result.worst_shift_db(kind) < 1.0, kind
