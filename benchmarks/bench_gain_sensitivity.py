"""Benchmark: section 4.1 analysis — direct method vs Y-factor under
conditioning-amplifier gain drift (paper eqs 10/11)."""

from conftest import run_once

from repro.experiments.gain_sensitivity import run_gain_sensitivity
from repro.reporting.tables import render_table


def test_gain_sensitivity(benchmark, emit):
    result = run_once(benchmark, run_gain_sensitivity, n_samples=2**18, seed=2005)
    emit(
        "gain_sensitivity",
        render_table(
            [
                "gain drift",
                "direct err analytic (dB)",
                "direct err simulated (dB)",
                "y-factor err simulated (dB)",
            ],
            [
                [
                    p.gain_drift,
                    p.direct_error_analytic_db,
                    p.direct_error_simulated_db,
                    p.yfactor_error_simulated_db,
                ]
                for p in result.points
            ],
            title=(
                "Section 4.1 - NF estimation error under gain drift "
                f"(expected NF {result.expected_nf_db:.2f} dB)"
            ),
        ),
    )
    # Shape: direct tracks the drift (eq 10), Y-factor is immune (eq 11).
    assert result.max_direct_error_db > 1.0
    assert result.max_yfactor_error_db < 0.4
    for p in result.points:
        assert abs(p.direct_error_simulated_db - p.direct_error_analytic_db) < 0.4
