"""Benchmark: regenerate figure 8 (bitstream PSD before normalization).

The paper's observation: "the noise levels remain similar, while
amplitude levels of the reference square wave are larger" for the cold
acquisition.
"""

from conftest import run_once

from repro.experiments.fig8 import run_fig8
from repro.reporting.tables import render_table


def test_fig8(benchmark, emit):
    result = run_once(benchmark, run_fig8, seed=2005)
    emit(
        "fig8",
        render_table(
            ["quantity", "hot", "cold", "ratio"],
            [
                [
                    "reference line power (1-bit units)",
                    result.line_power_hot,
                    result.line_power_cold,
                    result.line_ratio_cold_over_hot,
                ],
                [
                    "noise floor density (1/Hz)",
                    result.floor_density_hot,
                    result.floor_density_cold,
                    result.floor_ratio_hot_over_cold,
                ],
            ],
            title="Figure 8 - raw bitstream spectrum levels (before normalization)",
        ),
    )
    # Shape: floors nearly equal, cold line much larger.
    assert abs(result.floor_ratio_hot_over_cold - 1.0) < 0.1
    assert result.line_ratio_cold_over_hot > 2.0
