"""Benchmark (extension): the persistent measurement result store.

Three measurements over one production lot, merged into
``BENCH_engine.json`` under the ``"store"`` key:

* **Cold vs warm sweep.**  The same planned production screen run
  twice against one store: the cold pass measures and persists every
  device, the warm pass serves the whole lot from provenance-keyed
  cache hits.  Acceptance bars: warm >= 10x cold (relaxable via
  ``BENCH_STORE_MIN_WARM_SPEEDUP`` for noisy shared runners) and the
  warm screen bit-identical to the cold one.
* **Cache-hit identity.**  One device measured through a store-backed
  engine and through a bare engine — NF and the full normalized
  spectra must match exactly (the store's serialization contract).
* **Retest vs full lot.**  ``run_production_retest`` against the warm
  store (initial screen loaded, only failed / guard-band devices
  re-measured) versus a full re-screen of the lot.  Acceptance bar:
  the retest replan is faster than the full lot.
"""

import json
import os
import pathlib
import shutil
import tempfile
import time

import numpy as np

from conftest import envinfo, run_once

from repro.engine import MeasurementEngine, MeasurementScheduler, ResultStore
from repro.experiments.matlab_sim import MatlabSimConfig, MatlabSimulation
from repro.experiments.production import run_production, run_production_retest
from repro.reporting.tables import render_table

REPO_ROOT = pathlib.Path(__file__).parent.parent

N_DEVICES = 8
N_SAMPLES = 2**16
NPERSEG = 4096
#: A lot that is not pure worst-case: ~2/8 devices above the limit, so
#: the retest replan visibly beats a full re-screen (a lot straddling
#: the limit retests almost everything — correct, but a weak bar).
SEED = 2011

#: Acceptance floor for the warm-cache speedup (dedicated hosts
#: measure far higher; shared CI runners can relax via environment).
MIN_WARM_SPEEDUP = float(os.environ.get("BENCH_STORE_MIN_WARM_SPEEDUP", "10"))

#: The retest replan must beat a full re-screen by at least this
#: factor (1.0 = merely faster; it measures ~half the lot, so
#: dedicated hosts see ~2x).
MIN_RETEST_SPEEDUP = float(
    os.environ.get("BENCH_STORE_MIN_RETEST_SPEEDUP", "1.0")
)

LOT = dict(
    limit_db=8.0,
    nf_spread_db=1.5,
    n_devices=N_DEVICES,
    n_samples=N_SAMPLES,
    nperseg=NPERSEG,
    measurement_sigma_db=0.45,
    seed=SEED,
)


def _time(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def test_store(benchmark, emit):
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="bench_store_"))
    try:
        store = ResultStore(workdir / "nfstore")

        # --- cold vs warm planned sweep ------------------------------
        with MeasurementScheduler(store=store) as sched:
            cold = run_once(
                benchmark, run_production, **LOT, scheduler=sched,
                resume=True,
            )
            _, t_cold = _time(
                lambda: run_production(
                    **LOT,
                    scheduler=MeasurementScheduler(store=ResultStore(
                        workdir / "nfstore_cold2"
                    )),
                    resume=True,
                )
            )
            warm, t_warm = _time(
                run_production, **LOT, scheduler=sched, resume=True
            )
        warm_speedup = t_cold / t_warm
        warm_identical = warm.measured_nf_db == cold.measured_nf_db

        # --- cache-hit identity for one device -----------------------
        sim = MatlabSimulation(
            MatlabSimConfig(n_samples=N_SAMPLES, nperseg=NPERSEG)
        )
        estimator = sim.make_estimator()
        cached_engine = MeasurementEngine(store=store)
        first = cached_engine.measure(sim, estimator, rng=SEED)
        hit = cached_engine.measure(sim, estimator, rng=SEED)
        bare = MeasurementEngine().measure(sim, estimator, rng=SEED)
        nf_hit_diff = abs(hit.noise_figure_db - bare.noise_figure_db)
        psd_hit_diff = float(
            np.abs(
                hit.normalization.hot.psd - bare.normalization.hot.psd
            ).max()
        )
        assert first.noise_figure_db == bare.noise_figure_db

        # --- retest replan vs full re-screen -------------------------
        with MeasurementScheduler(store=store) as sched:
            retest, t_retest = _time(
                run_production_retest,
                **LOT,
                retest_guardband_sigmas=1.0,
                scheduler=sched,
            )
        _, t_full = _time(run_production, **LOT)
        retest_speedup = t_full / t_retest
        store_bytes = store.index().total_bytes

        rows = [
            ["cold planned screen", t_cold, f"{N_DEVICES} devices", "-"],
            [
                "warm planned screen",
                t_warm,
                "all cache hits",
                f"{warm_speedup:.1f}x",
            ],
            [
                "full re-screen",
                t_full,
                f"{N_DEVICES} devices",
                "-",
            ],
            [
                "retest replan",
                t_retest,
                f"{retest.n_retested}/{N_DEVICES} re-measured",
                f"{retest_speedup:.2f}x",
            ],
        ]
        emit(
            "store",
            render_table(
                ["stage", "seconds", "detail", "speedup"],
                rows,
                title=(
                    f"Result store - {N_DEVICES} x {N_SAMPLES} samples, "
                    f"nperseg {NPERSEG}, {store_bytes} stored bytes"
                ),
            ),
        )

        bench_path = REPO_ROOT / "BENCH_engine.json"
        try:
            payload = json.loads(bench_path.read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            payload = {}  # self-heal a missing or truncated file
        payload["store"] = {
            "n_cpus": os.cpu_count(),
            "env": envinfo(),
            "workload": {
                "n_devices": N_DEVICES,
                "n_samples": N_SAMPLES,
                "nperseg": NPERSEG,
            },
            "sweep": {
                "cold_seconds": round(t_cold, 4),
                "warm_seconds": round(t_warm, 4),
                "warm_speedup": round(warm_speedup, 2),
                "warm_identical": bool(warm_identical),
            },
            "cache_hit": {
                "nf_abs_diff_db": nf_hit_diff,
                "psd_max_abs_diff": psd_hit_diff,
            },
            "retest": {
                "full_seconds": round(t_full, 4),
                "retest_seconds": round(t_retest, 4),
                "n_retested": retest.n_retested,
                "speedup": round(retest_speedup, 2),
                "initial_from_store": retest.initial_from_store,
            },
            "store_bytes": store_bytes,
        }
        bench_path.write_text(json.dumps(payload, indent=2) + "\n")

        # Acceptance bars (ISSUE 5): bit-identical hits, >= 10x warm
        # sweep, retest lot cheaper than a full re-screen.
        assert warm_identical
        assert nf_hit_diff == 0.0
        assert psd_hit_diff == 0.0
        assert retest.initial_from_store
        assert 0 < retest.n_retested < N_DEVICES
        assert warm_speedup >= MIN_WARM_SPEEDUP
        assert retest_speedup >= MIN_RETEST_SPEEDUP
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
