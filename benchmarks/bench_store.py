"""Benchmark (extension): the persistent measurement result store.

Three measurements over one production lot, merged into
``BENCH_engine.json`` under the ``"store"`` key:

* **Cold vs warm sweep.**  The same planned production screen run
  twice against one store: the cold pass measures and persists every
  device, the warm pass serves the whole lot from provenance-keyed
  cache hits.  Acceptance bars: warm >= 10x cold (relaxable via
  ``BENCH_STORE_MIN_WARM_SPEEDUP`` for noisy shared runners) and the
  warm screen bit-identical to the cold one.
* **Cache-hit identity.**  One device measured through a store-backed
  engine and through a bare engine — NF and the full normalized
  spectra must match exactly (the store's serialization contract).
* **Retest vs full lot.**  ``run_production_retest`` against the warm
  store (initial screen loaded, only failed / guard-band devices
  re-measured) versus a full re-screen of the lot.  Acceptance bar:
  the retest replan is faster than the full lot.
"""

import json
import os
import pathlib
import shutil
import tempfile
import time

import numpy as np

from conftest import envinfo, run_once

from repro.engine import MeasurementEngine, MeasurementScheduler, ResultStore
from repro.experiments.matlab_sim import MatlabSimConfig, MatlabSimulation
from repro.experiments.production import run_production, run_production_retest
from repro.reporting.tables import render_table

REPO_ROOT = pathlib.Path(__file__).parent.parent

N_DEVICES = 8
N_SAMPLES = 2**16
NPERSEG = 4096
#: A lot that is not pure worst-case: ~2/8 devices above the limit, so
#: the retest replan visibly beats a full re-screen (a lot straddling
#: the limit retests almost everything — correct, but a weak bar).
SEED = 2011

#: Acceptance floor for the warm-cache speedup (dedicated hosts
#: measure far higher; shared CI runners can relax via environment).
MIN_WARM_SPEEDUP = float(os.environ.get("BENCH_STORE_MIN_WARM_SPEEDUP", "10"))

#: The retest replan must beat a full re-screen by at least this
#: factor (1.0 = merely faster; it measures ~half the lot, so
#: dedicated hosts see ~2x).
MIN_RETEST_SPEEDUP = float(
    os.environ.get("BENCH_STORE_MIN_RETEST_SPEEDUP", "1.0")
)

LOT = dict(
    limit_db=8.0,
    nf_spread_db=1.5,
    n_devices=N_DEVICES,
    n_samples=N_SAMPLES,
    nperseg=NPERSEG,
    measurement_sigma_db=0.45,
    seed=SEED,
)


def _time(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def test_store(benchmark, emit):
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="bench_store_"))
    try:
        store = ResultStore(workdir / "nfstore")

        # --- cold vs warm planned sweep ------------------------------
        with MeasurementScheduler(store=store) as sched:
            cold = run_once(
                benchmark, run_production, **LOT, scheduler=sched,
                resume=True,
            )
            _, t_cold = _time(
                lambda: run_production(
                    **LOT,
                    scheduler=MeasurementScheduler(store=ResultStore(
                        workdir / "nfstore_cold2"
                    )),
                    resume=True,
                )
            )
            warm, t_warm = _time(
                run_production, **LOT, scheduler=sched, resume=True
            )
        warm_speedup = t_cold / t_warm
        warm_identical = warm.measured_nf_db == cold.measured_nf_db

        # --- cache-hit identity for one device -----------------------
        sim = MatlabSimulation(
            MatlabSimConfig(n_samples=N_SAMPLES, nperseg=NPERSEG)
        )
        estimator = sim.make_estimator()
        cached_engine = MeasurementEngine(store=store)
        first = cached_engine.measure(sim, estimator, rng=SEED)
        hit = cached_engine.measure(sim, estimator, rng=SEED)
        bare = MeasurementEngine().measure(sim, estimator, rng=SEED)
        nf_hit_diff = abs(hit.noise_figure_db - bare.noise_figure_db)
        psd_hit_diff = float(
            np.abs(
                hit.normalization.hot.psd - bare.normalization.hot.psd
            ).max()
        )
        assert first.noise_figure_db == bare.noise_figure_db

        # --- retest replan vs full re-screen -------------------------
        with MeasurementScheduler(store=store) as sched:
            retest, t_retest = _time(
                run_production_retest,
                **LOT,
                retest_guardband_sigmas=1.0,
                scheduler=sched,
            )
        _, t_full = _time(run_production, **LOT)
        retest_speedup = t_full / t_retest
        store_bytes = store.index().total_bytes

        rows = [
            ["cold planned screen", t_cold, f"{N_DEVICES} devices", "-"],
            [
                "warm planned screen",
                t_warm,
                "all cache hits",
                f"{warm_speedup:.1f}x",
            ],
            [
                "full re-screen",
                t_full,
                f"{N_DEVICES} devices",
                "-",
            ],
            [
                "retest replan",
                t_retest,
                f"{retest.n_retested}/{N_DEVICES} re-measured",
                f"{retest_speedup:.2f}x",
            ],
        ]
        emit(
            "store",
            render_table(
                ["stage", "seconds", "detail", "speedup"],
                rows,
                title=(
                    f"Result store - {N_DEVICES} x {N_SAMPLES} samples, "
                    f"nperseg {NPERSEG}, {store_bytes} stored bytes"
                ),
            ),
        )

        bench_path = REPO_ROOT / "BENCH_engine.json"
        try:
            payload = json.loads(bench_path.read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            payload = {}  # self-heal a missing or truncated file
        payload["store"] = {
            "n_cpus": os.cpu_count(),
            "env": envinfo(),
            "workload": {
                "n_devices": N_DEVICES,
                "n_samples": N_SAMPLES,
                "nperseg": NPERSEG,
            },
            "sweep": {
                "cold_seconds": round(t_cold, 4),
                "warm_seconds": round(t_warm, 4),
                "warm_speedup": round(warm_speedup, 2),
                "warm_identical": bool(warm_identical),
            },
            "cache_hit": {
                "nf_abs_diff_db": nf_hit_diff,
                "psd_max_abs_diff": psd_hit_diff,
            },
            "retest": {
                "full_seconds": round(t_full, 4),
                "retest_seconds": round(t_retest, 4),
                "n_retested": retest.n_retested,
                "speedup": round(retest_speedup, 2),
                "initial_from_store": retest.initial_from_store,
            },
            "store_bytes": store_bytes,
        }
        bench_path.write_text(json.dumps(payload, indent=2) + "\n")

        # Acceptance bars (ISSUE 5): bit-identical hits, >= 10x warm
        # sweep, retest lot cheaper than a full re-screen.
        assert warm_identical
        assert nf_hit_diff == 0.0
        assert psd_hit_diff == 0.0
        assert retest.initial_from_store
        assert 0 < retest.n_retested < N_DEVICES
        assert warm_speedup >= MIN_WARM_SPEEDUP
        assert retest_speedup >= MIN_RETEST_SPEEDUP
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


# ---------------------------------------------------------------------------
# Store at production scale (PR 8): worker-direct writes, the persistent
# index, shard compaction.
# ---------------------------------------------------------------------------

#: The production-scale write workload: one 96-device lot.
N_LOT_DEVICES = 96
LOT_SAMPLES = 2**15
LOT_NPERSEG = 2048

#: Synthetic entry count for the enumeration benchmark (>= 10k per the
#: acceptance bar; payload bytes are irrelevant to ls, only file count).
N_INDEX_ENTRIES = 10_000

#: Worker-direct warm writes must beat parent-funneled writes by this
#: factor.  Serialization is pure CPU, so the bar only binds on
#: multi-core hosts; single-core runners still assert bit-identity.
MIN_DIRECT_SPEEDUP = float(
    os.environ.get("BENCH_STORE_MIN_DIRECT_SPEEDUP", "1.3")
)

#: Enumerating >= 10k entries through the persistent index must beat
#: the tree walk by this factor (asserted on every host).
MIN_INDEX_SPEEDUP = float(
    os.environ.get("BENCH_STORE_MIN_INDEX_SPEEDUP", "10")
)


def _scale_lot_items():
    """``(key, result)`` pairs for one measured 96-device lot."""
    from repro.engine import plan_measurements
    from repro.experiments.production import _draw_lot, _lot_tasks
    from repro.store import measurement_key

    true_values, device_rngs = _draw_lot(8.0, 0.8, N_LOT_DEVICES, SEED)
    tasks = _lot_tasks(
        true_values,
        [LOT_SAMPLES] * N_LOT_DEVICES,
        [LOT_NPERSEG] * N_LOT_DEVICES,
        device_rngs,
    )
    # Keys read generator state without consuming it, so they must be
    # fingerprinted before the plan acquires.
    keys = [
        measurement_key(t.source, t.estimator, t.rng) for t in tasks
    ]
    results = plan_measurements(tasks).run(
        MeasurementEngine(backend="vectorized")
    )
    return list(zip(keys, results))


def test_store_scale(benchmark, emit):
    from repro.engine import WorkerPool
    from repro.store.io import put_result_direct

    workdir = pathlib.Path(tempfile.mkdtemp(prefix="bench_store_scale_"))
    multicore = (os.cpu_count() or 1) > 1
    try:
        items = run_once(benchmark, _scale_lot_items)

        # --- worker-direct vs parent-funneled warm writes ------------
        funneled = ResultStore(workdir / "funneled")
        _, t_funneled = _time(
            lambda: [funneled.put_result(k, r) for k, r in items]
        )

        direct = ResultStore(workdir / "direct")
        pool = WorkerPool(store_root=str(direct.root))
        try:
            pool.map(put_result_direct, items[:2])  # spawn off the clock
            direct.gc(all_entries=True)
            _, t_direct = _time(lambda: pool.map(put_result_direct, items))
        finally:
            pool.close()
        direct_speedup = t_funneled / t_direct

        # Transport must be invisible on disk: every worker-written
        # payload is bit-identical to its parent-funneled twin.
        walk = funneled.index()
        assert len(walk) == N_LOT_DEVICES
        assert all(
            direct.read_payload_bytes(e.kind, e.key) == e.read_bytes()
            for e in walk
        )
        assert direct.verify_index()["consistent"]

        # --- indexed enumeration vs tree walk at 10k entries ---------
        big = ResultStore(workdir / "big")
        rng = np.random.default_rng(SEED)
        for raw in rng.integers(0, 256, size=(N_INDEX_ENTRIES, 32)):
            key = bytes(raw.tolist()).hex()
            path = big._path("results", key)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_bytes(b"x" * 64)
        big.rebuild_index()
        # Best-of-3 on both legs: single-shot timings at this scale are
        # dominated by scheduler noise, not by the code under test.
        walk_big, t_walk = min(
            (_time(big.index) for _ in range(3)), key=lambda rt: rt[1]
        )
        fast_big, t_indexed = min(
            (_time(big.load_index) for _ in range(3)), key=lambda rt: rt[1]
        )
        index_speedup = t_walk / t_indexed
        assert len(walk_big) == N_INDEX_ENTRIES
        assert {(e.kind, e.key, e.nbytes) for e in fast_big} == {
            (e.kind, e.key, e.nbytes) for e in walk_big
        }

        # --- shard compaction: fewer files, identical bytes ----------
        payloads = {
            e.key: big.read_payload_bytes(e.kind, e.key) for e in walk_big
        }
        files_before = len(list(big.root.glob("results/*/*.npz")))
        _, t_compact = _time(big.compact)
        files_after = len(
            list(big.root.glob("results/*/*.npz"))
        ) + len(list(big.root.glob("results/*/pack-*.pk")))
        assert files_after <= files_before // 2
        assert all(
            big.read_payload_bytes("results", k) == raw
            for k, raw in payloads.items()
        )

        rows = [
            [
                "parent-funneled warm writes",
                t_funneled,
                f"{N_LOT_DEVICES} payloads",
                "-",
            ],
            [
                "worker-direct warm writes",
                t_direct,
                f"{N_LOT_DEVICES} payloads",
                f"{direct_speedup:.2f}x",
            ],
            [
                "tree-walk enumeration",
                t_walk,
                f"{N_INDEX_ENTRIES} entries",
                "-",
            ],
            [
                "indexed enumeration",
                t_indexed,
                f"{N_INDEX_ENTRIES} entries",
                f"{index_speedup:.1f}x",
            ],
            [
                "shard compaction",
                t_compact,
                f"{files_before} -> {files_after} files",
                "-",
            ],
        ]
        emit(
            "store_scale",
            render_table(
                ["stage", "seconds", "detail", "speedup"],
                rows,
                title=(
                    f"Store at scale - {N_LOT_DEVICES}-device lot, "
                    f"{N_INDEX_ENTRIES}-entry index "
                    f"({os.cpu_count()} CPUs)"
                ),
            ),
        )

        bench_path = REPO_ROOT / "BENCH_engine.json"
        try:
            payload = json.loads(bench_path.read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            payload = {}  # self-heal a missing or truncated file
        payload["store_scale"] = {
            "n_cpus": os.cpu_count(),
            "env": envinfo(),
            "workload": {
                "n_devices": N_LOT_DEVICES,
                "n_samples": LOT_SAMPLES,
                "nperseg": LOT_NPERSEG,
                "n_index_entries": N_INDEX_ENTRIES,
            },
            "direct_writes": {
                "funneled_seconds": round(t_funneled, 4),
                "direct_seconds": round(t_direct, 4),
                "speedup": round(direct_speedup, 2),
                "min_speedup": MIN_DIRECT_SPEEDUP,
                "asserted": multicore,
                "bit_identical": True,
            },
            "indexed_ls": {
                "walk_seconds": round(t_walk, 5),
                "indexed_seconds": round(t_indexed, 5),
                "speedup": round(index_speedup, 1),
                "min_speedup": MIN_INDEX_SPEEDUP,
                "asserted": True,
            },
            "compaction": {
                "files_before": files_before,
                "files_after": files_after,
                "seconds": round(t_compact, 4),
                "payloads_identical": True,
            },
        }
        bench_path.write_text(json.dumps(payload, indent=2) + "\n")

        # Acceptance bars (ISSUE 8): indexed enumeration and compaction
        # bind everywhere; the worker-direct floor needs real cores.
        assert index_speedup >= MIN_INDEX_SPEEDUP
        if multicore:
            assert direct_speedup >= MIN_DIRECT_SPEEDUP
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
