"""Benchmark (ablation): NF estimation accuracy vs record length.

Quantifies why the paper captures 1e6 samples per state: the
reference-line estimate dominates the Y-factor variance and averages
down with the number of Welch segments.
"""

from conftest import run_once

from repro.experiments.record_length import run_record_length
from repro.reporting.tables import render_table


def test_record_length(benchmark, emit):
    result = run_once(
        benchmark,
        run_record_length,
        lengths=(2**15, 2**16, 2**17, 2**18, 2**19),
        n_trials=6,
        seed=2005,
    )
    emit(
        "record_length",
        render_table(
            ["samples/state", "trials", "NF mean (dB)", "NF std (dB)", "mean error (dB)"],
            [
                [p.n_samples, p.n_trials, p.nf_mean_db, p.nf_std_db, p.mean_error_db]
                for p in result.points
            ],
            title=(
                "Ablation - accuracy vs record length "
                f"(expected NF {result.expected_nf_db:.2f} dB)"
            ),
        ),
    )
    assert result.std_is_decreasing()
    # At the paper-scale record the scatter is a fraction of a dB.
    assert result.points[-1].nf_std_db < 0.5


def test_record_length_shape(benchmark, emit):
    # Scatter at the longest record must be well below the shortest.
    result = run_once(
        benchmark,
        run_record_length,
        lengths=(2**15, 2**19),
        n_trials=8,
        seed=7,
    )
    emit(
        "record_length_shape",
        render_table(
            ["samples/state", "NF std (dB)"],
            [[p.n_samples, p.nf_std_db] for p in result.points],
            title="Ablation - record-length end points",
        ),
    )
    assert result.points[-1].nf_std_db < 0.5 * result.points[0].nf_std_db
