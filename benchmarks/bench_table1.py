"""Benchmark: regenerate paper Table 1 (reference NF / F values)."""

from conftest import run_once

from repro.experiments.table1 import run_table1
from repro.reporting.tables import render_table


def test_table1(benchmark, emit):
    result = run_once(benchmark, run_table1)
    emit(
        "table1",
        render_table(
            ["NF (dB)", "F", "example"],
            [[row.nf_db, row.noise_factor, row.example] for row in result.rows],
            title="Table 1 - reference noise figure / noise factor values",
        ),
    )
    factors = [row.noise_factor for row in result.rows]
    assert factors[0] == 1.0
    assert abs(factors[1] - 2.0) < 1e-3
    assert abs(factors[2] - 10.0) < 1e-9
