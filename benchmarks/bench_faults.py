"""Benchmark (extension): fault-tolerance machinery overhead + chaos smoke.

Two measurements, merged into ``BENCH_engine.json`` under the
``"faults"`` key:

* **Fault-free overhead.**  The same planned production screen run
  plain and with the full hardening stack engaged (retry policy,
  injection hooks consulted per task and per store write, execution
  report assembled).  With no injector installed every hook is a
  single ``None`` check, so the hardened screen must cost within
  ``BENCH_FAULTS_MAX_OVERHEAD`` (default 5%) of the plain one —
  best-of-N timing on both sides to keep shared-runner noise out of
  the ratio.
* **Chaos smoke.**  The screen run under the ``transient`` fault plan
  (injected task exceptions, store truncation/corruption, shm publish
  failures) plus a resumed pass over the damaged store.  Acceptance
  bar: both faulted outcomes bit-identical to the clean reference and
  at least one fault actually injected.
"""

import json
import os
import pathlib
import shutil
import tempfile
import time

from conftest import envinfo, run_once

from repro.engine import MeasurementScheduler, ResultStore, RetryPolicy
from repro.experiments.production import run_production
from repro.faults import inject, resolve_plan
from repro.reporting.tables import render_table

REPO_ROOT = pathlib.Path(__file__).parent.parent

N_DEVICES = 8
N_SAMPLES = 2**16
NPERSEG = 4096
SEED = 2005
BEST_OF = 5

#: Hardened-vs-plain overhead ceiling on a clean (fault-free) screen;
#: shared CI runners can relax via environment.
MAX_OVERHEAD = float(os.environ.get("BENCH_FAULTS_MAX_OVERHEAD", "0.05"))

LOT = dict(
    n_devices=N_DEVICES,
    n_samples=N_SAMPLES,
    nperseg=NPERSEG,
    seed=SEED,
)


def _best_of(fn, n=BEST_OF):
    best = None
    result = None
    for _ in range(n):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def test_faults(benchmark, emit):
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="bench_faults_"))
    try:
        # --- fault-free overhead -------------------------------------
        plain, t_plain = _best_of(
            lambda: run_production(**LOT, multi_device_batch=True)
        )

        def hardened():
            with MeasurementScheduler(retry=RetryPolicy()) as sched:
                return run_production(**LOT, scheduler=sched, report=True)

        guarded = run_once(benchmark, hardened)
        guarded, t_guarded = _best_of(hardened)
        overhead = t_guarded / t_plain - 1.0
        clean_identical = guarded.measured_nf_db == plain.measured_nf_db
        assert guarded.run_report.ok
        assert sum(guarded.run_report.injections.values()) == 0

        # --- chaos smoke ---------------------------------------------
        plan = resolve_plan("transient", seed=3)
        store = ResultStore(workdir / "chaos")
        with inject(plan) as injector:
            with MeasurementScheduler(store=store) as sched:
                faulted = run_production(
                    **LOT, scheduler=sched, report=True
                )
                resumed = run_production(
                    **LOT, scheduler=sched, report=True, resume=True
                )
        chaos_identical = (
            faulted.measured_nf_db == plain.measured_nf_db
            and resumed.measured_nf_db == plain.measured_nf_db
        )
        n_injected = len(injector.log)

        rows = [
            ["plain screen", t_plain, "-", "-"],
            [
                "hardened screen",
                t_guarded,
                "retry policy + report",
                f"{overhead * 100:+.1f}%",
            ],
            [
                "chaos screen",
                "-",
                f"{n_injected} faults injected",
                "identical" if chaos_identical else "DIVERGED",
            ],
        ]
        emit(
            "faults",
            render_table(
                ["stage", "seconds", "detail", "vs plain"],
                rows,
                title=(
                    f"Fault tolerance - {N_DEVICES} x {N_SAMPLES} "
                    f"samples, nperseg {NPERSEG}, best of {BEST_OF}"
                ),
            ),
        )

        bench_path = REPO_ROOT / "BENCH_engine.json"
        try:
            payload = json.loads(bench_path.read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            payload = {}  # self-heal a missing or truncated file
        payload["faults"] = {
            "n_cpus": os.cpu_count(),
            "env": envinfo(),
            "workload": {
                "n_devices": N_DEVICES,
                "n_samples": N_SAMPLES,
                "nperseg": NPERSEG,
                "best_of": BEST_OF,
            },
            "overhead": {
                "plain_seconds": round(t_plain, 4),
                "hardened_seconds": round(t_guarded, 4),
                "overhead_fraction": round(overhead, 4),
                "identical": bool(clean_identical),
            },
            "chaos": {
                "plan": "transient",
                "n_injected": n_injected,
                "injections_by_site": injector.counts(),
                "identical": bool(chaos_identical),
                "retries": faulted.run_report.retries
                + resumed.run_report.retries,
                "quarantined": len(store.quarantine_log),
            },
        }
        bench_path.write_text(json.dumps(payload, indent=2) + "\n")

        # Acceptance bars (ISSUE 6): the hardening stack is free on
        # clean runs, and injected faults never change the answer.
        assert clean_identical
        assert chaos_identical
        assert n_injected > 0
        assert overhead <= MAX_OVERHEAD
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
