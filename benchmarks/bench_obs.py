"""Benchmark: observability is provably inert (ISSUE 10 acceptance).

Two measurements, merged into ``BENCH_engine.json`` under the
``"obs"`` key:

* **Macro overhead.**  The same paper-scale batched engine run
  (1e6-sample records, FFT size 1e4, hot/cold pairs) with the metrics
  registry and trace ring disabled vs enabled, best of ``BEST_OF``
  rounds each.  The acceptance bar is twofold: the noise-figure values
  must be *bit-identical* across the two modes (telemetry must never
  perturb the data path), and the enabled run must cost within
  ``BENCH_OBS_MAX_OVERHEAD`` (default 2%) of the disabled one.
* **Hook micro-cost.**  The per-call price of ``obs.inc`` /
  ``obs.observe`` in both states, in nanoseconds.  The disabled path is
  the one that rides in every hot loop of the engine, so its number is
  the headline; the enabled path shows what turning telemetry on buys
  into.
"""

import json
import os
import pathlib
import time

from conftest import envinfo, run_once

from repro import obs
from repro.engine import MeasurementEngine
from repro.experiments.matlab_sim import MatlabSimConfig, MatlabSimulation
from repro.reporting.tables import render_table

REPO_ROOT = pathlib.Path(__file__).parent.parent

N_REPEATS = 4
BEST_OF = 3
MICRO_CALLS = 200_000
PAPER_CONFIG = MatlabSimConfig()  # 1e6 samples, nperseg 1e4

#: Enabled-vs-disabled overhead ceiling on the macro run; shared CI
#: runners can relax via environment (precedent: BENCH_SERVICE_*).
MAX_OVERHEAD = float(os.environ.get("BENCH_OBS_MAX_OVERHEAD", "0.02"))


def _run_batch(sim, estimator, seed):
    engine = MeasurementEngine()
    results = engine.run_batch(sim, estimator, N_REPEATS, rng=seed)
    return [r.noise_figure_db for r in results]


def _best_of(fn, *args):
    best, values = None, None
    for _ in range(BEST_OF):
        start = time.perf_counter()
        values = fn(*args)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return values, best


def _micro_ns(calls=MICRO_CALLS):
    """Per-call cost of the two hot hooks, in nanoseconds."""
    start = time.perf_counter()
    for _ in range(calls):
        obs.inc("bench.micro")
        obs.observe("bench.micro_seconds", 0.001)
    return (time.perf_counter() - start) / (2 * calls) * 1e9


def test_obs_inert(benchmark, emit):
    sim = MatlabSimulation(PAPER_CONFIG)
    estimator = sim.make_estimator()
    seed = 2005
    was_enabled = obs.enabled()
    try:
        obs.disable()
        nf_off, t_off = _best_of(_run_batch, sim, estimator, seed)
        ns_off = _micro_ns()

        obs.enable()
        obs.reset()
        nf_on = run_once(benchmark, _run_batch, sim, estimator, seed)
        _, t_on = _best_of(_run_batch, sim, estimator, seed)
        ns_on = _micro_ns()
        snap = obs.snapshot()
        n_series = (
            len(snap["counters"])
            + len(snap["gauges"])
            + len(snap["histograms"])
        )
    finally:
        obs.enable() if was_enabled else obs.disable()

    overhead = t_on / t_off - 1.0
    identical = nf_on == nf_off

    rows = [
        ["engine, obs off", f"{t_off:.3f}", f"{ns_off:.0f} ns/hook", "-"],
        [
            "engine, obs on",
            f"{t_on:.3f}",
            f"{ns_on:.0f} ns/hook",
            f"{overhead * 100:+.2f}%",
        ],
        [
            "bit-identity",
            "-",
            f"{n_series} series recorded",
            "identical" if identical else "DIVERGED",
        ],
    ]
    emit(
        "obs",
        render_table(
            ["mode", "seconds", "hook cost", "vs off"],
            rows,
            title=(
                f"Observability overhead - {2 * N_REPEATS} records of "
                f"{sim.config.n_samples:.0e} samples, best of {BEST_OF}"
            ),
        ),
    )

    bench_path = REPO_ROOT / "BENCH_engine.json"
    try:
        payload = json.loads(bench_path.read_text())
    except (FileNotFoundError, json.JSONDecodeError):
        payload = {}  # self-heal a missing or truncated file
    payload["obs"] = {
        "n_cpus": os.cpu_count(),
        "env": envinfo(),
        "workload": {
            "n_samples": sim.config.n_samples,
            "nperseg": sim.config.nperseg,
            "n_repeats": N_REPEATS,
            "best_of": BEST_OF,
        },
        "macro": {
            "off_seconds": round(t_off, 4),
            "on_seconds": round(t_on, 4),
            "overhead_fraction": round(overhead, 4),
            "bit_identical": bool(identical),
            "series_recorded": n_series,
        },
        "micro_ns_per_hook": {
            "disabled": round(ns_off, 1),
            "enabled": round(ns_on, 1),
        },
    }
    bench_path.write_text(json.dumps(payload, indent=2) + "\n")

    # Acceptance bars (ISSUE 10): telemetry never perturbs the data
    # path and costs (near) nothing on it.
    assert identical
    assert overhead <= MAX_OVERHEAD
