"""Benchmark (extension): batched measurement engine throughput.

Measures the full paper-scale measurement pipeline (1e6-sample records,
FFT size 1e4, hot/cold pairs) in four modes:

* ``seed_serial`` — a faithful replica of the seed implementation's
  serial path: the reference waveform re-rendered on every acquisition,
  the ``np.unique`` bitstream check, and the per-segment Python Welch
  loop;
* ``serial`` — the current serial path (cached reference, vectorized
  bitstream check, blocked batched Welch);
* ``engine`` — :class:`repro.engine.MeasurementEngine` with all records
  stacked into one batch;
* ``engine_mp`` — the engine's ``ProcessPoolExecutor`` backend fanning
  repeats over worker processes (only meaningful on multi-core hosts;
  the JSON records the CPU count alongside).

All modes must agree: bitstreams are bit-exact across paths and PSDs
match the loop implementation to <= 1e-10.  Results land in
``BENCH_engine.json`` at the repo root so the perf trajectory is
tracked in git from this PR onward.
"""

import json
import os
import pathlib
import time

import numpy as np

from conftest import envinfo, run_once

from repro.core.bist import OneBitNoiseFigureBIST
from repro.digitizer.digitizer import OneBitDigitizer
from repro.dsp.spectrum import Spectrum
from repro.dsp.windows import get_window, window_gains
from repro.engine import MeasurementEngine
from repro.experiments.matlab_sim import MatlabSimConfig, MatlabSimulation
from repro.reporting.tables import render_table
from repro.signals.random import make_rng, spawn_rngs
from repro.signals.sources import GaussianNoiseSource, SquareSource

REPO_ROOT = pathlib.Path(__file__).parent.parent

N_REPEATS = 4
PAPER_CONFIG = MatlabSimConfig()  # 1e6 samples, nperseg 1e4


def seed_loop_welch(samples, nperseg, fs, window="hann", overlap=0.5):
    """The seed's per-segment Welch loop (detrend on), kept verbatim."""
    step = max(1, int(round(nperseg * (1.0 - overlap))))
    win = get_window(window, nperseg)
    n_segments = 1 + (samples.size - nperseg) // step
    acc = np.zeros(nperseg // 2 + 1)
    for k in range(n_segments):
        seg = samples[k * step : k * step + nperseg]
        seg = seg - np.mean(seg)
        spectrum = np.fft.rfft(seg * win)
        psd = (np.abs(spectrum) ** 2) / (fs * np.sum(win**2))
        if nperseg % 2 == 0:
            psd[1:-1] *= 2.0
        else:
            psd[1:] *= 2.0
        acc += psd
    return acc / n_segments


def _seed_bitstream(sim, state, rng):
    """Seed-style acquisition: reference re-rendered on every call."""
    c = sim.config
    gen = make_rng(rng)
    noise = GaussianNoiseSource(sim.noise_rms(state)).render(
        c.n_samples, c.sample_rate_hz, gen
    )
    reference = SquareSource(
        c.reference_frequency_hz, sim.reference_amplitude_v
    ).render(c.n_samples, c.sample_rate_hz)
    return OneBitDigitizer().digitize(noise, reference, gen)


def _seed_spectrum(samples, config):
    win = get_window("hann", config.nperseg)
    coherent, noise = window_gains(win)
    enbw = config.sample_rate_hz * noise / (coherent**2) / config.nperseg
    psd = seed_loop_welch(samples, config.nperseg, config.sample_rate_hz)
    freqs = np.fft.rfftfreq(config.nperseg, d=1.0 / config.sample_rate_hz)
    return Spectrum(freqs, psd, enbw_hz=enbw)


def run_seed_serial(sim, estimator, seed):
    """The seed's serial repeat loop, replicated end to end."""
    values = []
    for child in spawn_rngs(make_rng(seed), N_REPEATS):
        rng_hot, rng_cold = spawn_rngs(child, 2)
        bits_hot = _seed_bitstream(sim, "hot", rng_hot)
        bits_cold = _seed_bitstream(sim, "cold", rng_cold)
        for bits in (bits_hot, bits_cold):
            unique = np.unique(bits.samples)  # the seed's O(n log n) check
            assert unique.size <= 2
        result = estimator.estimate_from_spectra(
            _seed_spectrum(bits_hot.samples, sim.config),
            _seed_spectrum(bits_cold.samples, sim.config),
        )
        values.append(result.noise_figure_db)
    return values


def run_serial(sim, estimator, seed):
    """The current (post-engine) serial path."""
    values = []
    for child in spawn_rngs(make_rng(seed), N_REPEATS):
        result = estimator.measure(lambda s, r: sim.bitstream(s, r), rng=child)
        values.append(result.noise_figure_db)
    return values


def run_engine(sim, estimator, seed):
    engine = MeasurementEngine()
    results = engine.run_batch(sim, estimator, N_REPEATS, rng=seed)
    return [r.noise_figure_db for r in results]


def _measure_one(sim, rng):
    """Process-backend worker: one two-state measurement."""
    estimator = sim.make_estimator()
    return MeasurementEngine().measure(sim, estimator, rng=rng).noise_figure_db


def run_engine_mp(sim, estimator, seed):
    repeat_rngs = spawn_rngs(make_rng(seed), N_REPEATS)
    with MeasurementEngine(backend="process") as engine:
        return engine.map_sweep(
            _measure_one, [sim] * N_REPEATS, rngs=repeat_rngs
        )


def _time(fn, *args):
    start = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - start


def test_engine(benchmark, emit):
    sim = MatlabSimulation(PAPER_CONFIG)
    estimator = sim.make_estimator()
    seed = 2005
    records = 2 * N_REPEATS

    # Correctness first: one record's batched PSD vs the seed loop.
    bits, _ = sim.acquire_bitstreams(
        ("hot",), [spawn_rngs(make_rng(seed), 1)[0]]
    )
    engine_psd = MeasurementEngine().spectra_of(
        bits, sim.config.sample_rate_hz, estimator
    ).psd[0]
    loop_psd = seed_loop_welch(
        bits[0], sim.config.nperseg, sim.config.sample_rate_hz
    )
    psd_diff = float(np.max(np.abs(engine_psd - loop_psd) / np.max(loop_psd)))
    assert psd_diff <= 1e-10

    nf_seed, t_seed = _time(run_seed_serial, sim, estimator, seed)
    nf_serial, t_serial = _time(run_serial, sim, estimator, seed)
    nf_engine = run_once(benchmark, run_engine, sim, estimator, seed)
    _, t_engine = _time(run_engine, sim, estimator, seed)
    nf_mp, t_mp = _time(run_engine_mp, sim, estimator, seed)

    nf_diff = max(
        abs(a - b)
        for other in (nf_serial, nf_engine, nf_mp)
        for a, b in zip(nf_seed, other)
    )
    assert nf_diff <= 1e-9

    modes = {
        "seed_serial": t_seed,
        "serial": t_serial,
        "engine": t_engine,
        "engine_mp": t_mp,
    }
    rows = [
        [
            name,
            seconds,
            records / seconds,
            modes["seed_serial"] / seconds,
        ]
        for name, seconds in modes.items()
    ]
    emit(
        "engine",
        render_table(
            ["mode", "seconds", "records/s", "speedup vs seed"],
            rows,
            title=(
                f"Engine throughput - {records} records of "
                f"{sim.config.n_samples:.0e} samples, nperseg "
                f"{sim.config.nperseg:.0e}, {os.cpu_count()} CPU(s)"
            ),
        ),
    )

    bench_path = REPO_ROOT / "BENCH_engine.json"
    try:
        payload = json.loads(bench_path.read_text())
    except (FileNotFoundError, json.JSONDecodeError):
        payload = {}  # self-heal a missing or truncated file
    # Merge so sections owned by other benches (e.g. "packed", written
    # by bench_packed.py) survive a rerun of this one.
    payload.update({
        "workload": {
            "n_samples": sim.config.n_samples,
            "nperseg": sim.config.nperseg,
            "n_repeats": N_REPEATS,
            "n_records": records,
        },
        "n_cpus": os.cpu_count(),
        "env": envinfo(),
        "psd_max_rel_diff_vs_loop": psd_diff,
        "nf_max_abs_diff_db": nf_diff,
        "modes": {
            name: {
                "seconds": round(seconds, 4),
                "records_per_sec": round(records / seconds, 3),
                "speedup_vs_seed_serial": round(
                    modes["seed_serial"] / seconds, 3
                ),
            }
            for name, seconds in modes.items()
        },
    })
    bench_path.write_text(json.dumps(payload, indent=2) + "\n")

    # The engine must beat the seed serial path decisively.
    assert modes["seed_serial"] / modes["engine"] > 1.5
    assert all(r is not None for r in nf_engine)
