"""Benchmark: the supervised measurement service (daemon path).

Three measurements, merged into ``BENCH_engine.json`` under the
``"service"`` key:

* **Service-path overhead.**  The same production lot run directly
  (``run_production`` with a scheduler + store) and through the full
  daemon path — socket round trip, admission control, write-ahead
  journal append, executor hand-off.  Fresh seeds per round keep the
  store cache out of the ratio; the daemon path must cost within
  ``BENCH_SERVICE_MAX_OVERHEAD`` (default 5%) of the direct one, and
  the lot answer must be bit-identical across both paths.
* **Sustained throughput.**  A burst of distinct interactive
  ``measure`` jobs submitted back to back through one daemon,
  reported as jobs/second.
* **Kill/recovery.**  A real ``repro.cli serve`` subprocess is
  SIGKILLed mid-lot; the bar reports how long a restarted daemon
  takes to come up, replay the journal and land the *same* lot answer
  (store resume + journal replay), versus the uninterrupted runtime.
"""

import json
import os
import pathlib
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time

from conftest import envinfo, run_once

from repro.engine import MeasurementScheduler, ResultStore
from repro.experiments.production import run_production
from repro.reporting.tables import render_table
from repro.service import (
    MeasurementService,
    ServiceClient,
    ServiceConfig,
    JobSpec,
    wait_for_server,
)

REPO_ROOT = pathlib.Path(__file__).parent.parent

N_DEVICES = 8
N_SAMPLES = 2**16
NPERSEG = 4096
SEED = 2005
BEST_OF = 3
N_THROUGHPUT_JOBS = 8

#: Daemon-vs-direct overhead ceiling on the lot path; shared CI
#: runners can relax via environment.
MAX_OVERHEAD = float(os.environ.get("BENCH_SERVICE_MAX_OVERHEAD", "0.05"))


def _lot_params(seed):
    return dict(
        n_devices=N_DEVICES,
        n_samples=N_SAMPLES,
        nperseg=NPERSEG,
        seed=seed,
    )


def _start_inprocess_daemon(store_root):
    config = ServiceConfig(
        store_root=str(store_root),
        backend="serial",
        journal_fsync=False,
    )
    service = MeasurementService(config)
    import queue as queue_mod

    ready = queue_mod.Queue()
    thread = threading.Thread(
        target=lambda: service.run(ready.put), daemon=True
    )
    thread.start()
    endpoint = ready.get(timeout=30.0)
    wait_for_server(endpoint["socket"], timeout_s=10.0)
    return service, thread, endpoint["socket"]


def _start_subprocess_daemon(store_root):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--store",
            str(store_root),
            "--backend",
            "serial",
            "--no-fsync",
            "--max-group-devices",
            "2",
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.STDOUT,
        env=env,
    )
    wait_for_server(str(store_root / "service.sock"), timeout_s=30.0)
    return proc


def test_service(benchmark, emit):
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="bench_service_"))
    try:
        # --- service-path overhead -----------------------------------
        # Fresh seed per round on both paths: every lot is a cache
        # miss, so the ratio isolates the daemon machinery itself.
        t_direct = None
        direct_nf = None
        for round_i in range(BEST_OF):
            store = ResultStore(workdir / f"direct-{round_i}")
            start = time.perf_counter()
            with MeasurementScheduler(store=store) as sched:
                result = run_production(
                    **_lot_params(SEED + round_i),
                    scheduler=sched,
                    resume=True,
                    report=True,
                    max_group_devices=8,
                )
            elapsed = time.perf_counter() - start
            t_direct = (
                elapsed if t_direct is None else min(t_direct, elapsed)
            )
            if round_i == 0:
                direct_nf = [float(v) for v in result.measured_nf_db]

        service, thread, socket_path = _start_inprocess_daemon(
            workdir / "daemon-store"
        )
        try:
            t_service = None
            service_nf = None

            def one_lot(seed):
                with ServiceClient(socket_path, timeout_s=600.0) as client:
                    return client.submit(
                        JobSpec(kind="lot", params=_lot_params(seed)),
                        wait=True,
                        wait_timeout_s=600.0,
                    )

            run_once(benchmark, one_lot, SEED + 100)
            for round_i in range(BEST_OF):
                start = time.perf_counter()
                ack = one_lot(SEED + round_i)
                elapsed = time.perf_counter() - start
                assert ack["job"]["state"] == "ok"
                t_service = (
                    elapsed
                    if t_service is None
                    else min(t_service, elapsed)
                )
                if round_i == 0:
                    service_nf = ack["job"]["result"]["measured_nf_db"]
            overhead = t_service / t_direct - 1.0
            identical = service_nf == direct_nf

            # --- sustained throughput --------------------------------
            start = time.perf_counter()
            for job_i in range(N_THROUGHPUT_JOBS):
                with ServiceClient(socket_path, timeout_s=120.0) as client:
                    ack = client.submit(
                        JobSpec(
                            kind="measure",
                            params={
                                "seed": 9000 + job_i,
                                "n_samples": 2**14,
                                "nperseg": 2048,
                            },
                        ),
                        wait=True,
                        wait_timeout_s=120.0,
                    )
                assert ack["job"]["state"] == "ok"
            t_burst = time.perf_counter() - start
            throughput = N_THROUGHPUT_JOBS / t_burst
        finally:
            service.request_drain()
            thread.join(timeout=60.0)

        # --- kill / recovery -----------------------------------------
        kill_store = workdir / "kill-store"
        kill_spec = JobSpec(kind="lot", params=_lot_params(SEED + 500))
        proc = _start_subprocess_daemon(kill_store)
        try:
            with ServiceClient(
                str(kill_store / "service.sock"), timeout_s=30.0
            ) as client:
                client.submit(kill_spec)
            time.sleep(1.0)
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30.0)
        recovery_start = time.perf_counter()
        proc = _start_subprocess_daemon(kill_store)
        try:
            with ServiceClient(
                str(kill_store / "service.sock"), timeout_s=600.0
            ) as client:
                ack = client.submit_resilient(
                    kill_spec, wait=True, wait_timeout_s=600.0
                )
            recovery_s = time.perf_counter() - recovery_start
            assert ack["job"]["state"] == "ok"
            recovered_nf = ack["job"]["result"]["measured_nf_db"]
        finally:
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=60.0)
        recovery_identical = recovered_nf == [
            float(v)
            for v in run_production(**_lot_params(SEED + 500)).measured_nf_db
        ]

        rows = [
            ["direct lot", f"{t_direct:.3f}", "-", "-"],
            [
                "service lot",
                f"{t_service:.3f}",
                "socket + journal + queue",
                f"{overhead * 100:+.1f}%",
            ],
            [
                "measure burst",
                f"{t_burst:.3f}",
                f"{N_THROUGHPUT_JOBS} jobs",
                f"{throughput:.1f} jobs/s",
            ],
            [
                "kill/recovery",
                f"{recovery_s:.3f}",
                "SIGKILL mid-lot, restart, resume",
                "identical" if recovery_identical else "DIVERGED",
            ],
        ]
        emit(
            "service",
            render_table(
                ["stage", "seconds", "detail", "vs direct"],
                rows,
                title=(
                    f"Measurement service - {N_DEVICES} x {N_SAMPLES} "
                    f"samples, nperseg {NPERSEG}, best of {BEST_OF}"
                ),
            ),
        )

        bench_path = REPO_ROOT / "BENCH_engine.json"
        try:
            payload = json.loads(bench_path.read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            payload = {}  # self-heal a missing or truncated file
        payload["service"] = {
            "n_cpus": os.cpu_count(),
            "env": envinfo(),
            "workload": {
                "n_devices": N_DEVICES,
                "n_samples": N_SAMPLES,
                "nperseg": NPERSEG,
                "best_of": BEST_OF,
            },
            "overhead": {
                "direct_seconds": round(t_direct, 4),
                "service_seconds": round(t_service, 4),
                "overhead_fraction": round(overhead, 4),
                "identical": bool(identical),
            },
            "throughput": {
                "n_jobs": N_THROUGHPUT_JOBS,
                "burst_seconds": round(t_burst, 4),
                "jobs_per_second": round(throughput, 2),
            },
            "recovery": {
                "recovery_seconds": round(recovery_s, 4),
                "identical": bool(recovery_identical),
            },
        }
        bench_path.write_text(json.dumps(payload, indent=2) + "\n")

        # Acceptance bars (ISSUE 9): the daemon path is nearly free and
        # a SIGKILLed daemon recovers to the bit-identical answer.
        assert identical
        assert recovery_identical
        assert overhead <= MAX_OVERHEAD
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
