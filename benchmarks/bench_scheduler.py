"""Benchmark (extension): measurement scheduler — pool reuse & planner.

Two measurements, merged into ``BENCH_engine.json`` under the
``"scheduler"`` key:

* **Pool reuse.**  A multi-sweep session (several ``map_sweep`` calls
  of small analysis tasks — the production-screening shape: many quick
  fan-outs, not one monolith) run twice: once the old way, a fresh
  ``ProcessPoolExecutor`` per call, and once on a persistent
  :class:`~repro.engine.WorkerPool` spawned exactly once.  The
  acceptance bar is >= 2x for the persistent session — per-call pool
  spawn is pure overhead once the pool outlives the call.
* **Planned heterogeneous screen.**  A mixed-configuration device lot
  (two record lengths) measured per device versus one
  ``MeasurementScheduler.run`` that plans the lot into two compatible
  sub-batches.  Results must be bit-identical; the planned run shares
  one digitize + batched Welch pass per sub-batch.
"""

import json
import os
import pathlib
import time

from conftest import envinfo, run_once

from repro.dsp.psd import welch
from repro.engine import (
    MeasurementEngine,
    MeasurementScheduler,
    MeasurementTask,
    WorkerPool,
    run_with_processes,
)
from repro.experiments.matlab_sim import MatlabSimConfig, MatlabSimulation
from repro.reporting.tables import render_table
from repro.signals.random import make_rng, spawn_rngs

REPO_ROOT = pathlib.Path(__file__).parent.parent

N_SWEEPS = 10         # map_sweep calls per session
TASKS_PER_SWEEP = 4   # tasks per call
SWEEP_SAMPLES = 10_000  # per-task record length (small, sweep-shaped)

#: Acceptance floor for the pool-reuse speedup.  2x is the bar the
#: scheduler PR claims (and dedicated hosts measure ~3-4.5x run to run); shared CI
#: runners can override via the environment so a noisy neighbor cannot
#: fail an unrelated build on wall clock alone.
MIN_POOL_SPEEDUP = float(os.environ.get("BENCH_SCHEDULER_MIN_SPEEDUP", "2.0"))

MIXED_LOT = [(120_000, 3000)] * 4 + [(60_000, 3000)] * 4


def analyze_record(task, rng):
    """Sweep worker: one small Welch analysis of a fresh record."""
    n_samples, nperseg = task
    record = rng.normal(size=n_samples)
    return float(welch(record, nperseg=nperseg, sample_rate=10_000.0).psd.sum())


def session_per_call_pools(seed):
    """The pre-scheduler behavior: one fresh pool per sweep call."""
    out = []
    gen = make_rng(seed)
    for _ in range(N_SWEEPS):
        rngs = spawn_rngs(gen, TASKS_PER_SWEEP)
        out.append(
            run_with_processes(
                analyze_record,
                [(SWEEP_SAMPLES, 2000)] * TASKS_PER_SWEEP,
                rngs,
                max_workers=os.cpu_count() or 1,
            )
        )
    return out


def session_persistent_pool(seed, engine):
    """The same session on one persistent worker pool."""
    out = []
    gen = make_rng(seed)
    for _ in range(N_SWEEPS):
        rngs = spawn_rngs(gen, TASKS_PER_SWEEP)
        out.append(
            engine.map_sweep(
                analyze_record,
                [(SWEEP_SAMPLES, 2000)] * TASKS_PER_SWEEP,
                rngs=rngs,
            )
        )
    return out


def _mixed_tasks(seed):
    sims = [
        MatlabSimulation(MatlabSimConfig(n_samples=n, nperseg=p))
        for n, p in MIXED_LOT
    ]
    rngs = spawn_rngs(make_rng(seed), len(sims))
    return [
        MeasurementTask(sim, sim.make_estimator(), rng)
        for sim, rng in zip(sims, rngs)
    ]


def screen_per_device(seed):
    engine = MeasurementEngine()
    return [
        engine.measure(t.source, t.estimator, rng=t.rng).noise_figure_db
        for t in _mixed_tasks(seed)
    ]


def screen_planned(seed):
    return [
        r.noise_figure_db
        for r in MeasurementScheduler().run(_mixed_tasks(seed))
    ]


def _time(fn, *args):
    start = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - start


def _best_of(n, fn, *args):
    """Best-of-n wall clock: robust to load spikes on shared CI hosts."""
    best = None
    result = None
    for _ in range(n):
        result, seconds = _time(fn, *args)
        best = seconds if best is None else min(best, seconds)
    return result, best


def test_scheduler(benchmark, emit):
    seed = 2005

    # --- pool reuse across a multi-sweep session --------------------
    # Warm one throwaway pool first so OS-level first-fork costs (page
    # cache, COW setup) don't bias whichever session runs first.
    with WorkerPool(max_workers=1) as warm:
        warm.map(abs, [-1])

    per_call, t_per_call = _best_of(2, session_per_call_pools, seed)
    with MeasurementEngine(backend="process") as engine:
        persistent = run_once(
            benchmark, session_persistent_pool, seed, engine
        )
        _, t_persistent = _best_of(2, session_persistent_pool, seed, engine)
        spawns = engine.worker_pool.spawn_count
    assert persistent == per_call  # same generators -> identical sweeps
    pool_speedup = t_per_call / t_persistent

    # --- planned heterogeneous screen vs per-device measurement -----
    per_device, t_per_device = _best_of(2, screen_per_device, seed)
    planned, t_planned = _best_of(2, screen_planned, seed)
    nf_diff = max(abs(a - b) for a, b in zip(per_device, planned))
    assert nf_diff == 0.0  # planner contract: bit-identical
    plan = MeasurementScheduler().plan(_mixed_tasks(seed))
    screen_speedup = t_per_device / t_planned

    rows = [
        [
            "per-call pools",
            t_per_call,
            N_SWEEPS,
            f"{N_SWEEPS} spawns",
        ],
        [
            "persistent pool",
            t_persistent,
            N_SWEEPS,
            f"{spawns} spawn ({pool_speedup:.1f}x)",
        ],
        [
            "per-device screen",
            t_per_device,
            len(MIXED_LOT),
            "-",
        ],
        [
            "planned screen",
            t_planned,
            len(MIXED_LOT),
            f"{plan.n_groups} groups ({screen_speedup:.2f}x)",
        ],
    ]
    emit(
        "scheduler",
        render_table(
            ["mode", "seconds", "calls/devices", "pool spawns / groups"],
            rows,
            title=(
                f"Scheduler - {N_SWEEPS}x{TASKS_PER_SWEEP}-task sweep "
                f"session & {len(MIXED_LOT)}-device mixed-config screen, "
                f"{os.cpu_count()} CPU(s)"
            ),
        ),
    )

    bench_path = REPO_ROOT / "BENCH_engine.json"
    try:
        payload = json.loads(bench_path.read_text())
    except (FileNotFoundError, json.JSONDecodeError):
        payload = {}  # self-heal a missing or truncated file
    payload["scheduler"] = {
        "n_cpus": os.cpu_count(),
        "env": envinfo(),
        "pool_reuse": {
            "n_sweeps": N_SWEEPS,
            "tasks_per_sweep": TASKS_PER_SWEEP,
            "per_call_pool_seconds": round(t_per_call, 4),
            "persistent_pool_seconds": round(t_persistent, 4),
            "persistent_pool_spawns": spawns,
            "speedup": round(pool_speedup, 2),
        },
        "planned_screen": {
            "n_devices": len(MIXED_LOT),
            "n_plan_groups": plan.n_groups,
            "per_device_seconds": round(t_per_device, 4),
            "planned_seconds": round(t_planned, 4),
            "speedup": round(screen_speedup, 2),
            "nf_max_abs_diff_db": nf_diff,
        },
    }
    bench_path.write_text(json.dumps(payload, indent=2) + "\n")

    # Acceptance: reusing the pool must amortize spawn overhead across
    # the session (>= 2x on a quiet host; floor overridable for noisy
    # shared runners).
    assert spawns == 1
    assert pool_speedup >= MIN_POOL_SPEEDUP
