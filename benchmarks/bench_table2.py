"""Benchmark: regenerate paper Table 2 (noise power ratio, three methods).

Paper values for Th=10000 K, Tc=1000 K (implied F=10 DUT):

    Mean square ratio              3.4866   F=10.03   NF=10.01
    PSD ratio                      3.4766   F=10.08   NF=10.03
    1-bit PSD ratio (ref excl.)    3.5620   F= 9.66   NF= 9.85
"""

from conftest import run_once

from repro.experiments.table2 import run_table2
from repro.reporting.tables import render_table


def test_table2(benchmark, emit):
    # Paper parameters: 1e6 samples, FFT size 1e4.
    result = run_once(benchmark, run_table2, seed=2005)
    emit(
        "table2",
        render_table(
            ["method", "noise power ratio", "F", "NF (dB)", "error vs true (%)"],
            [
                [r.method, r.power_ratio, r.noise_factor, r.nf_db, r.ratio_error_pct]
                for r in result.rows
            ],
            title=(
                "Table 2 - noise power ratio for Th=10000K, Tc=1000K "
                f"(true ratio {result.true_power_ratio:.4f}, true NF "
                f"{result.true_nf_db:.2f} dB)"
            ),
        ),
    )
    # Shape: every method recovers ~NF 10 dB; the 1-bit method stays
    # within a few percent of the true ratio (paper: 2.5 %).
    for row in result.rows:
        assert abs(row.nf_db - 10.0) < 0.5, row.method
    onebit = result.row("onebit_psd_ratio_excluding_reference")
    assert abs(onebit.ratio_error_pct) < 3.0
