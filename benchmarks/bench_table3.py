"""Benchmark: regenerate paper Table 3 (four-opamp prototype NF).

Paper values (T0=290 K, Th=2900 K):

    Opamp    Expected   Measured
    OP27     3.7        3.69
    OP07     6.5        4.841
    TL081    10.1       9.698
    CA3140   16.2       14.02

"paper" mode synthesizes opamps matching the published expected column
(see DESIGN.md section 2) and re-measures them with the 1-bit BIST; the
paper's own acceptance envelope is a 2 dB maximum absolute error.
"""

from conftest import run_once

from repro.experiments.table3 import run_table3
from repro.reporting.tables import render_table


def test_table3_paper_mode(benchmark, emit):
    result = run_once(
        benchmark, run_table3, mode="paper", n_samples=2**20, seed=2005
    )
    emit(
        "table3",
        render_table(
            [
                "opamp",
                "expected (dB)",
                "measured (dB)",
                "error (dB)",
                "paper expected",
                "paper measured",
            ],
            [
                [
                    r.opamp,
                    r.expected_nf_db,
                    r.measured_nf_db,
                    r.error_db,
                    r.paper_expected_nf_db,
                    r.paper_measured_nf_db,
                ]
                for r in result.rows
            ],
            title="Table 3 - prototype NF, Th=2900K (paper-calibrated opamps)",
        ),
    )
    # Shape: expected column equals the paper's; measured within the
    # paper's 2 dB envelope; ordering preserved.
    expected = [r.expected_nf_db for r in result.rows]
    assert max(abs(e - p) for e, p in zip(expected, (3.7, 6.5, 10.1, 16.2))) < 0.05
    assert result.max_abs_error_db < 2.0
    measured = [r.measured_nf_db for r in result.rows]
    assert measured == sorted(measured)


def test_table3_datasheet_mode(benchmark, emit):
    # The datasheet CA3140 model has a ~22 dB expected NF — beyond the
    # paper's own highest device.  At such NF the Y factor approaches 1
    # and errors amplify; the paper itself shows 2.18 dB of error on its
    # CA3140 row (16.2 -> 14.02), so the acceptance envelope here is
    # slightly wider than the headline 2 dB.
    result = run_once(
        benchmark, run_table3, mode="datasheet", n_samples=2**19, seed=2005
    )
    emit(
        "table3_datasheet",
        render_table(
            ["opamp", "expected (dB)", "measured (dB)", "error (dB)"],
            [
                [r.opamp, r.expected_nf_db, r.measured_nf_db, r.error_db]
                for r in result.rows
            ],
            title=(
                "Table 3 (datasheet variant) - typical-datasheet opamp "
                "models; expected differs from the paper's unpublished "
                "circuit analysis but measured must track expected"
            ),
        ),
    )
    assert result.max_abs_error_db < 2.5
    measured = [r.measured_nf_db for r in result.rows]
    assert measured == sorted(measured)
