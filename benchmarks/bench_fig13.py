"""Benchmark: regenerate figure 13 (prototype PSDs after normalization).

The experimental counterpart of figure 9: a 3 kHz reference line, noise
measured around 1 kHz, normalized floors separated by the measured Y.
"""

from conftest import run_once

from repro.experiments.fig13 import run_fig13
from repro.reporting.tables import render_table


def test_fig13(benchmark, emit):
    result = run_once(benchmark, run_fig13, n_samples=2**20, seed=2005)
    emit(
        "fig13",
        render_table(
            ["quantity", "value"],
            [
                ["reference frequency (Hz)", result.reference_frequency_hz],
                ["noise band (Hz)", f"{result.noise_band_hz}"],
                ["raw line power hot", result.line_power_hot_raw],
                ["raw line power cold", result.line_power_cold_raw],
                ["normalized floor hot (1/Hz)", result.floor_after_hot],
                ["normalized floor cold (1/Hz)", result.floor_after_cold],
                ["floor ratio (Y)", result.floor_ratio_after],
                ["measured NF (dB)", result.bist.noise_figure_db],
                ["expected NF (dB)", result.expected_nf_db],
                ["NF error (dB)", result.nf_error_db],
            ],
            title="Figure 13 - prototype normalized PSD levels (OP27 DUT)",
        ),
    )
    assert abs(result.nf_error_db) < 1.0
    assert abs(result.floor_ratio_after - result.bist.y) < 0.3 * result.bist.y
