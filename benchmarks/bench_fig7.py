"""Benchmark: regenerate figure 7 (hot/cold noise + reference waveforms)."""

from conftest import run_once

from repro.experiments.fig7 import run_fig7
from repro.reporting.tables import render_table


def test_fig7(benchmark, emit):
    result = run_once(benchmark, run_fig7, seed=2005)
    emit(
        "fig7",
        render_table(
            [
                "state",
                "noise RMS (V)",
                "expected RMS (V)",
                "ref amplitude (V)",
                "composite RMS (V)",
                "crest factor",
            ],
            [
                [
                    s.state,
                    s.noise_rms,
                    s.noise_rms_expected,
                    s.reference_amplitude,
                    s.composite_rms,
                    s.crest_factor,
                ]
                for s in (result.hot, result.cold)
            ],
            title=(
                "Figure 7 - digitizer input statistics "
                f"(hot/cold power ratio {result.rms_ratio_squared:.4f})"
            ),
        ),
    )
    # Shape: constant reference, noise above reference, ratio ~3.49.
    assert result.reference_is_constant
    assert result.hot.noise_rms > result.hot.reference_amplitude
    assert result.cold.noise_rms > result.cold.reference_amplitude
    assert abs(result.rms_ratio_squared - 3.4931) < 0.05
