"""Benchmark: the "low cost" claim — SoC resources of the 1-bit BIST vs
a full-ADC capture of the same measurement."""

from conftest import run_once

from repro.experiments.resources import run_resources
from repro.reporting.tables import render_table


def test_resources(benchmark, emit):
    result = run_once(benchmark, run_resources, n_samples=2**20, seed=2005)
    report = result.report
    emit(
        "resources",
        render_table(
            ["resource", "value"],
            [
                ["capture memory, 1-bit packed (B)", result.onebit_memory_bytes],
                ["capture memory, 12-bit ADC (B)", result.adc_memory_bytes_12bit],
                ["capture memory, 8-bit ADC (B)", result.adc_memory_bytes_8bit],
                ["streaming working set (B)", result.streaming_memory_bytes],
                ["memory saving vs 12-bit", result.memory_saving_vs_12bit],
                ["streaming saving vs full capture", result.streaming_saving_vs_capture],
                ["DSP cycles", report.dsp_cycles],
                ["DSP time @100 MHz (s)", report.dsp_time_s],
                ["acquisition time (s)", report.acquisition_time_s],
                ["total test time (s)", report.total_test_time_s],
                ["measured NF (dB)", result.result.noise_figure_db],
            ],
            title="SoC resource accounting - one full NF measurement (2^20 samples/state)",
        ),
    )
    assert result.memory_saving_vs_12bit > 11.9
    assert report.memory_bytes_peak <= report.memory_bytes_capacity
