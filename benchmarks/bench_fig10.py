"""Benchmark: regenerate figure 10 (power-ratio error vs reference
amplitude).

The paper's guidance: amplitudes in the 10-40 % window give reasonable
results; very small references drown in the floor, very large ones drive
the limiter nonlinear.
"""

from conftest import run_once

from repro.experiments.fig10 import run_fig10
from repro.reporting.series import render_series


def test_fig10(benchmark, emit):
    result = run_once(benchmark, run_fig10, seed=2005)
    ok_points = [p for p in result.points if not p.failed]
    emit(
        "fig10",
        render_series(
            [100 * p.reference_ratio for p in ok_points],
            [p.error_pct for p in ok_points],
            x_label="Vref/Vnoise (%)",
            y_label="error in power ratio (%)",
            title=(
                "Figure 10 - power-ratio error vs reference amplitude "
                "(failed points omitted: "
                f"{[p.reference_ratio for p in result.points if p.failed]})"
            ),
        ),
    )
    # Shape: the 10-40 % window is accurate; the extremes are worse.
    window_err = result.max_abs_error_in_window_pct()
    assert window_err < 10.0
    extremes = [
        abs(p.error_pct)
        for p in ok_points
        if p.reference_ratio <= 0.05 or p.reference_ratio >= 0.65
    ]
    assert not extremes or max(extremes) > window_err
