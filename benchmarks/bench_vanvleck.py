"""Benchmark (ablation): Van Vleck arcsine correction vs the paper's
linear-approximation shortcut, across reference amplitudes.

Finding (recorded in EXPERIMENTS.md): the correction does not rescue
large-reference operation because the composite input (noise + large
deterministic reference) violates the Gaussian assumption behind the
arcsine inversion — the paper's 10-40 % amplitude guideline stands.
"""

from conftest import run_once

from repro.experiments.vanvleck import run_vanvleck
from repro.reporting.tables import render_table


def _fmt(value):
    return "n/a" if value is None else value


def test_vanvleck_ablation(benchmark, emit):
    result = run_once(benchmark, run_vanvleck, max_lag=2500, seed=2005)
    emit(
        "vanvleck",
        render_table(
            ["Vref/Vnoise", "linear error (%)", "van-vleck error (%)"],
            [
                [p.reference_ratio, _fmt(p.error_linear_pct), _fmt(p.error_corrected_pct)]
                for p in result.points
            ],
            title=(
                "Ablation - linear (paper) vs Van Vleck-corrected Y "
                f"estimation (true ratio {result.true_power_ratio:.4f})"
            ),
        ),
    )
    # Both paths stay usable inside the recommended window.
    in_window = [p for p in result.points if p.reference_ratio <= 0.4]
    for p in in_window:
        assert p.error_linear_pct is not None
        assert abs(p.error_linear_pct) < 12.0
