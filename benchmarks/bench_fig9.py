"""Benchmark: regenerate figure 9 (PSD after normalization, zoom at 60 Hz).

The paper: floors nearly coincide before normalization; after scaling to
equal reference-line power they separate by the true power ratio.
"""

from conftest import run_once

from repro.experiments.fig9 import run_fig9
from repro.reporting.tables import render_table


def test_fig9(benchmark, emit):
    result = run_once(benchmark, run_fig9, seed=2005)
    emit(
        "fig9",
        render_table(
            ["stage", "hot floor (1/Hz)", "cold floor (1/Hz)", "hot/cold ratio"],
            [
                [
                    "before normalization",
                    result.floor_before_hot,
                    result.floor_before_cold,
                    result.ratio_before,
                ],
                [
                    "after normalization",
                    result.floor_after_hot,
                    result.floor_after_cold,
                    result.ratio_after,
                ],
            ],
            title=(
                "Figure 9 - normalized floors around the 60 Hz reference "
                f"(true power ratio {result.true_power_ratio:.4f})"
            ),
        ),
    )
    assert abs(result.ratio_before - 1.0) < 0.15
    assert abs(result.ratio_after - result.true_power_ratio) < 0.12 * result.true_power_ratio
