"""Benchmark (extension): packed 1-bit record pipeline vs float64.

Runs the paper-scale measurement workload (1e6-sample records, FFT size
1e4, hot/cold pairs) through the engine twice — once with float64
records (``packed=False``) and once with the packed 1-bit record model
— and records, per pipeline:

* records/sec over the full acquire->digitize->Welch->NF pipeline;
* the per-record storage footprint (measured ``nbytes``, not a
  formula) and the pickled transport cost a process backend would pay
  per record;
* the Python-heap peak (``tracemalloc``, which numpy's allocator
  reports into) around the measurement loop, plus the process
  ``ru_maxrss`` high-water mark for context.

Results are merged into ``BENCH_engine.json`` at the repo root under
the ``"packed"`` key, so the perf trajectory of the engine PR and this
refactor live in one tracked file.  The run re-asserts the acceptance
bars: packed and float NF values agree to <= 1e-9 dB and the record
footprint shrinks by >= 32x.
"""

import json
import os
import pathlib
import pickle
import resource
import time
import tracemalloc

import numpy as np

from conftest import envinfo, run_once

from repro.buffers import default_pool
from repro.engine import MeasurementEngine
from repro.experiments.matlab_sim import MatlabSimConfig, MatlabSimulation
from repro.reporting.tables import render_table
from repro.signals.random import make_rng, spawn_rngs

REPO_ROOT = pathlib.Path(__file__).parent.parent

N_REPEATS = 4
PAPER_CONFIG = MatlabSimConfig()  # 1e6 samples, nperseg 1e4


def run_pipeline(sim, estimator, engine, seed):
    results = engine.run_batch(sim, estimator, N_REPEATS, rng=seed)
    return [r.noise_figure_db for r in results]


def _timed_with_peak(fn, *args):
    # Cold measurement: drop pooled scratch first so neither pipeline
    # hides pre-warmed allocations from tracemalloc, then trace the
    # whole run (numpy reports its allocations into tracemalloc).
    default_pool.clear()
    tracemalloc.start()
    start = time.perf_counter()
    result = fn(*args)
    seconds = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, seconds, peak


def test_packed_pipeline(benchmark, emit):
    sim = MatlabSimulation(PAPER_CONFIG)
    estimator = sim.make_estimator()
    seed = 2005
    records = 2 * N_REPEATS

    # Record formats, measured on an actual hot/cold acquisition.
    float_records, _ = sim.acquire_bitstreams(
        ["hot", "cold"], spawn_rngs(make_rng(seed), 2)
    )
    packed_records, _ = sim.acquire_bitstreams(
        ["hot", "cold"], spawn_rngs(make_rng(seed), 2), packed=True
    )
    assert np.array_equal(packed_records.unpack(), float_records)
    float_bytes = float_records.nbytes // 2
    packed_bytes = packed_records.nbytes // 2
    float_pickled = len(pickle.dumps(float_records[0]))
    packed_pickled = len(pickle.dumps(packed_records[0].words))
    footprint_ratio = float_bytes / packed_bytes
    assert footprint_ratio >= 32.0

    nf_float, t_float, peak_float = _timed_with_peak(
        run_pipeline, sim, estimator, MeasurementEngine(packed=False), seed
    )
    nf_packed = run_once(
        benchmark, run_pipeline, sim, estimator, MeasurementEngine(), seed
    )
    _, t_packed, peak_packed = _timed_with_peak(
        run_pipeline, sim, estimator, MeasurementEngine(), seed
    )

    nf_diff = max(abs(a - b) for a, b in zip(nf_float, nf_packed))
    assert nf_diff <= 1e-9
    # The packed pipeline streams acquisition record by record, so its
    # cold heap peak must sit well below the float pipeline's
    # full-batch stack.
    assert peak_packed < 0.5 * peak_float

    pooled_bytes = default_pool.nbytes  # scratch retained after the run
    rss_peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

    rows = [
        [
            "float64",
            t_float,
            records / t_float,
            float_bytes,
            peak_float / 1e6,
        ],
        [
            "packed",
            t_packed,
            records / t_packed,
            packed_bytes,
            peak_packed / 1e6,
        ],
    ]
    emit(
        "packed",
        render_table(
            ["pipeline", "seconds", "records/s", "B/record", "heap peak MB"],
            rows,
            title=(
                f"Packed vs float pipeline - {records} records of "
                f"{sim.config.n_samples:.0e} samples, nperseg "
                f"{sim.config.nperseg:.0e} ({footprint_ratio:.0f}x smaller "
                f"records, NF diff {nf_diff:.1e} dB)"
            ),
        ),
    )

    bench_path = REPO_ROOT / "BENCH_engine.json"
    try:
        payload = json.loads(bench_path.read_text())
    except (FileNotFoundError, json.JSONDecodeError):
        payload = {}  # self-heal a missing or truncated file
    payload["packed"] = {
        "workload": {
            "n_samples": sim.config.n_samples,
            "nperseg": sim.config.nperseg,
            "n_repeats": N_REPEATS,
            "n_records": records,
        },
        "n_cpus": os.cpu_count(),
        "env": envinfo(),
        "bytes_per_record": {
            "float64": float_bytes,
            "packed": packed_bytes,
            "ratio": round(footprint_ratio, 1),
        },
        "pickled_transport_bytes_per_record": {
            "float64": float_pickled,
            "packed": packed_pickled,
            "ratio": round(float_pickled / packed_pickled, 1),
        },
        "nf_max_abs_diff_db": nf_diff,
        "process_rss_peak_kb": rss_peak_kb,
        "pooled_scratch_bytes_after_run": int(pooled_bytes),
        "pipelines": {
            "float64": {
                "seconds": round(t_float, 4),
                "records_per_sec": round(records / t_float, 3),
                "tracemalloc_peak_bytes": int(peak_float),
            },
            "packed": {
                "seconds": round(t_packed, 4),
                "records_per_sec": round(records / t_packed, 3),
                "tracemalloc_peak_bytes": int(peak_packed),
            },
        },
    }
    bench_path.write_text(json.dumps(payload, indent=2) + "\n")
