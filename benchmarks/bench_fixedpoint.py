"""Benchmark (ablation): fixed-point SoC DSP vs the float pipeline.

Because the input is already a +/-1 bitstream, the PSD pipeline is
insensitive to realistic word lengths — quantified support for running
the measurement on a fixed-point SoC DSP.
"""

from conftest import run_once

from repro.experiments.fixedpoint_ablation import run_fixedpoint
from repro.reporting.tables import render_table


def test_fixedpoint(benchmark, emit):
    result = run_once(benchmark, run_fixedpoint, n_samples=2**18, seed=2005)
    emit(
        "fixedpoint",
        render_table(
            ["window bits", "accumulator bits", "NF (dB)", "deviation vs float (dB)"],
            [
                [p.window_bits, p.accumulator_bits, p.nf_db, p.deviation_db]
                for p in result.points
            ],
            title=(
                "Ablation - fixed-point DSP word lengths "
                f"(float NF {result.float_nf_db:.3f} dB, expected "
                f"{result.expected_nf_db:.2f} dB)"
            ),
        ),
    )
    assert result.worst_deviation_db() < 0.1
