"""Benchmark: section 4.2 / ref [6] — hot-temperature uncertainty budget.

Claim: a 5 % hot-temperature error keeps the NF error within about
+/-0.3 dB for 3 dB and 10 dB devices.
"""

from conftest import run_once

from repro.experiments.uncertainty import run_uncertainty
from repro.reporting.tables import render_table


def test_uncertainty(benchmark, emit):
    result = run_once(benchmark, run_uncertainty, seed=2005)
    budget_table = render_table(
        [
            "NF (dB)",
            "nominal Y",
            "analytic sigma (dB)",
            "Monte-Carlo std (dB)",
            "within 0.3 dB",
        ],
        [
            [
                r.nf_db,
                r.y_nominal,
                r.sigma_nf_analytic_db,
                r.nf_std_montecarlo_db,
                r.within_p3db,
            ]
            for r in result.rows
        ],
        title=(
            "Ref [6] budget - NF uncertainty for "
            f"{100 * result.rel_sigma_t_hot:.0f}% hot-temperature error"
        ),
    )
    e2e_table = render_table(
        [
            "target NF (dB)",
            "measured unbiased (dB)",
            "measured biased (dB)",
            "systematic shift (dB)",
        ],
        [
            [
                r.nf_db_target,
                r.measured_unbiased_db,
                r.measured_biased_db,
                r.bias_shift_db,
            ]
            for r in result.end_to_end
        ],
        title="End-to-end check - BIST with an actually 5% hotter source",
    )
    emit("uncertainty", budget_table + "\n\n" + e2e_table)
    for row in result.rows:
        assert row.within_p3db
    for row in result.end_to_end:
        assert -0.6 < row.bias_shift_db < 0.0
