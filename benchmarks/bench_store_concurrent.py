"""Benchmark (extension): concurrent writers sharing one store.

Two whole producer processes screen disjoint lots into one shared
``ResultStore`` — the multi-writer shape production sweeps actually
run.  Measured against the same two lots written back-to-back by a
single process:

* **Concurrent vs sequential wall-clock.**  Two processes writing at
  once should approach the single-writer sum on multi-core hosts
  (acceptance bar ``BENCH_STORE_MIN_CONCURRENT_SPEEDUP``, asserted
  only when more than one CPU is available — store writes are
  CPU-bound through serialization, so a single core serializes them
  no matter how many processes race).
* **Convergence.**  Asserted on every host: the shared store holds
  each lot's results exactly once, every payload reads back and
  verifies, nothing was quarantined, and the persistent index replays
  to exactly the tree-walk entry set after the multi-process append
  fan-out.

Results merge into ``BENCH_engine.json`` under ``"store_concurrent"``.
"""

import json
import os
import pathlib
import shutil
import subprocess
import sys
import tempfile
import time

from conftest import envinfo, run_once

from repro.store import ResultStore
from repro.reporting.tables import render_table

REPO_ROOT = pathlib.Path(__file__).parent.parent

#: Devices per writer; the two writers use disjoint seeds, so the
#: shared store converges to the union of both lots.
N_DEVICES = 8
N_SAMPLES = 2**14
NPERSEG = 2048
SEEDS = (3001, 3002)

#: Two concurrent writers must beat the same work run sequentially by
#: this factor on multi-core hosts (2.0 would be perfect scaling;
#: process startup and the shared index lock eat some of it).
MIN_CONCURRENT_SPEEDUP = float(
    os.environ.get("BENCH_STORE_MIN_CONCURRENT_SPEEDUP", "1.2")
)

WRITER_SCRIPT = """\
import sys
from repro.engine import MeasurementScheduler, ResultStore
from repro.experiments.production import run_production

with MeasurementScheduler(store=ResultStore(sys.argv[1])) as sched:
    run_production(
        n_devices={n_devices},
        n_samples={n_samples},
        nperseg={nperseg},
        seed=int(sys.argv[2]),
        scheduler=sched,
    )
""".format(n_devices=N_DEVICES, n_samples=N_SAMPLES, nperseg=NPERSEG)


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")) if p
    )
    return env


def _writer(store_dir: pathlib.Path, seed: int) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-c", WRITER_SCRIPT, str(store_dir), str(seed)],
        env=_env(),
        cwd=REPO_ROOT,
    )


def _run_writers(store_dir: pathlib.Path, concurrent: bool) -> float:
    start = time.perf_counter()
    if concurrent:
        children = [_writer(store_dir, seed) for seed in SEEDS]
        for child in children:
            assert child.wait(timeout=600.0) == 0
    else:
        for seed in SEEDS:
            assert _writer(store_dir, seed).wait(timeout=600.0) == 0
    return time.perf_counter() - start


def test_store_concurrent(benchmark, emit):
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="bench_store_conc_"))
    n_cpus = os.cpu_count() or 1
    try:
        t_sequential = _run_writers(workdir / "sequential", concurrent=False)

        def _concurrent():
            return _run_writers(workdir / "shared", concurrent=True)

        t_concurrent = run_once(benchmark, _concurrent)
        speedup = t_sequential / t_concurrent

        # Convergence: the shared store is the union of both lots,
        # every payload verifies, and the index replays the tree.
        shared = ResultStore(workdir / "shared")
        walk = shared.index()
        assert len(walk.by_kind("results")) == 2 * N_DEVICES
        assert len(walk.by_kind("outcomes")) == len(SEEDS)
        for entry in walk:
            assert shared.read_meta(entry.kind, entry.key) is not None
        assert shared.quarantine_log == []
        assert shared.verify_index()["consistent"]
        fast = shared.load_index()
        assert {(e.kind, e.key, e.nbytes) for e in fast} == {
            (e.kind, e.key, e.nbytes) for e in walk
        }

        emit(
            "store_concurrent",
            render_table(
                ["stage", "seconds", "detail", "speedup"],
                [
                    [
                        "sequential writers",
                        t_sequential,
                        f"2 x {N_DEVICES} devices, 1 process",
                        "-",
                    ],
                    [
                        "concurrent writers",
                        t_concurrent,
                        f"2 x {N_DEVICES} devices, 2 processes",
                        f"{speedup:.2f}x",
                    ],
                ],
                title=(
                    f"Concurrent store writers - 2 lots x {N_DEVICES} "
                    f"devices, {N_SAMPLES} samples ({n_cpus} CPUs)"
                ),
            ),
        )

        bench_path = REPO_ROOT / "BENCH_engine.json"
        try:
            payload = json.loads(bench_path.read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            payload = {}  # self-heal a missing or truncated file
        payload["store_concurrent"] = {
            "n_cpus": n_cpus,
            "env": envinfo(),
            "workload": {
                "n_writers": len(SEEDS),
                "n_devices_per_writer": N_DEVICES,
                "n_samples": N_SAMPLES,
                "nperseg": NPERSEG,
            },
            "sequential_seconds": round(t_sequential, 4),
            "concurrent_seconds": round(t_concurrent, 4),
            "speedup": round(speedup, 2),
            "min_speedup": MIN_CONCURRENT_SPEEDUP,
            "asserted": n_cpus > 1,
            "converged": True,
            "index_consistent": True,
        }
        bench_path.write_text(json.dumps(payload, indent=2) + "\n")

        if n_cpus > 1:
            assert speedup >= MIN_CONCURRENT_SPEEDUP
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
