"""Benchmark (extension): NF consistency across attenuator settings.

The figure-4 chain (generator -> programmable attenuator) must return
the same DUT NF at every setting once the calibrated hot temperature
tracks the attenuation — a calibration-transfer self-check.
"""

from conftest import run_once

from repro.experiments.attenuator_chain import run_attenuator_chain
from repro.reporting.tables import render_table


def test_attenuator_chain(benchmark, emit):
    result = run_once(benchmark, run_attenuator_chain, seed=2005)
    emit(
        "attenuator_chain",
        render_table(
            ["loss (dB)", "Th (K)", "ENR (dB)", "measured NF (dB)", "error (dB)"],
            [
                [r.loss_db, r.t_hot_k, r.enr_db, r.measured_nf_db, r.error_db]
                for r in result.rows
            ],
            title=(
                "Figure-4 chain - one DUT across attenuator settings "
                f"(expected NF {result.expected_nf_db:.2f} dB)"
            ),
        ),
    )
    # All settings agree within the single-shot scatter envelope.
    assert result.spread_db < 1.5
    assert result.max_abs_error_db < 1.5
