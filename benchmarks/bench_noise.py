"""Benchmark (extension): the fast noise-synthesis layer.

Four measurements at paper scale (8 records x 1e6 samples, nperseg
1e4), merged into ``BENCH_engine.json`` under the ``"noise"`` key:

* **Record synthesis.**  The compat per-record loop (each record's
  Gaussian floats drawn on its own ``default_rng`` stream, digitized,
  packed) versus philox-mode direct synthesis (per-record Philox
  counter streams, one 32-bit uniform compare per bit, no Gaussian
  floats).  Acceptance bar: >= 3x records/sec.
* **Noise-matrix fill.**  The raw white-noise 2-D fill
  (``GaussianNoiseSource.render_batch``) compat vs philox — reported
  for context (the float fill is ziggurat-bound; the record-synthesis
  win comes from never materializing the floats).
* **Popcount packed Welch.**  The packed batched Welch pass with and
  without the bit-domain detrend.  Acceptance bars: PSDs match to
  <= 1e-10 (scale-relative) and the popcount path is no slower
  (within a small wall-clock tolerance for shared runners).
* **End-to-end pipeline.**  ``MeasurementEngine.run_batch`` (4
  repeats = 8 records, acquisition + batched Welch + estimation)
  compat vs philox.

Compat bit-identity is re-asserted on every run: the compat engine's
packed records and NF are identical (diff == 0.0) to the seed-serial
acquisition — the fast layer changes nothing unless asked.
"""

import json
import os
import pathlib
import time

import numpy as np

from conftest import envinfo, run_once

from repro.dsp.psd import welch_batch
from repro.engine import MeasurementEngine
from repro.experiments.matlab_sim import MatlabSimConfig, MatlabSimulation
from repro.reporting.tables import render_table
from repro.signals.random import spawn_rngs
from repro.signals.sources import GaussianNoiseSource

REPO_ROOT = pathlib.Path(__file__).parent.parent

N_RECORDS = 8
N_SAMPLES = 1_000_000
NPERSEG = 10_000

#: Acceptance floor for philox-mode record synthesis (the tentpole's
#: >= 3x claim; dedicated hosts measure ~4-5x).  Shared CI runners can
#: relax it via the environment.
MIN_SYNTH_SPEEDUP = float(os.environ.get("BENCH_NOISE_MIN_SPEEDUP", "3.0"))

#: Wall-clock tolerance for the "popcount Welch is no slower" bar —
#: the two paths measure within a few percent of each other, which is
#: inside run-to-run noise on shared runners.
BIT_DOMAIN_TOLERANCE = float(
    os.environ.get("BENCH_NOISE_BIT_DOMAIN_TOLERANCE", "0.10")
)

#: Acceptance floor for the threaded philox row fan-out — asserted only
#: on multi-core hosts (a single core has nothing to fan out to).
MIN_THREADED_FILL_SPEEDUP = float(
    os.environ.get("BENCH_NOISE_MIN_THREAD_SPEEDUP", "1.3")
)


def _states(n):
    return ["hot", "cold"] * (n // 2)


def _acquire(sim, seed, rng_mode):
    return sim.acquire_bitstreams(
        _states(N_RECORDS),
        spawn_rngs(seed, N_RECORDS),
        packed=True,
        rng_mode=rng_mode,
    )[0]


def _time(fn, *args):
    start = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - start


def _best_of(n, fn, *args):
    best = None
    result = None
    for _ in range(n):
        result, seconds = _time(fn, *args)
        best = seconds if best is None else min(best, seconds)
    return result, best


def test_noise(benchmark, emit):
    seed = 2005
    sim = MatlabSimulation(
        MatlabSimConfig(n_samples=N_SAMPLES, nperseg=NPERSEG)
    )
    estimator = sim.make_estimator()

    # --- record synthesis: compat per-record loop vs philox direct ---
    compat_batch = run_once(benchmark, _acquire, sim, seed, "compat")
    _, t_compat = _best_of(2, _acquire, sim, seed, "compat")
    philox_batch, t_philox = _best_of(2, _acquire, sim, seed, "philox")
    synth_speedup = t_compat / t_philox
    records_per_s_compat = N_RECORDS / t_compat
    records_per_s_philox = N_RECORDS / t_philox

    # The two modes draw different realizations of the same process —
    # their bit fractions must agree to binomial resolution.
    frac_diff = float(
        np.abs(
            np.unpackbits(compat_batch.words, axis=-1, count=N_SAMPLES)
            .mean(axis=-1)
            - np.unpackbits(philox_batch.words, axis=-1, count=N_SAMPLES)
            .mean(axis=-1)
        ).max()
    )

    # --- raw white-noise 2-D fill (context) --------------------------
    source = GaussianNoiseSource(0.3)
    _, t_fill_compat = _best_of(
        2, source.render_batch, N_SAMPLES, 1e4, spawn_rngs(seed, N_RECORDS)
    )
    _, t_fill_philox = _best_of(
        2,
        lambda: source.render_batch(
            N_SAMPLES, 1e4, spawn_rngs(seed, N_RECORDS), rng_mode="philox"
        ),
    )

    # --- threaded philox row fan-out (multi-core hosts) --------------
    from repro.signals.batch_rng import BatchNoiseGenerator

    serial_fill, t_fill_serial = _best_of(
        2,
        lambda: BatchNoiseGenerator(spawn_rngs(seed, N_RECORDS)).normal_matrix(
            N_SAMPLES, threads=1
        ),
    )
    threaded_fill, t_fill_threaded = _best_of(
        2,
        lambda: BatchNoiseGenerator(spawn_rngs(seed, N_RECORDS)).normal_matrix(
            N_SAMPLES
        ),
    )
    threaded_identical = bool(np.array_equal(serial_fill, threaded_fill))
    threaded_speedup = t_fill_serial / t_fill_threaded

    # --- popcount packed Welch vs exact packed Welch -----------------
    exact_spec, t_welch_exact = _best_of(
        2, welch_batch, compat_batch, NPERSEG
    )
    bit_spec, t_welch_bit = _best_of(
        2, lambda: welch_batch(compat_batch, NPERSEG, bit_domain=True)
    )
    psd_scale_diff = float(
        np.abs(bit_spec.psd - exact_spec.psd).max() / exact_spec.psd.max()
    )
    welch_ratio = t_welch_exact / t_welch_bit

    # --- end-to-end pipeline (acquire + Welch + estimate) ------------
    with MeasurementEngine() as compat_engine:
        _, t_e2e_compat = _best_of(
            2, compat_engine.run_batch, sim, estimator, 4, seed
        )
    with MeasurementEngine(rng_mode="philox") as philox_engine:
        _, t_e2e_philox = _best_of(
            2, philox_engine.run_batch, sim, estimator, 4, seed
        )
    e2e_speedup = t_e2e_compat / t_e2e_philox

    # --- compat bit-identity vs the seed-serial acquisition ----------
    replay = spawn_rngs(seed, N_RECORDS)
    serial_rows = [
        sim.bitstream(state, rng).samples
        for state, rng in zip(_states(N_RECORDS), replay)
    ]
    record_diff = max(
        float(np.abs(compat_batch[i].unpack() - serial_rows[i]).max())
        for i in range(N_RECORDS)
    )
    nf_compat = MeasurementEngine().measure(
        sim, estimator, rng=seed
    ).noise_figure_db
    nf_serial = estimator.measure(sim.bitstream, rng=seed).noise_figure_db
    nf_diff = abs(nf_compat - nf_serial)

    rows = [
        ["synthesis compat", t_compat, f"{records_per_s_compat:.1f} rec/s", "-"],
        [
            "synthesis philox",
            t_philox,
            f"{records_per_s_philox:.1f} rec/s",
            f"{synth_speedup:.1f}x",
        ],
        ["white fill compat", t_fill_compat, "-", "-"],
        [
            "white fill philox",
            t_fill_philox,
            "-",
            f"{t_fill_compat / t_fill_philox:.2f}x",
        ],
        [
            "philox fill threaded",
            t_fill_threaded,
            f"{os.cpu_count()} CPU(s), bit-identical",
            f"{threaded_speedup:.2f}x",
        ],
        ["packed welch exact", t_welch_exact, "-", "-"],
        [
            "packed welch popcount",
            t_welch_bit,
            f"psd diff {psd_scale_diff:.1e}",
            f"{welch_ratio:.2f}x",
        ],
        ["end-to-end compat", t_e2e_compat, "8 records", "-"],
        [
            "end-to-end philox",
            t_e2e_philox,
            "8 records",
            f"{e2e_speedup:.2f}x",
        ],
    ]
    emit(
        "noise",
        render_table(
            ["stage", "seconds", "detail", "speedup"],
            rows,
            title=(
                f"Noise-synthesis layer - {N_RECORDS} x {N_SAMPLES} "
                f"records, nperseg {NPERSEG}, {os.cpu_count()} CPU(s)"
            ),
        ),
    )

    bench_path = REPO_ROOT / "BENCH_engine.json"
    try:
        payload = json.loads(bench_path.read_text())
    except (FileNotFoundError, json.JSONDecodeError):
        payload = {}  # self-heal a missing or truncated file
    payload["noise"] = {
        "n_cpus": os.cpu_count(),
        "env": envinfo(),
        "synthesis": {
            "n_records": N_RECORDS,
            "n_samples": N_SAMPLES,
            "compat_seconds": round(t_compat, 4),
            "philox_seconds": round(t_philox, 4),
            "compat_records_per_s": round(records_per_s_compat, 2),
            "philox_records_per_s": round(records_per_s_philox, 2),
            "speedup": round(synth_speedup, 2),
            "bit_fraction_max_diff": frac_diff,
        },
        "white_fill": {
            "compat_seconds": round(t_fill_compat, 4),
            "philox_seconds": round(t_fill_philox, 4),
            "speedup": round(t_fill_compat / t_fill_philox, 2),
        },
        "threaded_fill": {
            "serial_seconds": round(t_fill_serial, 4),
            "threaded_seconds": round(t_fill_threaded, 4),
            "speedup": round(threaded_speedup, 2),
            "identical": threaded_identical,
        },
        "popcount_welch": {
            "exact_seconds": round(t_welch_exact, 4),
            "bit_domain_seconds": round(t_welch_bit, 4),
            "ratio": round(welch_ratio, 2),
            "psd_max_scale_diff": psd_scale_diff,
        },
        "end_to_end": {
            "compat_seconds": round(t_e2e_compat, 4),
            "philox_seconds": round(t_e2e_philox, 4),
            "speedup": round(e2e_speedup, 2),
        },
        "compat_bit_identity": {
            "record_max_abs_diff": record_diff,
            "nf_abs_diff_db": nf_diff,
        },
    }
    bench_path.write_text(json.dumps(payload, indent=2) + "\n")

    # Acceptance bars (ISSUE 4): >= 3x philox record synthesis, compat
    # bit-identity, popcount Welch equivalent and no slower (within the
    # shared-runner wall-clock tolerance).
    assert record_diff == 0.0
    assert nf_diff == 0.0
    assert frac_diff < 5e-3
    assert psd_scale_diff <= 1e-10
    assert synth_speedup >= MIN_SYNTH_SPEEDUP
    assert t_welch_bit <= t_welch_exact * (1.0 + BIT_DOMAIN_TOLERANCE)
    # Threaded row fan-out: always bit-identical; the wall-clock bar
    # only exists where there are cores to fan out to.
    assert threaded_identical
    if (os.cpu_count() or 1) > 1:
        assert threaded_speedup >= MIN_THREADED_FILL_SPEEDUP
